#!/usr/bin/env python3
"""Validate mspastry-sim run artifacts.

Usage: check_artifact.py RUN_JSON [TRACE_JSONL] [--timeseries TS_JSONL]

Checks that RUN_JSON is a well-formed `mspastry-run/1` document (single
run) or `mspastry-series/2` document (aggregated multi-seed sweep from
`--scenario`), that TRACE_JSONL parses line by line, and that at least
one sampled lookup's hop path can be reconstructed end to end (issue ->
forwards covering 1..=hops -> deliver, with non-decreasing timestamps
and an armed RTO on every forward). With --timeseries, also checks the
`mspastry-ts/1` JSONL written by `--timeseries`: header consistent with
the run artifact's summary, contiguous non-overlapping windows, delta
counters strictly positive, and histogram deltas carrying both count
and sum. If the run artifact has a `prof` member (from `--profile`),
its internal invariants are checked too. Exits non-zero on any
violation.
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_artifact: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_sweep(path, doc):
    for member in ("scenario", "figure", "scale", "n_seeds", "points"):
        if member not in doc:
            fail(f"missing top-level member {member!r}")
    n_seeds = doc["n_seeds"]
    if not isinstance(n_seeds, int) or n_seeds < 1:
        fail(f"n_seeds must be a positive integer, got {n_seeds!r}")
    points = doc["points"]
    if not points:
        fail("sweep has no points")
    for p in points:
        for member in ("label", "n_seeds", "metrics", "diag"):
            if member not in p:
                fail(f"point missing {member!r}")
        if p["n_seeds"] != n_seeds:
            fail(f"point {p['label']!r}: n_seeds {p['n_seeds']} != top-level {n_seeds}")
        if not p["metrics"]:
            fail(f"point {p['label']!r} has no metrics")
        for name, m in p["metrics"].items():
            for member in ("mean", "stddev", "values"):
                if member not in m:
                    fail(f"metric {name!r} missing {member!r}")
            if len(m["values"]) != n_seeds:
                fail(f"metric {name!r}: {len(m['values'])} values for {n_seeds} seeds")
            mean = sum(m["values"]) / n_seeds
            if abs(mean - m["mean"]) > 1e-6 * max(1.0, abs(mean)):
                fail(f"metric {name!r}: mean {m['mean']} does not match values")
            if m["stddev"] < 0 or (n_seeds == 1 and m["stddev"] != 0):
                fail(f"metric {name!r}: bad stddev {m['stddev']}")
        diag = p["diag"]
        if "counters" not in diag or "histograms" not in diag:
            fail(f"point {p['label']!r}: diag snapshot missing counters/histograms")
    print(f"check_artifact: {path}: schema ok, scenario={doc['scenario']!r}, "
          f"{len(points)} points x {n_seeds} seeds, "
          f"{len(points[0]['metrics'])} metrics/point")


def check_run(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") == "mspastry-series/2":
        check_sweep(path, doc)
        return doc
    if doc.get("schema") != "mspastry-run/1":
        fail(f"unexpected schema tag {doc.get('schema')!r}")
    for member in ("run", "report", "diag", "trace"):
        if member not in doc:
            fail(f"missing top-level member {member!r}")
    report = doc["report"]
    for key in ("issued", "delivered", "lost", "incorrect", "mean_rdp", "windows"):
        if key not in report:
            fail(f"report missing {key!r}")
    if report["issued"] <= 0:
        fail("report.issued is zero — run produced no workload")
    diag = doc["diag"]
    if "counters" not in diag or "histograms" not in diag:
        fail("diag snapshot missing counters/histograms")
    for hist in ("lookup.latency_us", "lookup.hops", "node.rtt_sample_us"):
        if hist not in diag["histograms"]:
            fail(f"diag missing histogram {hist!r}")
    h = diag["histograms"]["lookup.latency_us"]
    if h["count"] != sum(c for _, c in h["buckets"]):
        fail("histogram bucket counts do not sum to count")
    if "prof" in doc:
        check_prof(doc["prof"])
    print(f"check_artifact: {path}: schema ok, issued={report['issued']}, "
          f"delivered={report['delivered']}, counters={len(diag['counters'])}, "
          f"histograms={len(diag['histograms'])}")
    return doc


def check_prof(prof):
    for key in ("wall_us", "events", "pop_ns", "queue", "kinds"):
        if key not in prof:
            fail(f"prof missing {key!r}")
    for key in ("depth_mean", "depth_max", "depth_samples"):
        if key not in prof["queue"]:
            fail(f"prof.queue missing {key!r}")
    if prof["events"] <= 0:
        fail("prof.events is zero — profiler saw no events")
    per_kind = 0
    for name, k in prof["kinds"].items():
        if k.get("count", 0) <= 0 or k.get("ns", -1) < 0:
            fail(f"prof kind {name!r} has bad count/ns: {k}")
        per_kind += k["count"]
    if per_kind != prof["events"]:
        fail(f"prof per-kind counts sum to {per_kind}, not events={prof['events']}")
    if prof["queue"]["depth_max"] < prof["queue"]["depth_mean"]:
        fail("prof.queue depth_max below depth_mean")
    print(f"check_artifact: prof ok, {prof['events']} events across "
          f"{len(prof['kinds'])} kinds")


def check_timeseries(path, summary):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty time-series file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(f"{path}:1: bad header: {e}")
    if header.get("schema") != "mspastry-ts/1":
        fail(f"{path}: unexpected schema tag {header.get('schema')!r}")
    for key in ("interval_us", "windows", "dropped"):
        if key not in header:
            fail(f"{path}: header missing {key!r}")
    if header["windows"] != len(lines) - 1:
        fail(f"{path}: header says {header['windows']} windows, "
             f"file has {len(lines) - 1}")
    if summary is not None:
        for key in ("interval_us", "windows", "dropped"):
            if header[key] != summary.get(key):
                fail(f"{path}: header {key}={header[key]} does not match run "
                     f"artifact summary {summary.get(key)!r}")
    prev_end = None
    for i, line in enumerate(lines[1:], 2):
        try:
            w = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: bad JSONL: {e}")
        for key in ("start_us", "end_us", "counters", "histograms"):
            if key not in w:
                fail(f"{path}:{i}: window missing {key!r}")
        if w["end_us"] <= w["start_us"]:
            fail(f"{path}:{i}: empty or inverted window "
                 f"[{w['start_us']}, {w['end_us']}]")
        if prev_end is not None and w["start_us"] != prev_end:
            fail(f"{path}:{i}: window starts at {w['start_us']}, previous "
                 f"ended at {prev_end} — series not contiguous")
        prev_end = w["end_us"]
        for name, delta in w["counters"].items():
            if not isinstance(delta, int) or delta <= 0:
                fail(f"{path}:{i}: counter {name!r} delta {delta!r} is not a "
                     "positive integer (quiet metrics must be omitted)")
        for name, h in w["histograms"].items():
            if "count" not in h or "sum" not in h:
                fail(f"{path}:{i}: histogram {name!r} missing count/sum")
    samples = sum(1 for l in lines[1:] if json.loads(l)["counters"])
    print(f"check_artifact: {path}: {len(lines) - 1} contiguous windows "
          f"({samples} non-quiet), interval {header['interval_us']} us")


def check_trace(path, expected_events):
    by_lookup = defaultdict(list)
    n = 0
    with open(path) as f:
        for i, line in enumerate(f, 1):
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{i}: bad JSONL: {e}")
            for key in ("t", "kind", "lookup", "node", "hops", "attempt"):
                if key not in ev:
                    fail(f"{path}:{i}: missing {key!r}")
            by_lookup[ev["lookup"]].append(ev)
            n += 1
    if expected_events is not None and n != expected_events:
        fail(f"trace has {n} events, run artifact says {expected_events}")

    reconstructed = 0
    for lookup, evs in by_lookup.items():
        if any(a["t"] > b["t"] for a, b in zip(evs, evs[1:])):
            fail(f"lookup {lookup}: events out of time order")
        kinds = [e["kind"] for e in evs]
        if "issue" not in kinds or "deliver" not in kinds:
            continue  # partial path (e.g. issued before the trace window)
        deliver = next(e for e in evs if e["kind"] == "deliver")
        fw_hops = {e["hops"] for e in evs if e["kind"] == "forward"}
        if not all(h in fw_hops for h in range(1, deliver["hops"] + 1)):
            fail(f"lookup {lookup}: forwards {sorted(fw_hops)} do not cover "
                 f"1..{deliver['hops']}")
        if any(e["kind"] == "forward" and e.get("detail_us", 0) <= 0 for e in evs):
            fail(f"lookup {lookup}: forward event without an armed RTO")
        reconstructed += 1
    if reconstructed == 0:
        fail("no lookup path could be reconstructed end to end")
    print(f"check_artifact: {path}: {n} events, {len(by_lookup)} lookups, "
          f"{reconstructed} complete paths reconstructed")


def main():
    args = sys.argv[1:]
    ts_path = None
    if "--timeseries" in args:
        i = args.index("--timeseries")
        if i + 1 >= len(args):
            fail("--timeseries requires a path")
        ts_path = args[i + 1]
        del args[i:i + 2]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    doc = check_run(args[0])
    if len(args) > 1:
        check_trace(args[1], doc.get("trace", {}).get("events"))
    if ts_path is not None:
        check_timeseries(ts_path, doc.get("timeseries"))
    print("check_artifact: OK")


if __name__ == "__main__":
    main()
