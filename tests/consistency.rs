//! Cross-crate integration tests for the paper's headline dependability
//! claims (§3, §5): consistent routing under churn, reliability under link
//! loss, and recovery from catastrophic failures.

use churn::poisson::{self, PoissonParams};
use churn::{Session, Trace};
use harness::{run, RunConfig, Workload};
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

fn base(trace: Trace) -> RunConfig {
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 10 * MIN;
    cfg.metrics_window_us = 5 * MIN;
    cfg
}

#[test]
fn zero_incorrect_deliveries_under_extreme_churn() {
    // 15-minute mean sessions: an order of magnitude harsher than Gnutella.
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 120.0,
        mean_session_us: 15.0 * 60e6,
        duration_us: 45 * MIN,
        seed: 21,
    });
    let res = run(base(trace));
    assert!(res.report.issued > 200, "issued {}", res.report.issued);
    assert_eq!(
        res.report.incorrect, 0,
        "the paper's consistency guarantee: no incorrect deliveries without \
         network loss"
    );
    assert!(res.report.loss_rate < 0.01, "loss {}", res.report.loss_rate);
}

#[test]
fn link_loss_keeps_lookup_losses_tiny() {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 100.0,
        mean_session_us: 60.0 * 60e6,
        duration_us: 40 * MIN,
        seed: 22,
    });
    let mut cfg = base(trace);
    cfg.network_loss_rate = 0.05; // the paper's harshest setting
    let res = run(cfg);
    assert!(res.report.issued > 200);
    assert!(
        res.report.loss_rate < 0.01,
        "per-hop acks keep losses small under 5% link loss, got {}",
        res.report.loss_rate
    );
    assert!(
        res.report.incorrect_rate < 0.01,
        "incorrect rate {}",
        res.report.incorrect_rate
    );
}

#[test]
fn mass_failure_recovers_and_ring_reconverges() {
    // 100 stable nodes; 30 of them crash at the same instant mid-run.
    let dur = 60 * MIN;
    let mut sessions: Vec<Session> = (0..70)
        .map(|_| Session {
            arrive_us: 0,
            depart_us: dur * 10,
        })
        .collect();
    for _ in 0..30 {
        sessions.push(Session {
            arrive_us: 0,
            depart_us: 20 * MIN,
        });
    }
    let trace = Trace::new("mass-failure", dur, sessions);
    let res = run(base(trace));
    assert_eq!(res.final_active, 70);
    assert_eq!(res.report.incorrect, 0);
    // Lookups in flight during the crash may be lost; the rate over the whole
    // run must still be small.
    assert!(res.report.loss_rate < 0.05, "loss {}", res.report.loss_rate);
    assert_eq!(
        res.ring_defects, 0,
        "every survivor's leaf set must reconverge to the true ring"
    );
}

#[test]
fn overlay_grows_from_one_node_to_a_ring() {
    // Nodes join one at a time into an initially singleton overlay.
    let dur = 40 * MIN;
    let sessions: Vec<Session> = (0..60)
        .map(|i| Session {
            arrive_us: i * 20 * 1_000_000,
            depart_us: dur * 10,
        })
        .collect();
    let trace = Trace::new("growth", dur, sessions);
    let mut cfg = base(trace);
    cfg.warmup_us = MIN; // joins are the point here, not a warm start
    let res = run(cfg);
    assert_eq!(res.final_active, 60, "every join must complete");
    assert_eq!(res.ring_defects, 0, "ring fully converged");
    assert_eq!(res.report.incorrect, 0);
}

#[test]
fn no_application_traffic_still_maintains_the_overlay() {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 80.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 30 * MIN,
        seed: 23,
    });
    let mut cfg = base(trace);
    cfg.workload = Workload::None;
    let res = run(cfg);
    assert!(res.final_active > 40);
    assert!(
        res.report.control_msgs_per_node_per_sec > 0.0,
        "failure detection keeps running without lookups"
    );
    assert_eq!(res.report.issued, 0);
}

#[test]
fn short_total_outage_causes_no_permanent_damage() {
    // A 6-second network-wide blackout (shorter than the probe budget, so
    // in-flight probes survive via retries): the overlay must come out the
    // other side with a perfect ring, no false-positive evictions of the
    // whole neighbourhood, and consistent routing throughout.
    let dur = 30 * MIN;
    let sessions: Vec<Session> = (0..60)
        .map(|_| Session {
            arrive_us: 0,
            depart_us: dur * 10,
        })
        .collect();
    let trace = Trace::new("outage", dur, sessions);
    let mut cfg = base(trace);
    cfg.outages = vec![(10 * MIN, 10 * MIN + 6_000_000)];
    let res = run(cfg);
    assert_eq!(res.final_active, 60, "no node may be lost to a blip");
    assert_eq!(res.ring_defects, 0, "ring fully reconverged");
    assert_eq!(res.report.incorrect, 0);
    // Lookups in flight during the outage may be lost, but only a handful.
    assert!(
        res.report.lost < 20,
        "outage losses must stay bounded, got {}",
        res.report.lost
    );
}
