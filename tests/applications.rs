//! Integration tests for the applications built on the lookup primitive:
//! the Squirrel web cache and the DHT key-value store.

use apps::kvstore::{self};
use apps::squirrel::{run_squirrel, SquirrelParams};
use churn::poisson::{self, PoissonParams};
use churn::synth::DAY_US;
use churn::{Session, Trace};
use harness::{run, RunConfig, Workload};
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

#[test]
fn squirrel_runs_a_half_day_deployment() {
    let mut p = SquirrelParams::quick();
    p.web.clients = 15;
    p.web.duration_us = DAY_US / 2;
    let res = run_squirrel(&p);
    assert!(res.cache.served > 30, "served {}", res.cache.served);
    assert!(
        res.cache.hit_rate() > 0.1,
        "hit rate {}",
        res.cache.hit_rate()
    );
    assert_eq!(res.run.report.incorrect, 0);
    // Requests while a machine was down are skipped, not lost.
    assert_eq!(res.run.report.lost, 0, "lost {}", res.run.report.lost);
}

#[test]
fn kvstore_gets_find_their_values_in_a_stable_overlay() {
    let dur = 30 * MIN;
    let sessions: Vec<Session> = (0..40)
        .map(|_| Session {
            arrive_us: 0,
            depart_us: dur * 10,
        })
        .collect();
    let trace = Trace::new("kv-stable", dur, sessions);
    let ops = kvstore::generate_ops(100, 3, 40, dur, 5);
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 5 * MIN;
    cfg.workload = Workload::Scripted(kvstore::to_script(&ops));
    cfg.record_deliveries = true;
    let res = run(cfg);
    let stats = kvstore::evaluate(&ops, &res.deliveries);
    assert_eq!(stats.puts_stored, 100);
    assert_eq!(
        stats.hit_rate(),
        1.0,
        "stable overlay: every GET finds its value ({stats:?})"
    );
}

#[test]
fn kvstore_without_replication_loses_values_under_churn() {
    // Under churn, home nodes die and roots move; the home-store model with
    // no replication must visibly lose values — the motivation for leaf-set
    // replication in CFS/PAST.
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 60.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 30 * MIN,
        seed: 6,
    });
    let n_sessions = trace.sessions().len();
    let ops = kvstore::generate_ops(150, 2, n_sessions, 30 * MIN, 7);
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 10 * MIN;
    cfg.workload = Workload::Scripted(kvstore::to_script(&ops));
    cfg.record_deliveries = true;
    let res = run(cfg);
    let stats = kvstore::evaluate(&ops, &res.deliveries);
    assert!(stats.gets_routed > 50, "routed {}", stats.gets_routed);
    assert!(
        stats.gets_missed > 0,
        "churn must lose some unreplicated values ({stats:?})"
    );
    assert!(
        stats.hit_rate() > 0.2,
        "but a fair share of GETs should still succeed ({stats:?})"
    );
}
