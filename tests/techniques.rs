//! Integration tests for the individual MSPastry techniques (§3.2, §4):
//! per-hop acks, active probing, self-tuning, and suppression — each switch
//! must move the metrics in the direction the paper reports.

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig, Workload};
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

fn churny_config(seed: u64) -> RunConfig {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 100.0,
        mean_session_us: 20.0 * 60e6,
        duration_us: 40 * MIN,
        seed,
    });
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 10 * MIN;
    cfg.metrics_window_us = 5 * MIN;
    cfg.seed = seed;
    cfg
}

#[test]
fn disabling_both_reliability_techniques_loses_many_lookups() {
    let mut cfg = churny_config(31);
    cfg.protocol.per_hop_acks = false;
    cfg.protocol.active_rt_probing = false;
    let without = run(cfg);
    let with = run(churny_config(31));
    assert!(
        without.report.loss_rate > 10.0 * with.report.loss_rate.max(1e-4),
        "no acks + no probing must lose far more: {} vs {}",
        without.report.loss_rate,
        with.report.loss_rate
    );
    assert!(
        without.report.loss_rate > 0.01,
        "expected substantial loss without reliability techniques, got {}",
        without.report.loss_rate
    );
}

#[test]
fn per_hop_acks_cut_losses_by_orders_of_magnitude() {
    let mut cfg = churny_config(32);
    cfg.protocol.per_hop_acks = false;
    let without = run(cfg);
    let with = run(churny_config(32));
    assert!(
        with.report.loss_rate <= without.report.loss_rate,
        "acks must not increase losses ({} vs {})",
        with.report.loss_rate,
        without.report.loss_rate
    );
}

#[test]
fn tighter_loss_target_probes_faster_and_costs_more() {
    let mut cfg5 = churny_config(33);
    cfg5.protocol.target_raw_loss = 0.05;
    let at5 = run(cfg5);
    let mut cfg1 = churny_config(33);
    cfg1.protocol.target_raw_loss = 0.01;
    let at1 = run(cfg1);
    assert!(
        at1.mean_t_rt_us < at5.mean_t_rt_us,
        "1% target must adopt a shorter probing period ({} vs {})",
        at1.mean_t_rt_us,
        at5.mean_t_rt_us
    );
    let rt5 = at5.report.totals_per_node_per_sec[2];
    let rt1 = at1.report.totals_per_node_per_sec[2];
    assert!(
        rt1 > rt5,
        "faster probing must show up as more rt-probe traffic ({rt1} vs {rt5})"
    );
}

#[test]
fn application_traffic_suppresses_probes() {
    let mut low = churny_config(34);
    low.workload = Workload::Poisson {
        rate_per_node_per_sec: 0.001,
    };
    let low_traffic = run(low);
    let mut high = churny_config(34);
    high.workload = Workload::Poisson {
        rate_per_node_per_sec: 1.0,
    };
    let high_traffic = run(high);
    // Liveness-probe traffic must drop when lookups already prove liveness
    // (§4.1: >70% of the active probes suppressed at 1 lookup/s). The broad
    // rt-probe *category* also contains unsuppressed maintenance messages,
    // so compare the exact `rt-probe` message counts.
    let probes = |r: &harness::Report| {
        r.fine_counts
            .iter()
            .find(|(k, _)| *k == "rt-probe")
            .map(|(_, c)| *c)
            .unwrap_or(0) as f64
            / r.node_seconds
    };
    let low_probes = probes(&low_traffic.report);
    let high_probes = probes(&high_traffic.report);
    assert!(
        high_probes < 0.5 * low_probes,
        "suppression must cut liveness probes: {high_probes} vs {low_probes}"
    );
}

#[test]
fn suppression_switch_off_increases_control_traffic() {
    let mut on = churny_config(35);
    on.workload = Workload::Poisson {
        rate_per_node_per_sec: 0.5,
    };
    let with_suppression = run(on);
    let mut off = churny_config(35);
    off.workload = Workload::Poisson {
        rate_per_node_per_sec: 0.5,
    };
    off.protocol.probe_suppression = false;
    let without_suppression = run(off);
    assert!(
        with_suppression.report.control_msgs_per_node_per_sec
            < without_suppression.report.control_msgs_per_node_per_sec,
        "suppression must reduce control traffic ({} vs {})",
        with_suppression.report.control_msgs_per_node_per_sec,
        without_suppression.report.control_msgs_per_node_per_sec
    );
}

#[test]
fn smaller_b_means_more_hops_and_higher_rdp() {
    let mut b4 = churny_config(36);
    b4.protocol.b = 4;
    let with_b4 = run(b4);
    let mut b1 = churny_config(36);
    b1.protocol.b = 1;
    let with_b1 = run(b1);
    assert!(
        with_b1.report.mean_hops > with_b4.report.mean_hops,
        "b=1 must take more hops ({} vs {})",
        with_b1.report.mean_hops,
        with_b4.report.mean_hops
    );
}

#[test]
fn larger_leaf_sets_reduce_hops() {
    let mut l8 = churny_config(37);
    l8.protocol.leaf_set_size = 8;
    let with_l8 = run(l8);
    let mut l64 = churny_config(37);
    l64.protocol.leaf_set_size = 64;
    let with_l64 = run(l64);
    assert!(
        with_l64.report.mean_hops < with_l8.report.mean_hops,
        "l=64 must shorten routes ({} vs {})",
        with_l64.report.mean_hops,
        with_l8.report.mean_hops
    );
}
