//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()` for the
//! primitive types, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed; there is
//! no shrinking — a failing case panics with the assertion message, which is
//! enough signal for CI.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name, so every test owns a stable
    /// stream independent of execution order.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates values through a strategy-producing function (dependent
    /// generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as Self
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start + draw as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                lo + draw as $t
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_strategy_for_sint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_sint_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_strategy_for_float_range!(f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// See `proptest::collection::vec`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// See `proptest::sample::select`.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly among `options`.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Mirror of the upstream `prop` module paths (`prop::collection`,
/// `prop::sample`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = ( $( $crate::Strategy::sample(&($strat), &mut __rng), )+ );
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(u64);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 1usize..=3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec(any::<u64>().prop_map(Wrapped), 0..8)) {
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn select_picks_members(b in prop::sample::select(vec![1u8, 2, 4])) {
            prop_assert!(b == 1 || b == 2 || b == 4);
        }

        #[test]
        fn tuples_work((a, b) in (0u32..10, any::<bool>()), c in any::<u128>()) {
            prop_assert!(a < 10);
            let _ = (b, c);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
