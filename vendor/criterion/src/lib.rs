//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset used by the micro-benchmarks: [`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], `black_box`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain adaptive timing loop printing mean ns/iter — no statistics engine,
//! but stable enough to compare runs on one machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How expensive one batch of inputs is to set up (accepted for API
/// compatibility; the stand-in sizes batches itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-runs for every iteration.
    PerIteration,
}

/// Drives the timing loops of one benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    measured_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over an adaptively chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 5_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let t1 = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.measured_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `name` and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let (value, unit) = if b.measured_ns >= 1e6 {
            (b.measured_ns / 1e6, "ms")
        } else if b.measured_ns >= 1e3 {
            (b.measured_ns / 1e3, "us")
        } else {
            (b.measured_ns, "ns")
        };
        println!("{name:<40} {value:>10.2} {unit}/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }
}
