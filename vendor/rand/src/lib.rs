//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`rngs::SmallRng`] (an
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! deterministic for a given seed, which is all the simulator requires; the
//! exact stream differs from upstream `rand`, so seeds are comparable within
//! this repository only.

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                impl_standard_int!(@draw rng, $m)
            }
        }
    )*};
    (@draw $rng:ident, u32) => { $rng.next_u32() as Self };
    (@draw $rng:ident, u64) => { $rng.next_u64() as Self };
    (@draw $rng:ident, u128) => {
        ((($rng.next_u64() as u128) << 64) | $rng.next_u64() as u128) as Self
    };
}

impl_standard_int!(u8 => u32, u16 => u32, u32 => u32, i8 => u32, i16 => u32, i32 => u32);
impl_standard_int!(u64 => u64, i64 => u64, usize => u64, isize => u64);
impl_standard_int!(u128 => u128, i128 => u128);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (<u128 as Standard>::sample_standard(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 range: every value is admissible.
                    return <u128 as Standard>::sample_standard(rng) as $t;
                }
                lo + (<u128 as Standard>::sample_standard(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (<u128 as Standard>::sample_standard(rng) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (<u128 as Standard>::sample_standard(rng) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: well-distributed even for adjacent input seeds.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Statistically solid and far cheaper than a cryptographic generator —
    /// exactly the niche `rand`'s `SmallRng` fills.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniform_f64_is_half_on_average() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
