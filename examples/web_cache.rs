//! Squirrel web cache: run a one-day corporate Squirrel deployment (the
//! paper's §5.3.1 application) and print cache behaviour plus the hourly
//! traffic profile whose weekday shape Figure 8 validates.
//!
//! ```sh
//! cargo run --release -p harness --example web_cache
//! ```

use apps::squirrel::{run_squirrel, SquirrelParams};
use churn::synth::DAY_US;

fn main() {
    let mut params = SquirrelParams::quick();
    params.web.clients = 30;
    params.web.duration_us = DAY_US;

    println!(
        "simulating a {}-machine Squirrel deployment for one day...",
        params.web.clients
    );
    let result = run_squirrel(&params);

    println!();
    println!("requests served    : {}", result.cache.served);
    println!("cache hits         : {}", result.cache.hits);
    println!("cache misses       : {}", result.cache.misses);
    println!("skipped (host down): {}", result.cache.skipped);
    println!(
        "hit rate           : {:.1}%",
        result.cache.hit_rate() * 100.0
    );
    println!(
        "incorrect deliveries: {} (consistent routing keeps the cache coherent)",
        result.run.report.incorrect
    );

    println!();
    println!("hourly total traffic per node (msg/s) — office-hours bump visible:");
    for (h, w) in result.run.report.windows.iter().enumerate() {
        let lookups = w.per_category_per_node_per_sec[5];
        let total = w.control_per_node_per_sec + lookups;
        let bar = "#".repeat((total * 120.0).min(60.0) as usize);
        println!("  {h:>2}h {total:>7.3} {bar}");
    }
}
