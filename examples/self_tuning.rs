//! Self-tuning in action: the same overlay at three very different failure
//! rates keeps roughly the same delay because nodes retune their
//! routing-table probing period `Trt` to hit the target raw loss rate
//! (§4.1) — probing hard under churn, backing off when the network is calm.
//!
//! ```sh
//! cargo run --release -p harness --example self_tuning
//! ```

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig};
use mspastry::tuning;
use mspastry::Config;
use topology::TopologyKind;

fn main() {
    // First show the model itself: the closed-form Trt for a range of
    // failure rates at N = 10,000.
    let cfg = Config::default();
    println!("analytic model (N = 10,000, target Lr = 5%):");
    println!("  failure rate (per node per s) | tuned Trt");
    for mu_per_s in [1e-5, 5e-5, 2e-4, 1e-3] {
        let t = tuning::solve_t_rt(&cfg, mu_per_s / 1e6, 10_000.0);
        println!("  {:>28.0e} | {:>8.1} s", mu_per_s, t as f64 / 1e6);
    }

    println!();
    println!("simulation (150 nodes, 40 simulated minutes each):");
    println!("session | mean adopted Trt |  RDP | rt-probe msg/s/node");
    for minutes in [600u64, 60, 15] {
        let trace = poisson::trace(&PoissonParams {
            mean_nodes: 150.0,
            mean_session_us: minutes as f64 * 60e6,
            duration_us: 40 * 60 * 1_000_000,
            seed: 99,
        });
        let mut cfg = RunConfig::new(trace);
        cfg.topology = TopologyKind::GaTechSmall;
        let res = run(cfg);
        println!(
            "{:>4}min | {:>13.1} s  | {:.2} | {:.4}",
            minutes,
            res.mean_t_rt_us / 1e6,
            res.report.mean_rdp,
            res.report.totals_per_node_per_sec[2]
        );
    }
    println!();
    println!("expected shape: shorter sessions → smaller Trt (faster probing),");
    println!("while RDP stays roughly flat — delay bought with probing traffic.");
}
