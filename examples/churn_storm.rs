//! Churn storm: drive an overlay through increasingly brutal session times
//! (down to 5-minute means, far below anything measured in deployed
//! systems) and watch dependability degrade gracefully — the paper's
//! Figure 5 in miniature.
//!
//! Doubles as the smallest complete demo of the scenario engine: a custom
//! experiment is one `Scenario` declaration — a named list of points, each
//! a seed-indexed `RunConfig` builder — and `run_sweep` executes the whole
//! (point × seed) grid across the machine's cores, with means and standard
//! deviations aggregated per point.
//!
//! ```sh
//! cargo run --release -p harness --example churn_storm
//! ```

use churn::poisson::{self, PoissonParams};
use harness::scenario::{Scale, ScenarioPoint, SEED_TRACE_STRIDE};
use harness::{run_sweep, RunConfig, Scenario, SweepConfig};
use topology::TopologyKind;

fn storm_points(_s: Scale) -> Vec<ScenarioPoint> {
    [120u64, 60, 30, 15, 5]
        .into_iter()
        .map(|minutes| {
            ScenarioPoint::new(format!("{minutes}min"), move |seed| {
                let trace = poisson::trace(&PoissonParams {
                    mean_nodes: 150.0,
                    mean_session_us: minutes as f64 * 60e6,
                    duration_us: 45 * 60 * 1_000_000,
                    seed: 7 + minutes + seed * SEED_TRACE_STRIDE,
                });
                let mut cfg = RunConfig::new(trace);
                cfg.topology = TopologyKind::GaTechSmall;
                cfg.seed = minutes + seed;
                cfg
            })
        })
        .collect()
}

fn main() {
    let scenario = Scenario {
        name: "churn_storm",
        title: "session-time sweep under Poisson churn",
        figure: "Fig. 5 (miniature)",
        points: storm_points,
    };
    let mut sweep_cfg = SweepConfig::new(Scale::Quick);
    sweep_cfg.seeds = 2; // two independent trace+run seeds per point

    println!("sweeping 5 churn levels x {} seeds ...", sweep_cfg.seeds);
    let sweep = run_sweep(&scenario, &sweep_cfg);

    println!();
    println!("session |   loss   |  RDP (mean±sd) | control msg/s/node");
    println!("--------+----------+----------------+-------------------");
    for p in &sweep.points {
        let get = |name: &str| p.stats.iter().find(|m| m.name == name).unwrap();
        println!(
            "{:>7} | {:.2e} | {:>6.2} ± {:.2}  | {:.3}",
            p.label,
            get("loss_rate").mean,
            get("mean_rdp").mean,
            get("mean_rdp").stddev,
            get("control_msgs_per_node_per_sec").mean,
        );
    }
    println!();
    println!("expected shape: zero incorrect deliveries at every churn level,");
    println!("loss stays ~1e-4 or below, RDP roughly flat until 5-minute");
    println!("sessions, control traffic rising as sessions shrink.");
}
