//! Churn storm: drive an overlay through increasingly brutal session times
//! (down to 5-minute means, far below anything measured in deployed
//! systems) and watch dependability degrade gracefully — the paper's
//! Figure 5 in miniature.
//!
//! ```sh
//! cargo run --release -p harness --example churn_storm
//! ```

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig};
use topology::TopologyKind;

fn main() {
    println!("session | active |   loss   | incorrect |  RDP | control msg/s/node");
    println!("--------+--------+----------+-----------+------+-------------------");
    for minutes in [120u64, 60, 30, 15, 5] {
        let trace = poisson::trace(&PoissonParams {
            mean_nodes: 150.0,
            mean_session_us: minutes as f64 * 60e6,
            duration_us: 45 * 60 * 1_000_000,
            seed: 7 + minutes,
        });
        let mut cfg = RunConfig::new(trace);
        cfg.topology = TopologyKind::GaTechSmall;
        cfg.seed = minutes;
        let res = run(cfg);
        let r = &res.report;
        println!(
            "{:>4}min | {:>6} | {:.2e} | {:>9} | {:.2} | {:.3}",
            minutes,
            res.final_active,
            r.loss_rate,
            r.incorrect,
            r.mean_rdp,
            r.control_msgs_per_node_per_sec
        );
    }
    println!();
    println!("expected shape: zero incorrect deliveries at every churn level,");
    println!("loss stays ~1e-4 or below, RDP roughly flat until 5-minute");
    println!("sessions, control traffic rising as sessions shrink.");
}
