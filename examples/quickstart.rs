//! Quickstart: build a small MSPastry overlay under churn, route lookups,
//! and print the paper's headline dependability and performance metrics.
//!
//! ```sh
//! cargo run --release -p harness --example quickstart
//! ```

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig, CATEGORY_NAMES};
use topology::TopologyKind;

fn main() {
    // 150 nodes with 30-minute average sessions — already harsher churn than
    // the measured Gnutella deployment — for one simulated hour.
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 150.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 3600 * 1_000_000,
        seed: 42,
    });

    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechSmall;
    cfg.seed = 42;

    println!("simulating one hour of a 150-node overlay under churn...");
    let result = run(cfg);
    let r = &result.report;

    println!();
    println!("active nodes at end      : {}", result.final_active);
    println!("lookups issued           : {}", r.issued);
    println!("incorrect delivery rate  : {:.2e}", r.incorrect_rate);
    println!("lookup loss rate         : {:.2e}", r.loss_rate);
    println!("mean RDP (delay stretch) : {:.2}", r.mean_rdp);
    println!("mean overlay hops        : {:.2}", r.mean_hops);
    println!(
        "control traffic          : {:.3} msg/s/node",
        r.control_msgs_per_node_per_sec
    );
    println!();
    println!("control traffic by message type (msg/s/node):");
    for (i, name) in CATEGORY_NAMES.iter().enumerate().take(5) {
        println!("  {:>18}: {:.4}", name, r.totals_per_node_per_sec[i]);
    }
    if let (Some(p50), Some(p95)) = (r.join_latency_quantile(0.5), r.join_latency_quantile(0.95)) {
        println!();
        println!(
            "join latency             : p50 {:.1} s, p95 {:.1} s",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6
        );
    }
}
