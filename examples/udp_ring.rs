//! A real MSPastry overlay over UDP on localhost: the exact same protocol
//! state machine that runs in the simulator, bound to actual sockets — the
//! paper's "the code that runs in the simulator and in the real deployment
//! is the same with the exception of low level messaging".
//!
//! ```sh
//! cargo run --release -p transport --example udp_ring
//! ```

use mspastry::Id;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use transport::{lan_config, UdpNode};

fn main() -> std::io::Result<()> {
    let n = 8;
    let mut rng = SmallRng::seed_from_u64(1);
    let ids: Vec<Id> = (0..n).map(|_| Id::random(&mut rng)).collect();

    println!("bootstrapping an {n}-node overlay on 127.0.0.1 ...");
    let mut nodes = Vec::new();
    let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None)?;
    println!("  {} listening on {}", boot.id(), boot.local_addr());
    let contact = (boot.id(), boot.local_addr());
    nodes.push(boot);
    for &id in &ids[1..] {
        let t0 = Instant::now();
        let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(contact))?;
        let ok = node.wait_active(Duration::from_secs(15));
        println!(
            "  {} on {} joined in {:.0} ms (active: {ok})",
            node.id(),
            node.local_addr(),
            t0.elapsed().as_millis()
        );
        nodes.push(node);
    }

    println!("\nrouting one lookup to each node's identifier ...");
    for (i, &target) in ids.iter().enumerate() {
        nodes[(i + 3) % n].lookup(target, i as u64);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut received = 0;
    while received < n && Instant::now() < deadline {
        for (i, node) in nodes.iter().enumerate() {
            while let Ok(d) = node.deliveries().try_recv() {
                println!(
                    "  node {} delivered payload {} for key {} in {} hops",
                    ids[i], d.payload, d.key, d.hops
                );
                received += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("\n{received}/{n} lookups delivered at their root nodes.");
    for node in nodes {
        node.shutdown();
    }
    Ok(())
}
