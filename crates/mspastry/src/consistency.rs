//! Consistent routing (§3.1, Fig. 2): the join protocol, the LS-PROBE /
//! LS-PROBE-REPLY state machine, failure marking and leaf-set repair.
//!
//! Activation is gated on probing every initial leaf-set member, leaf sets
//! are eagerly repaired when a side runs short, and failed nodes are never
//! propagated between routing states (peers confirm a gossiped failure with
//! their own probe before believing it).

use crate::diag::ProbeCause;
use crate::events::{Action, Effects, TimerKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::id::{Id, NodeId};
use crate::messages::{LookupId, Message};
use crate::node::Node;
use crate::pns::{MeasurePurpose, NnState};
use crate::probes::{ProbeKind, ProbeManager, TimeoutVerdict};
use crate::routing::{route, NextHop};
use crate::routing_table::DIST_UNKNOWN;
use crate::tuning::SelfTuner;
use obs::HopKind;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

pub(crate) const FAILED_CAP: usize = 512;

/// Join/probe/repair state owned by the consistency layer.
#[derive(Debug)]
pub(crate) struct Consistency {
    pub(crate) probes: ProbeManager,
    pub(crate) probe_nonce: u64,
    pub(crate) failed: FxHashSet<NodeId>,
    pub(crate) failed_order: VecDeque<NodeId>,
    pub(crate) repair_paced: FxHashMap<NodeId, u64>,
    pub(crate) buffered_joins: Vec<(NodeId, Vec<Vec<NodeId>>, u32)>,
    pub(crate) join_seed: Option<NodeId>,
}

impl Consistency {
    pub(crate) fn new() -> Self {
        Consistency {
            probes: ProbeManager::new(),
            probe_nonce: 0,
            failed: FxHashSet::default(),
            failed_order: VecDeque::new(),
            repair_paced: FxHashMap::default(),
            buffered_joins: Vec::new(),
            join_seed: None,
        }
    }

    /// Capped insertion into the failure set (oldest entries evicted).
    pub(crate) fn insert_failed(&mut self, j: NodeId) {
        if self.failed.insert(j) {
            self.failed_order.push_back(j);
            while self.failed_order.len() > FAILED_CAP {
                if let Some(old) = self.failed_order.pop_front() {
                    self.failed.remove(&old);
                }
            }
        }
    }

    /// Removes `j` from the failure set and its eviction order.
    pub(crate) fn unfail(&mut self, j: NodeId) -> bool {
        if self.failed.remove(&j) {
            self.failed_order.retain(|&n| n != j);
            return true;
        }
        false
    }

    pub(crate) fn clear_failed(&mut self) {
        self.failed.clear();
        self.failed_order.clear();
    }
}

impl Node {
    // ----- join -------------------------------------------------------------

    pub(crate) fn on_join(&mut self, seed: Option<NodeId>, fx: &mut Effects) {
        self.consistency.join_seed = seed;
        self.maintenance.tuner = SelfTuner::new(&self.ctx.cfg, self.ctx.now_us);
        // Periodic timers, staggered to avoid fleet-wide synchronisation.
        let stagger = |rng: &mut SmallRng, period: u64| rng.gen_range(1..=period.max(1));
        let hb = stagger(&mut self.ctx.rng, self.ctx.cfg.t_ls_us);
        fx.timer(hb, TimerKind::Heartbeat);
        let rp = stagger(&mut self.ctx.rng, self.maintenance.t_rt_us);
        if self.ctx.cfg.active_rt_probing {
            fx.timer(rp, TimerKind::RtProbeTick);
        }
        let rm = stagger(&mut self.ctx.rng, self.ctx.cfg.rt_maintenance_period_us);
        fx.timer(rm, TimerKind::RtMaintenance);
        if self.ctx.cfg.self_tuning {
            let st = stagger(&mut self.ctx.rng, self.ctx.cfg.self_tune_period_us);
            fx.timer(st, TimerKind::SelfTune);
        }
        match seed {
            None => self.activate(fx),
            Some(seed) => {
                fx.timer(self.ctx.cfg.join_retry_us, TimerKind::JoinRetry);
                if self.ctx.cfg.nearest_neighbor_join {
                    self.measurement.nn = Some(NnState::new(seed));
                    self.send(seed, Message::NnLeafSetRequest, fx);
                    self.start_measurement(seed, MeasurePurpose::NearestNeighbor, fx);
                } else {
                    self.send_join_request(seed, fx);
                }
            }
        }
    }

    pub(crate) fn send_join_request(&mut self, to: NodeId, fx: &mut Effects) {
        self.send(
            to,
            Message::JoinRequest {
                joiner: self.ctx.id,
                rows: Vec::new(),
                hops: 0,
            },
            fx,
        );
    }

    pub(crate) fn on_join_retry(&mut self, fx: &mut Effects) {
        if !self.ctx.active {
            if let Some(seed) = self.consistency.join_seed {
                // Prefer whatever the nearest-neighbour phase found.
                let to = self
                    .measurement
                    .nn
                    .as_ref()
                    .map(|n| n.current())
                    .unwrap_or(seed);
                self.measurement.nn = None;
                self.send_join_request(to, fx);
                fx.timer(self.ctx.cfg.join_retry_us, TimerKind::JoinRetry);
            }
        }
    }

    pub(crate) fn activate(&mut self, fx: &mut Effects) {
        if self.ctx.active {
            return;
        }
        self.ctx.active = true;
        self.measurement.nn = None;
        self.consistency.clear_failed();
        fx.actions.push(Action::BecameActive);
        // Announce: send each initialised row to the nodes in that row so
        // they learn about us and gossip previous joiners (§2).
        for r in self.rt.occupied_rows() {
            let mut entries = self.rt.row_ids(r);
            for &to in entries.clone().iter() {
                entries.push(self.ctx.id);
                self.send(
                    to,
                    Message::RtRowAnnounce {
                        row: r,
                        entries: entries.clone(),
                    },
                    fx,
                );
                entries.pop();
            }
        }
        // Symmetric PNS: the joiner initiates distance probing of the nodes
        // in its routing state; they wait for the measured values (§4.2).
        let targets: Vec<NodeId> = self
            .rt
            .entries()
            .filter(|e| e.distance_us == DIST_UNKNOWN)
            .map(|e| e.id)
            .collect();
        for t in targets {
            self.start_measurement(t, MeasurePurpose::ConsiderRt, fx);
        }
        // Route anything buffered during the join.
        let joins = std::mem::take(&mut self.consistency.buffered_joins);
        for (joiner, rows, hops) in joins {
            self.on_join_request(joiner, rows, hops, fx);
        }
        self.flush_buffered(fx);
    }

    /// Announces a voluntary departure to every node in the routing state.
    /// The host is expected to stop the node afterwards.
    pub(crate) fn on_leave(&mut self, fx: &mut Effects) {
        if !self.ctx.active {
            return;
        }
        for peer in self.routing_state_ids() {
            self.send(peer, Message::Leaving, fx);
        }
        self.ctx.active = false;
    }

    pub(crate) fn on_join_request(
        &mut self,
        joiner: NodeId,
        mut rows: Vec<Vec<NodeId>>,
        hops: u32,
        fx: &mut Effects,
    ) {
        if joiner == self.ctx.id {
            return;
        }
        // Contribute routing-table rows 0..=spl (Fig. 2: R.add(Ri)).
        let spl = self.ctx.id.shared_prefix_len(joiner, self.ctx.cfg.b);
        let max_row = spl.min(Id::rows(self.ctx.cfg.b) - 1);
        if rows.len() <= max_row {
            rows.resize(max_row + 1, Vec::new());
        }
        for (r, row) in rows.iter_mut().enumerate().take(max_row + 1) {
            if row.is_empty() {
                *row = self.rt.row_ids(r);
            }
        }
        // The hop itself belongs in the joiner's table at row `spl`.
        if !rows[max_row].contains(&self.ctx.id) {
            rows[max_row].push(self.ctx.id);
        }
        let excluded = self.excluded_set(&[]);
        match route(&self.rt, &self.ls, joiner, &|n| excluded.contains(&n)) {
            NextHop::Local => {
                if self.ctx.active {
                    let mut leaf_set = self.ls.members();
                    leaf_set.push(self.ctx.id);
                    self.send(joiner, Message::JoinReply { rows, leaf_set }, fx);
                } else if self.consistency.buffered_joins.len() < 64 {
                    // Buffer and re-route once we are active ourselves
                    // (Fig. 2 buffers messages received while inactive).
                    self.consistency.buffered_joins.push((joiner, rows, hops));
                }
            }
            NextHop::Forward { next, .. } => {
                self.send(
                    next,
                    Message::JoinRequest {
                        joiner,
                        rows,
                        hops: hops + 1,
                    },
                    fx,
                );
            }
        }
    }

    pub(crate) fn on_join_reply(
        &mut self,
        from: NodeId,
        rows: Vec<Vec<NodeId>>,
        leaf_set: Vec<NodeId>,
        fx: &mut Effects,
    ) {
        if self.ctx.active {
            return;
        }
        // Bootstrap the routing state (Fig. 2: Ri.add(R ∪ L); Li.add(L)).
        let nn_dists: FxHashMap<NodeId, u64> = self
            .measurement
            .nn
            .as_ref()
            .map(|nn| nn.measured().clone())
            .unwrap_or_default();
        for row in &rows {
            for &n in row {
                let d = nn_dists
                    .get(&n)
                    .copied()
                    .unwrap_or_else(|| self.measurement.known_dist(n));
                self.rt.offer(n, d);
            }
        }
        for &n in &leaf_set {
            let d = self.measurement.known_dist(n);
            self.rt.offer(n, d);
            self.ls.add(n);
        }
        // The replying root spoke to us directly.
        self.ls.add(from);
        self.rt.offer(from, self.measurement.known_dist(from));
        // Probe every leaf-set member before becoming active.
        for m in self.ls.members() {
            if self.probe(m, ProbeKind::LeafSet, true, fx) {
                self.ctx.obs.cause(ProbeCause::JoinBootstrap);
            }
        }
        if self.consistency.probes.leaf_set_outstanding() == 0 {
            // Degenerate bootstrap (no members): singleton overlay.
            self.done_probing(fx);
        }
    }

    // ----- leaf-set probing (Fig. 2) ---------------------------------------

    /// Starts a probe of `j` unless one is outstanding or `j` is failed.
    /// `announce` controls whether exhausting the probe announces the failure
    /// to the leaf set (confirmation probes of an already-announced failure
    /// do not re-announce).
    pub(crate) fn probe(
        &mut self,
        j: NodeId,
        kind: ProbeKind,
        announce: bool,
        fx: &mut Effects,
    ) -> bool {
        if j == self.ctx.id
            || self.consistency.failed.contains(&j)
            || self.consistency.probes.contains(j)
        {
            return false;
        }
        if !self
            .consistency
            .probes
            .begin(j, kind, announce, self.ctx.now_us)
        {
            return false;
        }
        self.send_probe_message(j, kind, fx);
        fx.timer(
            self.ctx.cfg.t_o_us,
            TimerKind::ProbeTimeout {
                target: j,
                attempt: 0,
            },
        );
        true
    }

    pub(crate) fn send_probe_message(&mut self, j: NodeId, kind: ProbeKind, fx: &mut Effects) {
        match kind {
            ProbeKind::LeafSet => {
                let msg = Message::LsProbe {
                    leaf_set: self.ls.members(),
                    failed: self.consistency.failed.iter().copied().collect(),
                    trt_hint: self.hint(),
                };
                self.send(j, msg, fx);
            }
            ProbeKind::Liveness => {
                self.consistency.probe_nonce += 1;
                self.send(
                    j,
                    Message::RtProbe {
                        nonce: self.consistency.probe_nonce,
                    },
                    fx,
                );
            }
        }
    }

    pub(crate) fn on_ls_probe(
        &mut self,
        j: NodeId,
        leaf_set: Vec<NodeId>,
        failed: Vec<NodeId>,
        is_probe: bool,
        fx: &mut Effects,
    ) {
        // failed_i := failed_i − {j}
        self.consistency.unfail(j);
        // L_i.add({j}); R_i.add({j}) — j spoke to us directly.
        self.ls.add(j);
        self.rt.offer(j, self.measurement.known_dist(j));
        // Probe members the sender believes faulty (to confirm / recover from
        // false positives), then drop them from the leaf set.
        for &n in &failed {
            if n != self.ctx.id && self.ls.contains(n) {
                // Confirmation probe: do not re-announce on exhaustion.
                if self.probe(n, ProbeKind::LeafSet, false, fx) {
                    self.ctx.obs.cause(ProbeCause::Confirm);
                }
                self.ls.remove(n);
            }
        }
        // Candidates from the sender's leaf set are probed before inclusion.
        // Only candidates that would actually belong to the resulting leaf
        // set are probed; probing every admissible node would flood ~l
        // probes per vacancy.
        let failed = &self.consistency.failed;
        for n in self
            .ls
            .useful_candidates_filtered(&leaf_set, |n| !failed.contains(&n))
        {
            if self.probe(n, ProbeKind::LeafSet, true, fx) {
                self.ctx.obs.cause(ProbeCause::Candidate);
            }
        }
        if is_probe {
            let msg = Message::LsProbeReply {
                leaf_set: self.ls.members(),
                failed: self.consistency.failed.iter().copied().collect(),
                trt_hint: self.hint(),
            };
            self.send(j, msg, fx);
        } else {
            self.clear_probe(j);
            self.done_probing(fx);
        }
    }

    /// Clears an outstanding probe to `j` after any direct reply and samples
    /// its RTT.
    pub(crate) fn clear_probe(&mut self, j: NodeId) {
        if let Some(st) = self.consistency.probes.on_reply(j) {
            let rtt = self.ctx.now_us.saturating_sub(st.sent_at_us);
            self.ctx.obs.rtt_sample(rtt);
            self.reliability.rtos.update(j, rtt);
        }
    }

    pub(crate) fn done_probing(&mut self, fx: &mut Effects) {
        if self.consistency.probes.leaf_set_outstanding() > 0 {
            return;
        }
        if self.ls.is_complete() {
            if !self.ctx.active {
                self.activate(fx);
            }
            // Fig. 2: whenever probing drains with a complete leaf set,
            // `failed` is cleared. This stops stale false-positive entries
            // from being gossiped forever (a peer's sticky `failed` set
            // would otherwise keep evicting a live node from our leaf set,
            // re-probing it in an endless remove/confirm/re-add cycle).
            self.consistency.clear_failed();
            return;
        }
        // Leaf-set repair: extend the short side by probing its farthest
        // member; with an empty side, fall back to the closest known node on
        // that side (generalised repair).
        let half = self.ctx.cfg.leaf_half();
        let mut repair_targets: Vec<NodeId> = Vec::new();
        if self.ls.left().len() < half {
            match self.ls.leftmost() {
                Some(lm) => repair_targets.push(lm),
                None => {
                    if let Some(c) = self.closest_known(|own, n| own.ccw_dist(n)) {
                        repair_targets.push(c);
                    }
                }
            }
        }
        if self.ls.right().len() < half {
            match self.ls.rightmost() {
                Some(rm) => repair_targets.push(rm),
                None => {
                    if let Some(c) = self.closest_known(|own, n| own.cw_dist(n)) {
                        repair_targets.push(c);
                    }
                }
            }
        }
        if repair_targets.is_empty() {
            // Nobody left to ask: the overlay (as far as we know) is just us.
            if !self.ctx.active {
                self.activate(fx);
            }
            return;
        }
        for t in repair_targets {
            // Pace repair probes so an unhelpful neighbour is not hammered.
            let last = self.consistency.repair_paced.get(&t).copied().unwrap_or(0);
            if self.ctx.now_us.saturating_sub(last) >= self.ctx.cfg.t_o_us || last == 0 {
                self.consistency
                    .repair_paced
                    .insert(t, self.ctx.now_us.max(1));
                if self.probe(t, ProbeKind::LeafSet, true, fx) {
                    self.ctx.obs.cause(ProbeCause::Repair);
                }
            }
        }
    }

    pub(crate) fn closest_known(&self, dist: impl Fn(NodeId, NodeId) -> u128) -> Option<NodeId> {
        self.routing_state_ids()
            .into_iter()
            .filter(|n| !self.consistency.failed.contains(n))
            .min_by_key(|&n| dist(self.ctx.id, n))
    }

    pub(crate) fn mark_faulty(&mut self, j: NodeId, announce: bool, fx: &mut Effects) {
        let was_ls_member = self.ls.contains(j);
        self.ls.remove(j);
        self.rt.remove(j);
        self.consistency.insert_failed(j);
        self.maintenance.tuner.record_failure(self.ctx.now_us);
        self.maintenance.tuner.forget(j);
        self.reliability.rtos.forget(j);
        self.measurement.known_dists.remove(&j);
        self.measurement.measurer.cancel(j);
        self.reliability.suspected.remove(&j);
        if was_ls_member && self.ctx.active && announce {
            // Announce the failure to the remaining leaf-set members; their
            // replies provide replacement candidates (§4.1).
            for m in self.ls.members() {
                if self.probe(m, ProbeKind::LeafSet, true, fx) {
                    self.ctx.obs.cause(ProbeCause::Announce);
                }
            }
        }
        // Lookups still awaiting an ack from `j` will never get one —
        // re-route them now rather than waiting out their (backed-off)
        // retransmission timers.
        let stranded: Vec<LookupId> = self
            .reliability
            .pending
            .iter()
            .filter(|(_, p)| p.next == j)
            .map(|(&id, _)| id)
            .collect();
        for id in stranded {
            let Some(p) = self.reliability.pending.remove(&id) else {
                continue;
            };
            self.ctx.obs.stranded_reroute();
            if self.ctx.obs.sampled(id) {
                let ev =
                    self.ctx
                        .hop_ev(id, HopKind::Exclude, j.0, p.hops, p.attempt, 0, "stranded");
                self.ctx.obs.hop(ev);
            }
            let mut excluded = p.excluded;
            if !excluded.contains(&j) {
                excluded.push(j);
            }
            self.route_lookup(
                id,
                p.key,
                p.payload,
                p.hops,
                p.issued_at_us,
                excluded,
                p.attempt + 1,
                p.reroutes + 1,
                true,
                true,
                fx,
            );
        }
    }

    pub(crate) fn on_probe_timeout(&mut self, target: NodeId, attempt: u32, fx: &mut Effects) {
        match self.consistency.probes.on_timeout(
            target,
            attempt,
            self.ctx.cfg.max_probe_retries,
            self.ctx.now_us,
        ) {
            TimeoutVerdict::Stale => {}
            TimeoutVerdict::Retry(next_attempt) => {
                let kind = self
                    .consistency
                    .probes
                    .get(target)
                    .map(|s| s.kind)
                    .unwrap_or(ProbeKind::Liveness);
                self.send_probe_message(target, kind, fx);
                fx.timer(
                    self.ctx.cfg.t_o_us,
                    TimerKind::ProbeTimeout {
                        target,
                        attempt: next_attempt,
                    },
                );
            }
            TimeoutVerdict::Exhausted(st) => {
                self.mark_faulty(target, st.announce, fx);
                if st.kind == ProbeKind::LeafSet {
                    self.done_probing(fx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_set_is_capped_and_evicts_oldest() {
        let mut c = Consistency::new();
        for i in 0..(FAILED_CAP + 10) {
            c.insert_failed(Id(i as u128 + 1));
        }
        assert_eq!(c.failed.len(), FAILED_CAP);
        assert_eq!(c.failed_order.len(), FAILED_CAP);
        // The first ten inserts were evicted, the newest survive.
        assert!(!c.failed.contains(&Id(1)));
        assert!(c.failed.contains(&Id(FAILED_CAP as u128 + 10)));
        // Re-inserting an existing member must not duplicate its order entry.
        c.insert_failed(Id(FAILED_CAP as u128 + 10));
        assert_eq!(c.failed_order.len(), FAILED_CAP);
    }

    #[test]
    fn unfail_removes_from_set_and_order() {
        let mut c = Consistency::new();
        c.insert_failed(Id(7));
        assert!(c.unfail(Id(7)));
        assert!(!c.unfail(Id(7)), "second removal is a no-op");
        assert!(c.failed_order.is_empty());
    }
}
