//! Wire messages exchanged by MSPastry nodes.
//!
//! Messages are plain data; the transport (simulator or a real network
//! binding) supplies the sender identity. Several messages piggyback the
//! sender's local routing-table-probing-period estimate `trt_hint` so peers
//! can take the median (§4.1).

use crate::id::{Key, NodeId};

/// Identifies a lookup end-to-end: issuing node plus a per-node sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LookupId {
    /// The node that issued the lookup.
    pub src: NodeId,
    /// Issuer-local sequence number.
    pub seq: u64,
}

/// Application payload carried by a lookup. The overlay treats it as opaque;
/// the harness and the example applications use it to correlate requests.
pub type Payload = u64;

/// Broad classification of messages for the paper's control-traffic
/// breakdown (Figure 4, right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Application lookups on their first transmission at each hop.
    Lookup,
    /// Join requests/replies and nearest-neighbour discovery.
    Join,
    /// Leaf-set heartbeats and leaf-set probes/replies.
    LeafSet,
    /// Routing-table liveness probes/replies and maintenance rows.
    RtProbe,
    /// Distance probes, replies and symmetric reports.
    DistanceProbe,
    /// Per-hop acks and rerouted (retransmitted) lookups.
    AckRetransmit,
}

/// All MSPastry protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A join request routed towards the joining node's identifier. Each hop
    /// appends rows of its routing table (`rows[r]` is row `r`).
    JoinRequest {
        /// The node joining the overlay.
        joiner: NodeId,
        /// Routing-table rows harvested along the route.
        rows: Vec<Vec<NodeId>>,
        /// Overlay hops taken so far.
        hops: u32,
    },
    /// Sent by the joiner's root with the harvested state.
    JoinReply {
        /// Routing-table rows harvested along the join route.
        rows: Vec<Vec<NodeId>>,
        /// The root's leaf set.
        leaf_set: Vec<NodeId>,
    },
    /// Leaf-set probe (Fig. 2): carries the sender's leaf set and failed set.
    LsProbe {
        /// Sender's current leaf-set members.
        leaf_set: Vec<NodeId>,
        /// Nodes the sender believes faulty.
        failed: Vec<NodeId>,
        /// Sender's self-tuning estimate of the RT probing period.
        trt_hint: Option<u64>,
    },
    /// Reply to [`Message::LsProbe`]; same contents, no further reply.
    LsProbeReply {
        /// Sender's current leaf-set members.
        leaf_set: Vec<NodeId>,
        /// Nodes the sender believes faulty.
        failed: Vec<NodeId>,
        /// Sender's self-tuning estimate of the RT probing period.
        trt_hint: Option<u64>,
    },
    /// Periodic liveness heartbeat to the left leaf-set neighbour (§4.1).
    Heartbeat {
        /// Sender's self-tuning estimate of the RT probing period.
        trt_hint: Option<u64>,
    },
    /// Liveness probe of a routing-table entry.
    RtProbe {
        /// Matches the reply to the probe.
        nonce: u64,
    },
    /// Reply to [`Message::RtProbe`].
    RtProbeReply {
        /// Nonce copied from the probe.
        nonce: u64,
        /// Sender's self-tuning estimate of the RT probing period.
        trt_hint: Option<u64>,
    },
    /// Periodic routing-table maintenance: ask for a row (§2).
    RtRowRequest {
        /// Requested row index.
        row: usize,
    },
    /// Reply to [`Message::RtRowRequest`].
    RtRowReply {
        /// The row index.
        row: usize,
        /// The non-empty entries of that row.
        entries: Vec<NodeId>,
    },
    /// Announcement of a freshly initialised routing-table row by a newly
    /// joined node (§2: "i sends the rth row of the table to each node in
    /// that row").
    RtRowAnnounce {
        /// The row index in the announcer's table.
        row: usize,
        /// The non-empty entries of that row (including the announcer).
        entries: Vec<NodeId>,
    },
    /// Passive routing-table repair: ask the next hop for an entry for the
    /// empty slot found while routing (§2).
    RtSlotRequest {
        /// Row of the empty slot.
        row: usize,
        /// Column of the empty slot.
        col: u8,
    },
    /// Reply to [`Message::RtSlotRequest`].
    RtSlotReply {
        /// Row of the slot.
        row: usize,
        /// Column of the slot.
        col: u8,
        /// The responder's entry for that slot, if any.
        entry: Option<NodeId>,
    },
    /// Round-trip delay measurement probe.
    DistanceProbe {
        /// Matches the reply to the probe.
        nonce: u64,
    },
    /// Reply to [`Message::DistanceProbe`].
    DistanceProbeReply {
        /// Nonce copied from the probe.
        nonce: u64,
    },
    /// Symmetric-probing optimisation (§4.2): the measured round-trip delay,
    /// shared so the receiver can consider the sender for its routing table
    /// without probing again.
    DistanceReport {
        /// Measured round-trip delay, microseconds.
        rtt_us: u64,
    },
    /// Nearest-neighbour discovery: request the receiver's leaf set.
    NnLeafSetRequest,
    /// Reply to [`Message::NnLeafSetRequest`].
    NnLeafSetReply {
        /// The receiver's leaf-set members.
        nodes: Vec<NodeId>,
    },
    /// Nearest-neighbour discovery: request a routing-table row.
    NnRowRequest {
        /// Requested row index.
        row: usize,
    },
    /// Reply to [`Message::NnRowRequest`].
    NnRowReply {
        /// The row index.
        row: usize,
        /// The non-empty entries of that row.
        nodes: Vec<NodeId>,
    },
    /// An application lookup being routed to `key`'s root.
    Lookup {
        /// End-to-end identity of the lookup.
        id: LookupId,
        /// Destination key.
        key: Key,
        /// Opaque application payload.
        payload: Payload,
        /// Overlay hops taken so far.
        hops: u32,
        /// Time the lookup was issued (issuer's clock, microseconds).
        issued_at_us: u64,
        /// `true` when this transmission is a per-hop retransmission after a
        /// missed ack (counted as control traffic, not lookup traffic).
        is_retransmit: bool,
        /// `false` disables per-hop acks for this message (applications that
        /// do not need reliable routing can flag lookups accordingly, §3.2).
        wants_acks: bool,
    },
    /// Per-hop acknowledgement of a [`Message::Lookup`].
    Ack {
        /// The lookup being acknowledged.
        id: LookupId,
    },
    /// Voluntary departure announcement (extension; the paper treats every
    /// departure as a failure). Receivers remove the sender immediately
    /// instead of paying the failure-detection latency and probe traffic.
    Leaving,
}

impl Message {
    /// The control-traffic category of this message.
    ///
    /// Everything except first-transmission lookups is control traffic
    /// (§5.2: "this includes all traffic except lookup messages").
    pub fn category(&self) -> Category {
        use Message::*;
        match self {
            Lookup { is_retransmit, .. } => {
                if *is_retransmit {
                    Category::AckRetransmit
                } else {
                    Category::Lookup
                }
            }
            Ack { .. } => Category::AckRetransmit,
            JoinRequest { .. }
            | JoinReply { .. }
            | NnLeafSetRequest
            | NnLeafSetReply { .. }
            | NnRowRequest { .. }
            | NnRowReply { .. } => Category::Join,
            LsProbe { .. } | LsProbeReply { .. } | Heartbeat { .. } | Leaving => Category::LeafSet,
            RtProbe { .. }
            | RtProbeReply { .. }
            | RtRowRequest { .. }
            | RtRowReply { .. }
            | RtRowAnnounce { .. }
            | RtSlotRequest { .. }
            | RtSlotReply { .. } => Category::RtProbe,
            DistanceProbe { .. } | DistanceProbeReply { .. } | DistanceReport { .. } => {
                Category::DistanceProbe
            }
        }
    }

    /// `true` for messages counted as control traffic (everything except
    /// first-transmission lookups).
    pub fn is_control(&self) -> bool {
        self.category() != Category::Lookup
    }

    /// The message variant's name, for fine-grained traffic diagnostics.
    pub fn kind_name(&self) -> &'static str {
        use Message::*;
        match self {
            JoinRequest { .. } => "join-request",
            JoinReply { .. } => "join-reply",
            LsProbe { .. } => "ls-probe",
            LsProbeReply { .. } => "ls-probe-reply",
            Heartbeat { .. } => "heartbeat",
            RtProbe { .. } => "rt-probe",
            RtProbeReply { .. } => "rt-probe-reply",
            RtRowRequest { .. } => "rt-row-request",
            RtRowReply { .. } => "rt-row-reply",
            RtRowAnnounce { .. } => "rt-row-announce",
            RtSlotRequest { .. } => "rt-slot-request",
            RtSlotReply { .. } => "rt-slot-reply",
            DistanceProbe { .. } => "distance-probe",
            DistanceProbeReply { .. } => "distance-probe-reply",
            DistanceReport { .. } => "distance-report",
            NnLeafSetRequest => "nn-leafset-request",
            NnLeafSetReply { .. } => "nn-leafset-reply",
            NnRowRequest { .. } => "nn-row-request",
            NnRowReply { .. } => "nn-row-reply",
            Lookup { .. } => "lookup",
            Ack { .. } => "ack",
            Leaving => "leaving",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    fn lookup(is_retransmit: bool) -> Message {
        Message::Lookup {
            id: LookupId { src: Id(1), seq: 0 },
            key: Id(2),
            payload: 0,
            hops: 0,
            issued_at_us: 0,
            is_retransmit,
            wants_acks: true,
        }
    }

    #[test]
    fn lookup_category_depends_on_retransmission() {
        assert_eq!(lookup(false).category(), Category::Lookup);
        assert_eq!(lookup(true).category(), Category::AckRetransmit);
        assert!(!lookup(false).is_control());
        assert!(lookup(true).is_control());
    }

    #[test]
    fn categories_cover_the_figure_4_breakdown() {
        assert_eq!(
            Message::Heartbeat { trt_hint: None }.category(),
            Category::LeafSet
        );
        assert_eq!(Message::RtProbe { nonce: 1 }.category(), Category::RtProbe);
        assert_eq!(
            Message::DistanceProbe { nonce: 1 }.category(),
            Category::DistanceProbe
        );
        assert_eq!(Message::NnLeafSetRequest.category(), Category::Join);
        assert_eq!(
            Message::Ack {
                id: LookupId { src: Id(1), seq: 2 }
            }
            .category(),
            Category::AckRetransmit
        );
    }
}
