//! Events consumed and actions produced by the protocol state machine.
//!
//! [`crate::node::Node`] is a pure event-driven state machine: the host (a
//! simulator or a real transport binding) feeds it [`Event`]s with the
//! current clock value and executes the [`Action`]s it emits. Timers are
//! one-shot and never cancelled; a fired timer that is no longer relevant is
//! simply ignored by the node.

use crate::id::{Key, NodeId};
use crate::messages::{LookupId, Message, Payload};

/// An input to the node state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message arrived from the network.
    Receive {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A previously requested timer fired.
    Timer(TimerKind),
    /// Local command: join the overlay through `seed` (`None` bootstraps a
    /// new overlay).
    Join {
        /// An existing overlay node, or `None` for the first node.
        seed: Option<NodeId>,
    },
    /// Local command: route a lookup to `key`.
    Lookup {
        /// Destination key.
        key: Key,
        /// Opaque application payload.
        payload: Payload,
    },
    /// Local command: announce a voluntary departure to the routing state
    /// before shutting down (extension; see [`crate::messages::Message::Leaving`]).
    Leave,
}

/// One-shot timers the node asks its host to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerKind {
    /// Periodic leaf-set heartbeat to the left neighbour plus silence check
    /// on the right neighbour (period `Tls`).
    Heartbeat,
    /// Periodic liveness probing of routing-table entries (period `Trt`,
    /// self-tuned).
    RtProbeTick,
    /// Periodic routing-table maintenance (default 20 minutes).
    RtMaintenance,
    /// Periodic recomputation of the self-tuned probing period.
    SelfTune,
    /// A leaf-set or liveness probe to `target` timed out.
    ProbeTimeout {
        /// The probed node.
        target: NodeId,
        /// Attempt number the timeout belongs to.
        attempt: u32,
    },
    /// A forwarded lookup was not acknowledged in time.
    AckTimeout {
        /// The lookup awaiting the ack.
        lookup: LookupId,
        /// Attempt number the timeout belongs to.
        attempt: u32,
    },
    /// Send the next distance-probe sample to `target`.
    DistanceProbeNext {
        /// The node being measured.
        target: NodeId,
    },
    /// A distance-probe sample to `target` timed out.
    DistanceProbeTimeout {
        /// The node being measured.
        target: NodeId,
        /// The sample's nonce.
        nonce: u64,
    },
    /// Retry the join if the node is still not active.
    JoinRetry,
}

/// An output of the node state machine, executed by the host.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Schedule `kind` to fire `delay_us` from now.
    SetTimer {
        /// Delay from the current time, microseconds.
        delay_us: u64,
        /// The timer to fire.
        kind: TimerKind,
    },
    /// Deliver a lookup to the application: this node is the key's root.
    Deliver {
        /// End-to-end lookup identity.
        id: LookupId,
        /// The destination key.
        key: Key,
        /// The application payload.
        payload: Payload,
        /// Overlay hops the lookup took.
        hops: u32,
        /// When the lookup was issued, microseconds.
        issued_at_us: u64,
        /// The deliverer's current leaf-set members closest to the key, in
        /// ring-distance order (up to 8). Storage applications replicate
        /// onto these nodes, PAST-style, so the value survives the root's
        /// failure: the next root is one of them.
        replica_set: Vec<NodeId>,
    },
    /// The node completed its join and became active.
    BecameActive,
    /// A lookup was dropped (no route remained); reported for the loss-rate
    /// metric.
    LookupDropped {
        /// The dropped lookup.
        id: LookupId,
        /// Human-readable reason.
        reason: DropReason,
    },
}

/// Why a lookup was dropped by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Rerouting exhausted every alternative next hop.
    NoRoute,
    /// The per-hop reroute budget was exhausted.
    TooManyReroutes,
    /// The node's join buffer overflowed.
    BufferOverflow,
}

impl DropReason {
    /// Stable kebab-case name (used in trace artifacts and counters).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::NoRoute => "no-route",
            DropReason::TooManyReroutes => "too-many-reroutes",
            DropReason::BufferOverflow => "buffer-overflow",
        }
    }
}

/// Convenience container the node writes its outputs into.
#[derive(Debug, Default)]
pub struct Effects {
    /// Accumulated actions, in emission order.
    pub actions: Vec<Action>,
}

impl Effects {
    /// Creates an empty effects buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message send.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a timer request.
    pub fn timer(&mut self, delay_us: u64, kind: TimerKind) {
        self.actions.push(Action::SetTimer { delay_us, kind });
    }

    /// Drains the accumulated actions.
    pub fn drain(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    #[test]
    fn effects_accumulate_in_order() {
        let mut fx = Effects::new();
        fx.send(Id(1), Message::NnLeafSetRequest);
        fx.timer(5, TimerKind::Heartbeat);
        let actions = fx.drain();
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], Action::Send { .. }));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                delay_us: 5,
                kind: TimerKind::Heartbeat
            }
        ));
        assert!(fx.drain().is_empty());
    }
}
