//! Proximity neighbour selection support: round-trip distance measurements
//! and the nearest-neighbour seed-discovery state machine (§2, §4.2).
//!
//! A distance measurement sends `distance_probe_count` probes spaced by a
//! fixed interval and takes the median of the returned round trips. The
//! nearest-neighbour algorithm uses a *single* probe per candidate to reduce
//! join latency; the remaining measurements use more samples.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::id::NodeId;

/// Why a distance is being measured; decides what happens with the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurePurpose {
    /// Candidate evaluation inside the nearest-neighbour algorithm.
    NearestNeighbor,
    /// Candidate for a routing-table slot (gossip, maintenance, announce,
    /// passive repair, or the joiner's own table).
    ConsiderRt,
}

/// One in-flight measurement.
#[derive(Debug, Clone)]
struct Measurement {
    purpose: MeasurePurpose,
    want: u32,
    samples: Vec<u64>,
    outstanding: Option<(u64, u64)>, // (nonce, sent_at_us)
    retried: bool,
    retry_allowed: bool,
}

/// Outcome of feeding a probe reply into the measurer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// No matching measurement/nonce; ignore.
    Ignored,
    /// Sample recorded; schedule the next probe after the configured spacing.
    NeedMore,
    /// Measurement finished with the median round-trip in microseconds.
    Done(MeasurePurpose, u64),
}

/// Outcome of a probe timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureTimeout {
    /// No matching measurement/nonce; ignore.
    Stale,
    /// Retry with a fresh nonce.
    Retry(u64),
    /// Give up; if samples were collected their median is returned.
    Abandon(MeasurePurpose, Option<u64>),
}

/// Manages a node's distance measurements.
#[derive(Debug, Clone, Default)]
pub struct DistanceMeasurer {
    inflight: FxHashMap<NodeId, Measurement>,
    next_nonce: u64,
}

impl DistanceMeasurer {
    /// Creates an empty measurer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of measurements in flight.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when nothing is being measured.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// `true` if `target` is currently being measured.
    pub fn measuring(&self, target: NodeId) -> bool {
        self.inflight.contains_key(&target)
    }

    /// Starts measuring `target` with `want` samples; returns the nonce of
    /// the first probe, or `None` if a measurement is already running.
    pub fn start(
        &mut self,
        target: NodeId,
        purpose: MeasurePurpose,
        want: u32,
        now_us: u64,
    ) -> Option<u64> {
        self.start_with_retry(target, purpose, want, now_us, true)
    }

    /// Like [`DistanceMeasurer::start`], with control over whether a timed-out
    /// probe is retried once (nearest-neighbour probes skip the retry to keep
    /// join latency low).
    pub fn start_with_retry(
        &mut self,
        target: NodeId,
        purpose: MeasurePurpose,
        want: u32,
        now_us: u64,
        retry_allowed: bool,
    ) -> Option<u64> {
        if self.inflight.contains_key(&target) {
            return None;
        }
        let nonce = self.fresh_nonce();
        self.inflight.insert(
            target,
            Measurement {
                purpose,
                want: want.max(1),
                samples: Vec::new(),
                outstanding: Some((nonce, now_us)),
                retried: false,
                retry_allowed,
            },
        );
        Some(nonce)
    }

    /// Issues the next probe of an in-flight measurement (after the spacing
    /// timer); returns its nonce.
    pub fn next_probe(&mut self, target: NodeId, now_us: u64) -> Option<u64> {
        let nonce = self.fresh_nonce();
        let m = self.inflight.get_mut(&target)?;
        if m.outstanding.is_some() || m.samples.len() as u32 >= m.want {
            return None;
        }
        m.outstanding = Some((nonce, now_us));
        Some(nonce)
    }

    /// Feeds a probe reply.
    pub fn on_reply(&mut self, target: NodeId, nonce: u64, now_us: u64) -> ReplyOutcome {
        let Some(m) = self.inflight.get_mut(&target) else {
            return ReplyOutcome::Ignored;
        };
        match m.outstanding {
            Some((n, sent_at)) if n == nonce => {
                m.samples.push(now_us.saturating_sub(sent_at));
                m.outstanding = None;
                m.retried = false;
                if m.samples.len() as u32 >= m.want {
                    let med = median(&mut m.samples);
                    let purpose = m.purpose;
                    self.inflight.remove(&target);
                    ReplyOutcome::Done(purpose, med)
                } else {
                    ReplyOutcome::NeedMore
                }
            }
            _ => ReplyOutcome::Ignored,
        }
    }

    /// Handles a probe timeout for `(target, nonce)`.
    pub fn on_timeout(&mut self, target: NodeId, nonce: u64, now_us: u64) -> MeasureTimeout {
        let next = self.fresh_nonce();
        let Some(m) = self.inflight.get_mut(&target) else {
            return MeasureTimeout::Stale;
        };
        match m.outstanding {
            Some((n, _)) if n == nonce => {
                if !m.retried && m.retry_allowed {
                    m.retried = true;
                    m.outstanding = Some((next, now_us));
                    MeasureTimeout::Retry(next)
                } else {
                    let purpose = m.purpose;
                    let med = if m.samples.is_empty() {
                        None
                    } else {
                        Some(median(&mut m.samples))
                    };
                    self.inflight.remove(&target);
                    MeasureTimeout::Abandon(purpose, med)
                }
            }
            _ => MeasureTimeout::Stale,
        }
    }

    /// Cancels a measurement (e.g. the target was declared faulty).
    pub fn cancel(&mut self, target: NodeId) {
        self.inflight.remove(&target);
    }

    fn fresh_nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce
    }
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Phase of the nearest-neighbour seed-discovery algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnPhase {
    /// Evaluating the leaf set of the current closest node.
    LeafSet,
    /// Walking routing-table rows bottom-up; the next row index to request.
    Rows(usize),
}

/// What the nearest-neighbour state machine wants the node to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnStep {
    /// Request the leaf set of `from`.
    AskLeafSet(NodeId),
    /// Request row `row` of `from`'s routing table.
    AskRow(NodeId, usize),
    /// Measure the distance to these candidates (single probe each).
    Measure(Vec<NodeId>),
    /// Discovery finished; join through the returned node.
    Finished(NodeId),
    /// Waiting for outstanding measurements.
    Wait,
}

/// Nearest-neighbour discovery: starting from a random seed, greedily move to
/// the closest node in its leaf set, then refine by walking routing-table
/// rows bottom-up.
#[derive(Debug, Clone)]
pub struct NnState {
    current: NodeId,
    current_dist: u64,
    phase: NnPhase,
    awaiting: FxHashSet<NodeId>,
    dists: FxHashMap<NodeId, u64>,
}

impl NnState {
    /// Starts discovery at `seed`.
    pub fn new(seed: NodeId) -> Self {
        NnState {
            current: seed,
            current_dist: u64::MAX,
            phase: NnPhase::LeafSet,
            awaiting: FxHashSet::default(),
            dists: FxHashMap::default(),
        }
    }

    /// The best node found so far.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// All candidate distances measured during discovery (useful to seed the
    /// routing table with real proximity values).
    pub fn measured(&self) -> &FxHashMap<NodeId, u64> {
        &self.dists
    }

    /// Feeds the candidate list from a leaf-set or row reply; returns the
    /// candidates that still need measuring.
    pub fn on_candidates(&mut self, own: NodeId, nodes: &[NodeId]) -> NnStep {
        let fresh: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|&n| n != own && !self.dists.contains_key(&n) && !self.awaiting.contains(&n))
            .collect();
        for &n in &fresh {
            self.awaiting.insert(n);
        }
        if fresh.is_empty() {
            self.evaluate(usize::MAX)
        } else {
            NnStep::Measure(fresh)
        }
    }

    /// Feeds a finished (or abandoned) distance measurement.
    pub fn on_distance(&mut self, target: NodeId, dist_us: u64, deepest_row_hint: usize) -> NnStep {
        self.awaiting.remove(&target);
        if dist_us != u64::MAX {
            self.dists.insert(target, dist_us);
        }
        if target == self.current {
            self.current_dist = self.current_dist.min(dist_us);
        }
        if self.awaiting.is_empty() {
            self.evaluate(deepest_row_hint)
        } else {
            NnStep::Wait
        }
    }

    /// Called when a row reply arrives: remembers which row to continue from.
    pub fn note_row(&mut self, row: usize) {
        self.phase = NnPhase::Rows(row);
    }

    fn evaluate(&mut self, _deepest_row_hint: usize) -> NnStep {
        // Find the closest measured candidate.
        let best = self
            .dists
            .iter()
            .min_by_key(|(id, d)| (**d, id.0))
            .map(|(id, d)| (*id, *d));
        match self.phase {
            NnPhase::LeafSet => {
                if let Some((id, d)) = best {
                    if d < self.current_dist {
                        self.current = id;
                        self.current_dist = d;
                        return NnStep::AskLeafSet(id);
                    }
                }
                // No improvement: start walking rows bottom-up. usize::MAX
                // asks the peer for its deepest occupied row.
                NnStep::AskRow(self.current, usize::MAX)
            }
            NnPhase::Rows(row) => {
                if let Some((id, d)) = best {
                    if d < self.current_dist {
                        self.current = id;
                        self.current_dist = d;
                    }
                }
                if row == 0 {
                    NnStep::Finished(self.current)
                } else {
                    let next = if row == usize::MAX {
                        usize::MAX
                    } else {
                        row - 1
                    };
                    NnStep::AskRow(self.current, next)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    #[test]
    fn measurement_takes_median_of_samples() {
        let mut dm = DistanceMeasurer::new();
        let n1 = dm.start(Id(1), MeasurePurpose::ConsiderRt, 3, 0).unwrap();
        assert_eq!(dm.on_reply(Id(1), n1, 100), ReplyOutcome::NeedMore);
        let n2 = dm.next_probe(Id(1), 1000).unwrap();
        assert_eq!(dm.on_reply(Id(1), n2, 1090), ReplyOutcome::NeedMore);
        let n3 = dm.next_probe(Id(1), 2000).unwrap();
        assert_eq!(
            dm.on_reply(Id(1), n3, 2300),
            ReplyOutcome::Done(MeasurePurpose::ConsiderRt, 100)
        );
        assert!(dm.is_empty());
    }

    #[test]
    fn duplicate_start_is_rejected() {
        let mut dm = DistanceMeasurer::new();
        assert!(dm.start(Id(1), MeasurePurpose::ConsiderRt, 3, 0).is_some());
        assert!(dm
            .start(Id(1), MeasurePurpose::NearestNeighbor, 1, 0)
            .is_none());
    }

    #[test]
    fn wrong_nonce_is_ignored() {
        let mut dm = DistanceMeasurer::new();
        let n = dm.start(Id(1), MeasurePurpose::ConsiderRt, 1, 0).unwrap();
        assert_eq!(dm.on_reply(Id(1), n + 99, 50), ReplyOutcome::Ignored);
        assert_eq!(
            dm.on_reply(Id(1), n, 60),
            ReplyOutcome::Done(MeasurePurpose::ConsiderRt, 60)
        );
    }

    #[test]
    fn timeout_retries_once_then_abandons() {
        let mut dm = DistanceMeasurer::new();
        let n = dm
            .start(Id(1), MeasurePurpose::NearestNeighbor, 1, 0)
            .unwrap();
        let MeasureTimeout::Retry(n2) = dm.on_timeout(Id(1), n, 10) else {
            panic!("expected retry");
        };
        assert_eq!(
            dm.on_timeout(Id(1), n2, 20),
            MeasureTimeout::Abandon(MeasurePurpose::NearestNeighbor, None)
        );
        assert!(dm.is_empty());
    }

    #[test]
    fn abandon_with_partial_samples_returns_median() {
        let mut dm = DistanceMeasurer::new();
        let n = dm.start(Id(1), MeasurePurpose::ConsiderRt, 3, 0).unwrap();
        dm.on_reply(Id(1), n, 70);
        let n2 = dm.next_probe(Id(1), 100).unwrap();
        let MeasureTimeout::Retry(n3) = dm.on_timeout(Id(1), n2, 200) else {
            panic!("expected retry");
        };
        assert_eq!(
            dm.on_timeout(Id(1), n3, 300),
            MeasureTimeout::Abandon(MeasurePurpose::ConsiderRt, Some(70))
        );
    }

    #[test]
    fn nn_moves_to_closer_leaf_set_candidates() {
        let own = Id(99);
        let seed = Id(1);
        let mut nn = NnState::new(seed);
        // Seed's leaf set: nodes 2 and 3.
        let step = nn.on_candidates(own, &[Id(2), Id(3)]);
        assert_eq!(step, NnStep::Measure(vec![Id(2), Id(3)]));
        assert_eq!(nn.on_distance(Id(2), 500, usize::MAX), NnStep::Wait);
        // Node 3 is closest: move there and ask for its leaf set.
        let step = nn.on_distance(Id(3), 100, usize::MAX);
        assert_eq!(step, NnStep::AskLeafSet(Id(3)));
        assert_eq!(nn.current(), Id(3));
    }

    #[test]
    fn nn_switches_to_rows_when_no_improvement() {
        let own = Id(99);
        let mut nn = NnState::new(Id(1));
        let _ = nn.on_candidates(own, &[Id(2)]);
        let _ = nn.on_distance(Id(2), 100, usize::MAX);
        // Id(2)'s leaf set has nothing new and nothing closer.
        let step = nn.on_candidates(own, &[Id(2)]);
        assert_eq!(step, NnStep::AskRow(Id(2), usize::MAX));
        nn.note_row(1);
        // Row 1 brings a closer node 5.
        let step = nn.on_candidates(own, &[Id(5)]);
        assert_eq!(step, NnStep::Measure(vec![Id(5)]));
        let step = nn.on_distance(Id(5), 10, 1);
        assert_eq!(step, NnStep::AskRow(Id(5), 0));
        nn.note_row(0);
        let step = nn.on_candidates(own, &[]);
        assert_eq!(step, NnStep::Finished(Id(5)));
    }

    #[test]
    fn nn_records_measured_distances() {
        let mut nn = NnState::new(Id(1));
        let _ = nn.on_candidates(Id(99), &[Id(2)]);
        let _ = nn.on_distance(Id(2), 123, usize::MAX);
        assert_eq!(nn.measured().get(&Id(2)), Some(&123));
    }
}
