//! Per-run protocol diagnostics through the [`obs`] registry.
//!
//! This module used to hold process-wide atomic counters (and a mutexed
//! pair-tracking map) that aggregated across every node in the process —
//! including nodes of *other, concurrently running* simulations, which made
//! parallel `cargo test` counters unusable. All diagnostic state now lives
//! in the per-run [`obs::Obs`] registry the host threads into each node;
//! nodes built without one ([`obs::Obs::disabled`]) pay a single branch per
//! count.

use crate::events::DropReason;
use crate::messages::LookupId;
use obs::{CounterId, HistId, HopEvent, Obs};

/// Why a leaf-set probe was started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeCause {
    /// Join bootstrap: probing every member of the initial leaf set.
    JoinBootstrap,
    /// A candidate learned from a peer's leaf set.
    Candidate,
    /// Confirming a failure reported in a peer's `failed` set.
    Confirm,
    /// Announcing a failure this node detected.
    Announce,
    /// Leaf-set repair (short or empty side).
    Repair,
    /// Silence from the right neighbour (SUSPECT-FAULTY).
    Suspect,
    /// A missed per-hop ack.
    AckSuspect,
}

/// Number of probe causes.
pub const N_PROBE_CAUSES: usize = 7;

/// Registry counter names for each [`ProbeCause`], in discriminant order.
pub const PROBE_CAUSE_COUNTERS: [&str; N_PROBE_CAUSES] = [
    "probe.cause.join-bootstrap",
    "probe.cause.candidate",
    "probe.cause.confirm",
    "probe.cause.announce",
    "probe.cause.repair",
    "probe.cause.suspect",
    "probe.cause.ack-suspect",
];

/// Registry counter names for each [`DropReason`], in discriminant order.
pub const DROP_REASON_COUNTERS: [&str; 3] = [
    "lookup.drop.no-route",
    "lookup.drop.too-many-reroutes",
    "lookup.drop.buffer-overflow",
];

/// A node's resolved instrumentation handles: the shared [`Obs`] plus the
/// interned counter/histogram ids, so the hot path never looks up a name.
#[derive(Debug, Clone)]
pub(crate) struct NodeObs {
    obs: Obs,
    probe_cause: [CounterId; N_PROBE_CAUSES],
    drop_reason: [CounterId; 3],
    pns_measured: CounterId,
    pns_replaced: CounterId,
    final_retx: CounterId,
    stranded_reroute: CounterId,
    reroutes: CounterId,
    stray_acks: CounterId,
    rtt_sample_us: HistId,
    ack_rto_us: HistId,
    t_rt_us: HistId,
    retx_attempt: HistId,
}

impl NodeObs {
    pub(crate) fn new(obs: Obs) -> Self {
        NodeObs {
            probe_cause: std::array::from_fn(|i| obs.counter(PROBE_CAUSE_COUNTERS[i])),
            drop_reason: std::array::from_fn(|i| obs.counter(DROP_REASON_COUNTERS[i])),
            pns_measured: obs.counter("pns.measured"),
            pns_replaced: obs.counter("pns.replaced"),
            final_retx: obs.counter("lookup.final-retx"),
            stranded_reroute: obs.counter("lookup.stranded-reroute"),
            reroutes: obs.counter("lookup.reroutes"),
            stray_acks: obs.counter("lookup.stray-ack"),
            rtt_sample_us: obs.histogram("node.rtt_sample_us"),
            ack_rto_us: obs.histogram("node.ack_rto_us"),
            t_rt_us: obs.histogram("node.t_rt_us"),
            retx_attempt: obs.histogram("node.retx_attempt"),
            obs,
        }
    }

    #[inline]
    pub(crate) fn cause(&self, c: ProbeCause) {
        self.obs.inc(self.probe_cause[c as usize]);
    }

    #[inline]
    pub(crate) fn pns_measured(&self) {
        self.obs.inc(self.pns_measured);
    }

    #[inline]
    pub(crate) fn pns_replaced(&self) {
        self.obs.inc(self.pns_replaced);
    }

    #[inline]
    pub(crate) fn final_retx(&self) {
        self.obs.inc(self.final_retx);
    }

    #[inline]
    pub(crate) fn stranded_reroute(&self) {
        self.obs.inc(self.stranded_reroute);
    }

    #[inline]
    pub(crate) fn reroute(&self) {
        self.obs.inc(self.reroutes);
    }

    /// Counts an ack whose pending entry was already resolved (duplicate, or
    /// the lookup was rerouted before the ack arrived).
    #[inline]
    pub(crate) fn stray_ack(&self) {
        self.obs.inc(self.stray_acks);
    }

    /// Records an RTT sample feeding the RTO estimator.
    #[inline]
    pub(crate) fn rtt_sample(&self, rtt_us: u64) {
        self.obs.record(self.rtt_sample_us, rtt_us);
    }

    /// Records the RTO armed for a forwarded lookup.
    #[inline]
    pub(crate) fn ack_rto(&self, rto_us: u64) {
        self.obs.record(self.ack_rto_us, rto_us);
    }

    /// Records a newly adopted self-tuned probing period.
    #[inline]
    pub(crate) fn t_rt(&self, t_rt_us: u64) {
        self.obs.record(self.t_rt_us, t_rt_us);
    }

    /// Records a same-root retransmission attempt number.
    #[inline]
    pub(crate) fn retx_attempt(&self, attempt: u32) {
        self.obs.record(self.retx_attempt, attempt as u64);
    }

    /// `true` if the lookup is in the hop-trace sample.
    #[inline]
    pub(crate) fn sampled(&self, id: LookupId) -> bool {
        self.obs.sampled(id.src.0, id.seq)
    }

    /// Records a hop event (guard with [`Self::sampled`] first).
    #[inline]
    pub(crate) fn hop(&self, ev: HopEvent) {
        self.obs.hop(ev);
    }

    /// Records a lookup drop: per-reason counter, optional stderr echo,
    /// trace event when sampled.
    pub(crate) fn drop_event(&self, reason: DropReason, ev: HopEvent) {
        self.obs.drop_event(self.drop_reason[reason as usize], ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    #[test]
    fn counters_are_per_run_not_per_process() {
        let run_a = Obs::new(0.0, 16, false);
        let run_b = Obs::new(0.0, 16, false);
        let a = NodeObs::new(run_a.clone());
        let b = NodeObs::new(run_b.clone());
        a.cause(ProbeCause::Repair);
        a.cause(ProbeCause::Repair);
        b.cause(ProbeCause::Suspect);
        assert_eq!(run_a.snapshot().counter("probe.cause.repair"), 2);
        assert_eq!(run_a.snapshot().counter("probe.cause.suspect"), 0);
        assert_eq!(run_b.snapshot().counter("probe.cause.repair"), 0);
        assert_eq!(run_b.snapshot().counter("probe.cause.suspect"), 1);
    }

    #[test]
    fn disabled_obs_counts_nothing_and_panics_never() {
        let n = NodeObs::new(Obs::disabled());
        n.cause(ProbeCause::Candidate);
        n.pns_measured();
        n.rtt_sample(100);
        n.retx_attempt(3);
        assert!(!n.sampled(LookupId { src: Id(1), seq: 1 }));
    }

    #[test]
    fn two_nodes_share_one_run_registry() {
        let run = Obs::new(0.0, 16, false);
        let a = NodeObs::new(run.clone());
        let b = NodeObs::new(run.clone());
        a.cause(ProbeCause::Announce);
        b.cause(ProbeCause::Announce);
        assert_eq!(run.snapshot().counter("probe.cause.announce"), 2);
    }
}
