//! Process-wide diagnostic counters.
//!
//! Cheap atomic counters attributing leaf-set probe traffic to its cause.
//! They aggregate across every node in the process (the simulator runs all
//! nodes in one process, which is exactly what makes this useful for
//! profiling protocol overhead). Not part of the protocol; safe to ignore.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a leaf-set probe was started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeCause {
    /// Join bootstrap: probing every member of the initial leaf set.
    JoinBootstrap,
    /// A candidate learned from a peer's leaf set.
    Candidate,
    /// Confirming a failure reported in a peer's `failed` set.
    Confirm,
    /// Announcing a failure this node detected.
    Announce,
    /// Leaf-set repair (short or empty side).
    Repair,
    /// Silence from the right neighbour (SUSPECT-FAULTY).
    Suspect,
    /// A missed per-hop ack.
    AckSuspect,
}

const N: usize = 7;
static COUNTS: [AtomicU64; N] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Names matching [`snapshot`]'s order.
pub const PROBE_CAUSE_NAMES: [&str; N] = [
    "join-bootstrap",
    "candidate",
    "confirm",
    "announce",
    "repair",
    "suspect",
    "ack-suspect",
];

pub(crate) fn count(cause: ProbeCause) {
    COUNTS[cause as usize].fetch_add(1, Ordering::Relaxed);
}

/// Returns the current per-cause counts (order of [`PROBE_CAUSE_NAMES`]).
pub fn snapshot() -> [u64; N] {
    std::array::from_fn(|i| COUNTS[i].load(Ordering::Relaxed))
}

use std::collections::HashMap as StdHashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
static PAIRS_ENABLED: AtomicBool = AtomicBool::new(false);
static PAIRS: Mutex<Option<StdHashMap<(u128, u128), u32>>> = Mutex::new(None);

/// Records a candidate probe pair (no-op unless [`enable_pairs`] was called).
pub fn count_pair(prober: u128, target: u128) {
    if !PAIRS_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut g = PAIRS.lock().unwrap();
    if let Some(m) = g.as_mut() {
        *m.entry((prober, target)).or_insert(0) += 1;
    }
}

/// Enables pair tracking (process-wide; costs a mutex per candidate probe).
pub fn enable_pairs() {
    *PAIRS.lock().unwrap() = Some(StdHashMap::new());
    PAIRS_ENABLED.store(true, Ordering::Relaxed);
}

/// Histogram of pair repeat counts: (repeats, how many pairs).
pub fn pair_histogram() -> Vec<(u32, u64)> {
    let g = PAIRS.lock().unwrap();
    let mut h: StdHashMap<u32, u64> = StdHashMap::new();
    if let Some(m) = g.as_ref() {
        for &c in m.values() {
            *h.entry(c).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(u32, u64)> = h.into_iter().collect();
    v.sort();
    v
}

static EXTRA: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Names for [`extra_snapshot`]: completed PNS distance measurements,
/// final-hop retransmissions, stranded re-routes after `mark_faulty`, and
/// PNS replacements of a farther routing-table entry.
pub const EXTRA_NAMES: [&str; 4] = [
    "pns-measured",
    "final-retx",
    "stranded-reroute",
    "pns-replaced",
];

/// Bumps an extra counter by index.
pub fn bump(idx: usize) {
    EXTRA[idx].fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the extra counters.
pub fn extra_snapshot() -> [u64; 4] {
    std::array::from_fn(|i| EXTRA[i].load(Ordering::Relaxed))
}

/// Returns the hottest recorded pair.
pub fn hottest_pair() -> Option<((u128, u128), u32)> {
    let g = PAIRS.lock().unwrap();
    g.as_ref()
        .and_then(|m| m.iter().max_by_key(|(_, &c)| c).map(|(&k, &c)| (k, c)))
}

/// Resets all counters to zero.
pub fn reset() {
    for c in &COUNTS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        count(ProbeCause::Repair);
        count(ProbeCause::Repair);
        count(ProbeCause::Suspect);
        let s = snapshot();
        assert!(s[ProbeCause::Repair as usize] >= 2);
        assert!(s[ProbeCause::Suspect as usize] >= 1);
        reset();
        // Other tests may run concurrently and bump counters between reset
        // and snapshot; just check reset does not panic.
    }
}
