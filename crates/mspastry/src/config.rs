//! Protocol configuration.
//!
//! [`Config::default`] is the paper's *base configuration*: `b = 4`, `l = 32`,
//! `Tls = 30 s`, per-hop acks, routing-table probing self-tuned with a target
//! raw loss rate `Lr = 5 %`, probe suppression, and symmetric distance
//! probes.

/// One second in the microsecond clock used throughout.
pub const SECOND_US: u64 = 1_000_000;

/// MSPastry protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Digit width in bits (nodeIds and keys are read in base 2^b).
    pub b: u8,
    /// Leaf set size `l`; the leaf set holds `l/2` nodes on each side.
    pub leaf_set_size: usize,
    /// Leaf-set heartbeat period `Tls`, microseconds.
    pub t_ls_us: u64,
    /// Probe timeout `To`, microseconds (paper: 3 s, the TCP SYN timeout).
    pub t_o_us: u64,
    /// Maximum probe retries before a node is marked faulty (paper: 2).
    pub max_probe_retries: u32,
    /// Enable per-hop acknowledgements and rerouting (§3.2).
    pub per_hop_acks: bool,
    /// Enable active liveness probing of routing-table entries (§3.2).
    pub active_rt_probing: bool,
    /// Enable self-tuning of the routing-table probing period (§4.1). When
    /// disabled, [`Config::fixed_t_rt_us`] is used.
    pub self_tuning: bool,
    /// Target raw loss rate `Lr` for self-tuning (paper: 0.05).
    pub target_raw_loss: f64,
    /// Routing-table probing period when self-tuning is off, microseconds.
    pub fixed_t_rt_us: u64,
    /// Period of the self-tuning recomputation, microseconds.
    pub self_tune_period_us: u64,
    /// Length `K` of the failure history used to estimate the failure rate µ.
    pub failure_history_len: usize,
    /// Suppress failure-detection messages when regular traffic already
    /// proves liveness (§4.1).
    pub probe_suppression: bool,
    /// Share measured round-trip delays with the probed node so it can skip
    /// its own measurement (§4.2).
    pub symmetric_distance_probes: bool,
    /// Number of distance probes per measurement (median is used; paper: 3).
    pub distance_probe_count: u32,
    /// Spacing between distance probes of one measurement, microseconds.
    pub distance_probe_spacing_us: u64,
    /// Use a single distance probe during the nearest-neighbour algorithm.
    pub single_probe_nearest_neighbor: bool,
    /// Timeout of a nearest-neighbour distance probe, microseconds. Shorter
    /// than `To` and never retried: a dead candidate should cost little join
    /// latency.
    pub nn_probe_timeout_us: u64,
    /// Run the nearest-neighbour seed-discovery algorithm before joining.
    pub nearest_neighbor_join: bool,
    /// Period of the routing-table maintenance protocol, microseconds
    /// (paper: 20 minutes).
    pub rt_maintenance_period_us: u64,
    /// Minimum per-hop ack retransmission timeout, microseconds. Aggressive
    /// by design: Pastry has redundant routes at every hop but the last.
    pub ack_rto_min_us: u64,
    /// Initial per-hop RTO before any sample for a peer, microseconds.
    pub ack_rto_initial_us: u64,
    /// Maximum number of reroutes for one lookup at one hop before dropping.
    pub ack_max_reroutes: u32,
    /// Retransmissions to a silent *root* before giving up on it (final-hop
    /// ack timeouts retry the same node first: there is no alternative node
    /// that could correctly deliver). Each retry squares the probability
    /// that an alive root is wrongly bypassed, at the cost of delay when the
    /// root really is dead — every node holding the lookup pays the budget.
    pub root_retx_attempts: u32,
    /// After the retransmission budget, exclude the silent root from routing
    /// and deliver at the now-closest node (the paper's default; improves
    /// latency at a tiny consistency cost under message loss). When `false`,
    /// keep retransmitting until the root's failure probe resolves — the
    /// paper's "improve consistency at the expense of latency" variant.
    pub exclude_root_on_ack_timeout: bool,
    /// Join retry period while a node has not become active, microseconds.
    pub join_retry_us: u64,
    /// Capacity of the buffer for lookups received while inactive.
    pub join_buffer_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            b: 4,
            leaf_set_size: 32,
            t_ls_us: 30 * SECOND_US,
            t_o_us: 3 * SECOND_US,
            max_probe_retries: 2,
            per_hop_acks: true,
            active_rt_probing: true,
            self_tuning: true,
            target_raw_loss: 0.05,
            fixed_t_rt_us: 30 * SECOND_US,
            self_tune_period_us: 60 * SECOND_US,
            failure_history_len: 16,
            probe_suppression: true,
            symmetric_distance_probes: true,
            distance_probe_count: 3,
            distance_probe_spacing_us: SECOND_US,
            single_probe_nearest_neighbor: true,
            nn_probe_timeout_us: 1_500_000,
            nearest_neighbor_join: true,
            rt_maintenance_period_us: 20 * 60 * SECOND_US,
            ack_rto_min_us: 20_000,
            ack_rto_initial_us: 500_000,
            ack_max_reroutes: 8,
            root_retx_attempts: 1,
            exclude_root_on_ack_timeout: true,
            join_retry_us: 30 * SECOND_US,
            join_buffer_cap: 1024,
        }
    }
}

impl Config {
    /// Half leaf-set size (`l/2` nodes per side).
    pub fn leaf_half(&self) -> usize {
        self.leaf_set_size / 2
    }

    /// Lower bound on the routing-table probing period:
    /// `(max_probe_retries + 1) * To`.
    pub fn t_rt_floor_us(&self) -> u64 {
        (self.max_probe_retries as u64 + 1) * self.t_o_us
    }

    /// Validates parameter combinations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=8).contains(&self.b) {
            return Err(format!("b must be in 1..=8, got {}", self.b));
        }
        if self.leaf_set_size < 2 || !self.leaf_set_size.is_multiple_of(2) {
            return Err(format!(
                "leaf set size must be even and >= 2, got {}",
                self.leaf_set_size
            ));
        }
        if self.t_o_us == 0 || self.t_ls_us == 0 {
            return Err("timeouts must be positive".into());
        }
        if !(0.0..1.0).contains(&self.target_raw_loss) || self.target_raw_loss <= 0.0 {
            return Err(format!(
                "target raw loss must be in (0, 1), got {}",
                self.target_raw_loss
            ));
        }
        if self.distance_probe_count == 0 {
            return Err("distance probe count must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_base_configuration() {
        let c = Config::default();
        assert_eq!(c.b, 4);
        assert_eq!(c.leaf_set_size, 32);
        assert_eq!(c.t_ls_us, 30 * SECOND_US);
        assert_eq!(c.t_o_us, 3 * SECOND_US);
        assert_eq!(c.max_probe_retries, 2);
        assert!(c.per_hop_acks && c.active_rt_probing && c.self_tuning);
        assert!((c.target_raw_loss - 0.05).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn floor_is_retries_plus_one_times_to() {
        let c = Config::default();
        assert_eq!(c.t_rt_floor_us(), 9 * SECOND_US);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let c = Config {
            b: 0,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            leaf_set_size: 7,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            target_raw_loss: 0.0,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            target_raw_loss: 1.5,
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }
}
