//! Self-tuning of the routing-table probing period (§4.1).
//!
//! The probability of forwarding a message to a faulty node at a hop is
//! `Pf(T, µ) = 1 − (1/(Tµ))(1 − e^(−Tµ))` where `T` is the maximum failure
//! detection time and `µ` the node failure rate. With `h` expected overlay
//! hops (last hop via the leaf set, the rest via the routing table) the raw
//! loss rate is
//!
//! ```text
//! Lr = 1 − (1 − Pf(Tls + (r+1)To, µ)) · (1 − Pf(Trt + (r+1)To, µ))^(h−1)
//! ```
//!
//! MSPastry fixes `r`, `To` and `Tls` and periodically recomputes `Trt` so
//! that the raw loss rate meets a target with minimum probing traffic, using
//! local estimates of `N` (leaf-set density) and `µ` (failure history), and
//! adopting the median of the estimates piggybacked by other nodes.

use crate::config::Config;
use crate::fxhash::FxHashMap;
use crate::id::NodeId;
use crate::leaf_set::LeafSet;
use std::collections::VecDeque;

/// Probability of forwarding to a faulty node at one hop, given maximum
/// detection time `t_us` and failure rate `mu` (failures per node per
/// microsecond).
pub fn pf(t_us: f64, mu: f64) -> f64 {
    let x = t_us * mu;
    if x <= 0.0 {
        return 0.0;
    }
    if x < 1e-6 {
        // Series expansion avoids catastrophic cancellation: Pf ≈ x/2 − x²/6.
        return (x / 2.0 - x * x / 6.0).max(0.0);
    }
    1.0 - (1.0 - (-x).exp()) / x
}

/// Expected overlay hops `(2^b − 1)/2^b · log_{2^b} N`.
pub fn expected_hops(n: f64, b: u8) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let base = (1u64 << b) as f64;
    (base - 1.0) / base * n.ln() / base.ln()
}

/// Raw loss rate for the given detection periods (Lr in §4.1).
pub fn raw_loss(cfg: &Config, t_rt_us: f64, mu: f64, n: f64) -> f64 {
    let h = expected_hops(n, cfg.b);
    if h < 1.0 {
        return 0.0;
    }
    let retr = (cfg.max_probe_retries + 1) as f64 * cfg.t_o_us as f64;
    let p_ls = pf(cfg.t_ls_us as f64 + retr, mu);
    let p_rt = pf(t_rt_us + retr, mu);
    1.0 - (1.0 - p_ls) * (1.0 - p_rt).powf(h - 1.0)
}

/// Upper clamp for the probing period (≈ 11.5 days; effectively "no
/// probing needed").
pub const T_RT_MAX_US: u64 = 1 << 40;

/// Computes the routing-table probing period that meets the configured
/// target raw loss rate with minimum overhead, clamped to
/// `[cfg.t_rt_floor_us(), T_RT_MAX_US]`.
pub fn solve_t_rt(cfg: &Config, mu: f64, n: f64) -> u64 {
    let floor = cfg.t_rt_floor_us();
    if mu <= 0.0 || n <= 1.0 {
        return T_RT_MAX_US;
    }
    let h = expected_hops(n, cfg.b);
    let retr = (cfg.max_probe_retries + 1) as f64 * cfg.t_o_us as f64;
    let p_ls = pf(cfg.t_ls_us as f64 + retr, mu);
    if h <= 1.0 {
        // Routes are a single (leaf-set) hop; routing-table probing does not
        // influence the loss rate.
        return T_RT_MAX_US;
    }
    let ratio = (1.0 - cfg.target_raw_loss) / (1.0 - p_ls).max(f64::MIN_POSITIVE);
    if ratio >= 1.0 {
        // The leaf-set hop alone exceeds the budget; probe as fast as allowed.
        return floor;
    }
    let p_rt_target = 1.0 - ratio.powf(1.0 / (h - 1.0));
    if pf(T_RT_MAX_US as f64 + retr, mu) <= p_rt_target {
        return T_RT_MAX_US;
    }
    // Invert Pf(T + retr, µ) = p_rt_target. In x := (T + retr)·µ space the
    // equation is f(x) = 1 − (1 − e⁻ˣ)/x = p, solved by safeguarded Newton:
    // f is increasing, f(x) ≈ x/2 near 0 and ≈ 1 − 1/x for large x, giving
    // the bracket-free initial guess below. This runs on every node's
    // self-tuning tick, and Newton needs ~5 exponentials where the previous
    // bisection needed 64.
    let p = p_rt_target;
    let x_max = (T_RT_MAX_US as f64 + retr) * mu;
    let mut x = (2.0 * p / (1.0 - p)).min(x_max);
    for _ in 0..32 {
        let (fx, dfx) = if x < 1e-6 {
            (x / 2.0 - x * x / 6.0, 0.5 - x / 3.0)
        } else {
            let e = (-x).exp();
            (1.0 - (1.0 - e) / x, ((1.0 - e) - x * e) / (x * x))
        };
        let step = (fx - p) / dfx;
        x -= step;
        if !x.is_finite() || x <= 0.0 {
            x = f64::MIN_POSITIVE.max(p); // safeguard; next iteration re-approaches
            continue;
        }
        // Converged once the step is far below the microsecond granularity
        // the result is truncated to.
        if step.abs() / mu < 0.25 {
            break;
        }
    }
    let t = x / mu - retr;
    (t as u64).clamp(floor, T_RT_MAX_US)
}

/// Estimates the overlay size from the density of nodeIds in the leaf set.
pub fn estimate_n(ls: &LeafSet) -> f64 {
    let members = ls.members();
    if members.is_empty() {
        return 1.0;
    }
    let (Some(lm), Some(rm)) = (ls.leftmost(), ls.rightmost()) else {
        return (members.len() + 1) as f64;
    };
    let span = lm.cw_dist(rm);
    if span == 0 {
        return (members.len() + 1) as f64;
    }
    // `members.len() + 1` nodes (incl. own) span the arc with
    // `members.len()` gaps.
    let gaps = members.len() as f64;
    let ring = 2f64.powi(128);
    (gaps * ring / span as f64).max(2.0)
}

/// Sliding window of the last `K` observed failure times (the node's join
/// time seeds the window, per the paper).
#[derive(Debug, Clone)]
pub struct FailureHistory {
    cap: usize,
    times: VecDeque<u64>,
}

impl FailureHistory {
    /// Creates a history seeded with the node's join time.
    pub fn new(cap: usize, joined_at_us: u64) -> Self {
        assert!(cap >= 2, "history must hold at least 2 entries");
        let mut times = VecDeque::with_capacity(cap);
        times.push_back(joined_at_us);
        FailureHistory { cap, times }
    }

    /// Records an observed failure.
    pub fn record(&mut self, now_us: u64) {
        if self.times.len() == self.cap {
            self.times.pop_front();
        }
        self.times.push_back(now_us);
    }

    /// Number of recorded entries (including the join marker while present).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when only the join marker is present.
    pub fn is_empty(&self) -> bool {
        self.times.len() <= 1
    }

    /// Estimates the failure rate µ in failures per node per microsecond,
    /// given `m_unique` distinct nodes currently in the routing state.
    ///
    /// If fewer than `K` failures have been observed, the estimate is
    /// computed as if a failure occurred at the current time.
    pub fn estimate_mu(&self, now_us: u64, m_unique: usize) -> f64 {
        let m = m_unique.max(1) as f64;
        let first = *self.times.front().expect("history is never empty");
        let (k, span_us) = if self.times.len() == self.cap {
            let last = *self.times.back().unwrap();
            ((self.cap - 1) as f64, last.saturating_sub(first))
        } else {
            (self.times.len() as f64, now_us.saturating_sub(first))
        };
        let span = (span_us as f64).max(1.0);
        k / (m * span)
    }
}

/// Per-node self-tuning state: failure history plus the `T_rt` hints
/// piggybacked by peers.
#[derive(Debug, Clone)]
pub struct SelfTuner {
    history: FailureHistory,
    hints: FxHashMap<NodeId, u64>,
    local_t_rt_us: u64,
}

impl SelfTuner {
    /// Creates the tuner at join time.
    pub fn new(cfg: &Config, joined_at_us: u64) -> Self {
        SelfTuner {
            history: FailureHistory::new(cfg.failure_history_len, joined_at_us),
            hints: FxHashMap::default(),
            local_t_rt_us: cfg.fixed_t_rt_us,
        }
    }

    /// Records an observed node failure.
    pub fn record_failure(&mut self, now_us: u64) {
        self.history.record(now_us);
    }

    /// Stores a peer's piggybacked `T_rt` estimate.
    pub fn note_hint(&mut self, from: NodeId, t_rt_us: u64) {
        self.hints.insert(from, t_rt_us);
    }

    /// Drops state for a departed peer.
    pub fn forget(&mut self, node: NodeId) {
        self.hints.remove(&node);
    }

    /// The node's own current estimate (piggybacked on outgoing messages).
    pub fn local_t_rt_us(&self) -> u64 {
        self.local_t_rt_us
    }

    /// Recomputes the local estimate from the failure history and leaf-set
    /// density and returns the *adopted* period: the median of the local
    /// estimate and the hints from nodes currently in the routing state.
    pub fn recompute(
        &mut self,
        cfg: &Config,
        now_us: u64,
        m_unique: usize,
        ls: &LeafSet,
        routing_state: &[NodeId],
    ) -> u64 {
        let mu = self.history.estimate_mu(now_us, m_unique);
        let n = estimate_n(ls);
        self.local_t_rt_us = solve_t_rt(cfg, mu, n);
        self.adopted(routing_state)
    }

    /// The median of the local estimate and the current routing-state peers'
    /// hints.
    pub fn adopted(&self, routing_state: &[NodeId]) -> u64 {
        let mut vals: Vec<u64> = routing_state
            .iter()
            .filter_map(|n| self.hints.get(n).copied())
            .collect();
        vals.push(self.local_t_rt_us);
        vals.sort_unstable();
        vals[vals.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SECOND_US;
    use crate::id::Id;

    #[test]
    fn pf_limits() {
        assert_eq!(pf(0.0, 1e-9), 0.0);
        assert_eq!(pf(1e6, 0.0), 0.0);
        // Large Tµ → Pf → 1.
        assert!(pf(1e13, 1e-9) > 0.99);
        // Small Tµ → Pf ≈ Tµ/2.
        let x = 1e-8;
        assert!((pf(1.0, x) - x / 2.0).abs() < 1e-12);
    }

    #[test]
    fn pf_is_monotonic_in_t() {
        let mu = 1e-10;
        let mut prev = 0.0;
        for t in [1e6, 1e7, 1e8, 1e9, 1e10] {
            let v = pf(t, mu);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn expected_hops_matches_formula() {
        // b=4, N=10000: 15/16 * log_16(10000) ≈ 3.11.
        let h = expected_hops(10_000.0, 4);
        assert!((h - 3.114).abs() < 0.01, "h = {h}");
        assert_eq!(expected_hops(1.0, 4), 0.0);
    }

    #[test]
    fn solve_t_rt_meets_the_target() {
        let cfg = Config::default();
        // Gnutella-like failure rate: 2e-4 per node per second.
        let mu = 2e-4 / 1e6;
        let n = 2000.0;
        let t_rt = solve_t_rt(&cfg, mu, n);
        assert!(t_rt >= cfg.t_rt_floor_us());
        let achieved = raw_loss(&cfg, t_rt as f64, mu, n);
        assert!(
            (achieved - cfg.target_raw_loss).abs() < 0.01 || t_rt == cfg.t_rt_floor_us(),
            "achieved {achieved} with t_rt {t_rt}"
        );
    }

    #[test]
    fn newton_solver_matches_bisection_oracle() {
        // The pre-Newton implementation: invert Pf by 64-step bisection.
        fn bisect(cfg: &Config, mu: f64, n: f64) -> u64 {
            let floor = cfg.t_rt_floor_us();
            if mu <= 0.0 || n <= 1.0 {
                return T_RT_MAX_US;
            }
            let h = expected_hops(n, cfg.b);
            let retr = (cfg.max_probe_retries + 1) as f64 * cfg.t_o_us as f64;
            let p_ls = pf(cfg.t_ls_us as f64 + retr, mu);
            if h <= 1.0 {
                return T_RT_MAX_US;
            }
            let ratio = (1.0 - cfg.target_raw_loss) / (1.0 - p_ls).max(f64::MIN_POSITIVE);
            if ratio >= 1.0 {
                return floor;
            }
            let p_rt_target = 1.0 - ratio.powf(1.0 / (h - 1.0));
            let mut lo = 0.0f64;
            let mut hi = T_RT_MAX_US as f64;
            if pf(hi + retr, mu) <= p_rt_target {
                return T_RT_MAX_US;
            }
            for _ in 0..64 {
                let mid = (lo + hi) / 2.0;
                if pf(mid + retr, mu) < p_rt_target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (hi as u64).clamp(floor, T_RT_MAX_US)
        }
        let cfg = Config::default();
        for n in [1.5, 2.0, 8.0, 50.0, 500.0, 2000.0, 50_000.0] {
            for e in -10..=-2 {
                let mu = 10f64.powi(e); // failures per node-µs
                let want = bisect(&cfg, mu, n);
                let got = solve_t_rt(&cfg, mu, n);
                // Allow a sliver of slack: bisection itself is only exact to
                // its final interval width.
                let tol = (want / 10_000).max(2);
                assert!(
                    got.abs_diff(want) <= tol,
                    "mu=1e{e} n={n}: newton {got} vs bisection {want}"
                );
            }
        }
    }

    #[test]
    fn solve_t_rt_is_decreasing_in_mu() {
        let cfg = Config::default();
        let n = 2000.0;
        let fast = solve_t_rt(&cfg, 1e-3 / 1e6, n);
        let slow = solve_t_rt(&cfg, 1e-5 / 1e6, n);
        assert!(fast <= slow, "higher churn must probe at least as fast");
    }

    #[test]
    fn solve_t_rt_handles_degenerate_inputs() {
        let cfg = Config::default();
        assert_eq!(solve_t_rt(&cfg, 0.0, 1000.0), T_RT_MAX_US);
        assert_eq!(solve_t_rt(&cfg, 1e-9, 1.0), T_RT_MAX_US);
        // Extremely high churn pegs the floor.
        assert_eq!(solve_t_rt(&cfg, 1e-2 / 1e6, 10_000.0), cfg.t_rt_floor_us());
    }

    #[test]
    fn lower_target_means_faster_probing() {
        let mut cfg = Config::default();
        let mu = 2e-4 / 1e6;
        cfg.target_raw_loss = 0.05;
        let t5 = solve_t_rt(&cfg, mu, 2000.0);
        cfg.target_raw_loss = 0.01;
        let t1 = solve_t_rt(&cfg, mu, 2000.0);
        assert!(
            t1 < t5,
            "1% target must probe faster than 5% ({t1} vs {t5})"
        );
    }

    #[test]
    fn estimate_n_from_leafset_density() {
        // 8 nodes evenly spaced on the ring; own sees 4 on each side with
        // half = 4.
        let n = 8u32;
        let spacing = u128::MAX / n as u128;
        let own = Id(0);
        let mut ls = LeafSet::new(own, 4);
        for i in 1..n {
            ls.add(Id(spacing * i as u128));
        }
        let est = estimate_n(&ls);
        assert!(
            (est / n as f64 - 1.0).abs() < 0.3,
            "estimated {est} for true {n}"
        );
    }

    #[test]
    fn estimate_n_singleton_is_one() {
        let ls = LeafSet::new(Id(1), 4);
        assert_eq!(estimate_n(&ls), 1.0);
    }

    #[test]
    fn failure_history_estimates_rate() {
        // 1 failure per 10 s across 50 nodes → µ = 1/(50*10s) = 2e-3 per
        // node per second... with the window full.
        let mut h = FailureHistory::new(8, 0);
        for i in 1..=8u64 {
            h.record(i * 10 * SECOND_US);
        }
        let mu = h.estimate_mu(80 * SECOND_US, 50);
        let expected = 7.0 / (50.0 * 70.0 * SECOND_US as f64);
        assert!((mu / expected - 1.0).abs() < 1e-9, "mu {mu}");
    }

    #[test]
    fn failure_history_partial_uses_now() {
        let mut h = FailureHistory::new(16, 0);
        h.record(10 * SECOND_US);
        let mu = h.estimate_mu(100 * SECOND_US, 10);
        let expected = 2.0 / (10.0 * 100.0 * SECOND_US as f64);
        assert!((mu / expected - 1.0).abs() < 1e-9, "mu {mu}");
    }

    #[test]
    fn tuner_adopts_median_of_hints() {
        let cfg = Config::default();
        let mut t = SelfTuner::new(&cfg, 0);
        t.local_t_rt_us = 50;
        let peers: Vec<Id> = (1..=4u128).map(Id).collect();
        t.note_hint(peers[0], 10);
        t.note_hint(peers[1], 20);
        t.note_hint(peers[2], 90);
        t.note_hint(peers[3], 100);
        let adopted = t.adopted(&peers);
        assert_eq!(adopted, 50, "median of [10,20,50,90,100]");
        // Hints from nodes outside the routing state are ignored.
        let adopted = t.adopted(&peers[..1]);
        assert_eq!(adopted, 50, "median of [10,50]");
    }

    #[test]
    fn tuner_forget_removes_hints() {
        let cfg = Config::default();
        let mut t = SelfTuner::new(&cfg, 0);
        t.note_hint(Id(1), 10);
        t.forget(Id(1));
        assert_eq!(t.adopted(&[Id(1)]), t.local_t_rt_us());
    }
}
