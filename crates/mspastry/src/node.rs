//! The MSPastry node: shared state, the event dispatcher, and the glue
//! between the layered protocol modules.
//!
//! A [`Node`] is pure protocol logic: the host feeds it [`Event`]s together
//! with the current clock and executes the [`crate::events::Action`]s it
//! emits (the shared
//! [`crate::driver`] layer does exactly that for both the simulator and the
//! UDP deployment). The protocol mechanisms themselves live in four sibling
//! modules, one per technique of the paper, each holding its own state
//! struct plus the `impl Node` handlers for its events:
//!
//! * `consistency` — the join protocol, the LS-PROBE/REPLY state machine and
//!   leaf-set repair (§3.1, Fig. 2);
//! * `reliability` — per-hop acks, retransmission, RTO arming and temporary
//!   exclusion of suspects (§3.2);
//! * `maintenance` — heartbeats, active routing-table probing, periodic RT
//!   maintenance and the self-tuning tick (§4.1);
//! * `measurement` — distance probing and nearest-neighbour discovery for
//!   proximity neighbour selection (§4.2).
//!
//! The cross-cutting context — identifier, configuration, clock, RNG and
//! observability — is grouped in one `Ctx` threaded explicitly through every
//! handler, so each module touches only the state it owns plus the context.

use crate::config::Config;
use crate::consistency::Consistency;
use crate::diag::NodeObs;
use crate::events::{Effects, Event, TimerKind};
use crate::id::{Key, NodeId};
use crate::leaf_set::LeafSet;
use crate::maintenance::Maintenance;
use crate::measurement::Measurement;
use crate::messages::{LookupId, Message};
use crate::reliability::Reliability;
use crate::routing_table::RoutingTable;
use obs::{HopEvent, HopKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Cross-cutting per-node context shared by every protocol module: identity,
/// configuration, the host-supplied clock, the deterministic RNG and the
/// observability handles.
#[derive(Debug)]
pub(crate) struct Ctx {
    pub(crate) id: NodeId,
    pub(crate) cfg: Config,
    pub(crate) now_us: u64,
    pub(crate) active: bool,
    pub(crate) rng: SmallRng,
    pub(crate) obs: NodeObs,
}

impl Ctx {
    /// Builds a hop-trace event at the current clock for lookup `id`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn hop_ev(
        &self,
        id: LookupId,
        kind: HopKind,
        peer: u128,
        hops: u32,
        attempt: u32,
        detail_us: u64,
        note: &'static str,
    ) -> HopEvent {
        HopEvent {
            at_us: self.now_us,
            node: self.id.0,
            src: id.src.0,
            seq: id.seq,
            kind,
            peer,
            hops,
            attempt,
            detail_us,
            note,
        }
    }
}

/// An MSPastry overlay node.
#[derive(Debug)]
pub struct Node {
    pub(crate) ctx: Ctx,
    pub(crate) rt: RoutingTable,
    pub(crate) ls: LeafSet,
    pub(crate) consistency: Consistency,
    pub(crate) reliability: Reliability,
    pub(crate) maintenance: Maintenance,
    pub(crate) measurement: Measurement,
}

impl Node {
    /// Creates an inactive node; feed it [`Event::Join`] to start.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: NodeId, cfg: Config) -> Self {
        Self::with_obs(id, cfg, obs::Obs::disabled())
    }

    /// Creates an inactive node wired to a per-run observability handle:
    /// its diagnostic counters, RTO/period histograms and sampled hop
    /// traces land in `obs`'s registry and flight recorder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_obs(id: NodeId, cfg: Config, obs: obs::Obs) -> Self {
        cfg.validate().expect("invalid MSPastry configuration");
        let half = cfg.leaf_half();
        let b = cfg.b;
        let maintenance = Maintenance::new(&cfg);
        Node {
            rt: RoutingTable::new(id, b),
            ls: LeafSet::new(id, half),
            consistency: Consistency::new(),
            reliability: Reliability::new(),
            maintenance,
            measurement: Measurement::new(),
            ctx: Ctx {
                id,
                cfg,
                now_us: 0,
                active: false,
                rng: SmallRng::seed_from_u64((id.0 as u64) ^ ((id.0 >> 64) as u64)),
                obs: NodeObs::new(obs),
            },
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.ctx.id
    }

    /// `true` once the node has completed its join.
    pub fn is_active(&self) -> bool {
        self.ctx.active
    }

    /// The node's configuration.
    pub fn config(&self) -> &Config {
        &self.ctx.cfg
    }

    /// Read access to the routing table (for tests and metrics).
    pub fn routing_table(&self) -> &RoutingTable {
        &self.rt
    }

    /// Read access to the leaf set (for tests and metrics).
    pub fn leaf_set(&self) -> &LeafSet {
        &self.ls
    }

    /// The currently adopted routing-table probing period.
    pub fn t_rt_us(&self) -> u64 {
        self.maintenance.t_rt_us
    }

    /// Number of peers currently suspected faulty (probed, reply still
    /// outstanding) — a liveness diagnostic for health endpoints.
    pub fn suspected_count(&self) -> usize {
        self.reliability.suspected.len()
    }

    /// Handles one event at time `now_us`, appending outputs to `fx`.
    pub fn handle(&mut self, now_us: u64, event: Event, fx: &mut Effects) {
        self.ctx.now_us = now_us;
        match event {
            Event::Join { seed } => self.on_join(seed, fx),
            Event::Lookup { key, payload } => self.on_local_lookup(key, payload, fx),
            Event::Leave => self.on_leave(fx),
            Event::Receive { from, msg } => self.on_receive(from, msg, fx),
            Event::Timer(kind) => self.on_timer(kind, fx),
        }
    }

    // ----- dispatch ---------------------------------------------------------

    fn on_receive(&mut self, from: NodeId, msg: Message, fx: &mut Effects) {
        self.maintenance.last_heard.insert(from, self.ctx.now_us);
        self.reliability.suspected.remove(&from);
        match msg {
            Message::JoinRequest { joiner, rows, hops } => {
                self.on_join_request(joiner, rows, hops, fx)
            }
            Message::JoinReply { rows, leaf_set } => self.on_join_reply(from, rows, leaf_set, fx),
            Message::LsProbe {
                leaf_set,
                failed,
                trt_hint,
            } => {
                self.note_hint(from, trt_hint);
                self.on_ls_probe(from, leaf_set, failed, true, fx);
            }
            Message::LsProbeReply {
                leaf_set,
                failed,
                trt_hint,
            } => {
                self.note_hint(from, trt_hint);
                self.on_ls_probe(from, leaf_set, failed, false, fx);
            }
            Message::Heartbeat { trt_hint } => {
                self.note_hint(from, trt_hint);
                // Liveness only; last_heard was already updated.
            }
            Message::RtProbe { nonce } => self.on_rt_probe(from, nonce, fx),
            Message::RtProbeReply { trt_hint, .. } => {
                self.note_hint(from, trt_hint);
                self.clear_probe(from);
            }
            Message::RtRowRequest { row } => self.on_rt_row_request(from, row, fx),
            Message::RtRowReply { entries, .. } | Message::RtRowAnnounce { entries, .. } => {
                for n in entries {
                    self.consider_rt_candidate(n, fx);
                }
            }
            Message::RtSlotRequest { row, col } => self.on_rt_slot_request(from, row, col, fx),
            Message::RtSlotReply { entry, .. } => {
                if let Some(n) = entry {
                    self.consider_rt_candidate(n, fx);
                }
            }
            Message::DistanceProbe { nonce } => {
                self.send(from, Message::DistanceProbeReply { nonce }, fx);
            }
            Message::DistanceProbeReply { nonce } => self.on_distance_reply(from, nonce, fx),
            Message::DistanceReport { rtt_us } => self.on_distance_report(from, rtt_us),
            Message::NnLeafSetRequest => {
                let nodes = self.ls.members();
                self.send(from, Message::NnLeafSetReply { nodes }, fx);
            }
            Message::NnLeafSetReply { nodes } => self.on_nn_candidates(None, nodes, fx),
            Message::NnRowRequest { row } => self.on_nn_row_request(from, row, fx),
            Message::NnRowReply { row, nodes } => self.on_nn_candidates(Some(row), nodes, fx),
            Message::Lookup {
                id,
                key,
                payload,
                hops,
                issued_at_us,
                is_retransmit: _,
                wants_acks,
            } => self.on_lookup(from, id, key, payload, hops, issued_at_us, wants_acks, fx),
            Message::Leaving => {
                // The sender told us directly it is gone: skip failure
                // detection entirely. No announcement — the leaver notified
                // its whole routing state itself.
                self.mark_faulty(from, false, fx);
                self.done_probing(fx);
            }
            Message::Ack { id } => self.on_ack(from, id),
        }
    }

    fn on_timer(&mut self, kind: TimerKind, fx: &mut Effects) {
        match kind {
            TimerKind::Heartbeat => self.on_heartbeat_tick(fx),
            TimerKind::RtProbeTick => self.on_rt_probe_tick(fx),
            TimerKind::RtMaintenance => self.on_rt_maintenance(fx),
            TimerKind::SelfTune => self.on_self_tune(fx),
            TimerKind::ProbeTimeout { target, attempt } => {
                self.on_probe_timeout(target, attempt, fx)
            }
            TimerKind::AckTimeout { lookup, attempt } => self.on_ack_timeout(lookup, attempt, fx),
            TimerKind::DistanceProbeNext { target } => self.on_distance_probe_next(target, fx),
            TimerKind::DistanceProbeTimeout { target, nonce } => {
                self.on_distance_timeout(target, nonce, fx)
            }
            TimerKind::JoinRetry => self.on_join_retry(fx),
        }
    }

    // ----- shared helpers ---------------------------------------------------

    pub(crate) fn send(&mut self, to: NodeId, msg: Message, fx: &mut Effects) {
        debug_assert_ne!(to, self.ctx.id, "node must not message itself");
        self.maintenance.last_sent.insert(to, self.ctx.now_us);
        fx.send(to, msg);
    }

    /// The leaf-set members closest to `key` (ring-distance order, up to 8),
    /// for application-level replication.
    pub(crate) fn replica_set(&self, key: Key) -> Vec<NodeId> {
        let mut members = self.ls.members();
        members.sort_by_key(|m| (m.ring_dist(key), m.0));
        members.truncate(8);
        members
    }

    /// All distinct nodes currently in the routing state (routing table and
    /// leaf set).
    pub fn routing_state_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.rt.len() + 2 * self.ctx.cfg.leaf_half());
        ids.extend(self.rt.entries().map(|e| e.id));
        // Routing-table ids are distinct, so only leaf-set members need the
        // (constant-time, digit-indexed) duplicate check.
        for m in self.ls.iter() {
            if !self.rt.contains(m) {
                ids.push(m);
            }
        }
        ids
    }
}
