//! The MSPastry node state machine.
//!
//! A [`Node`] is pure protocol logic: the host feeds it [`Event`]s together
//! with the current clock and executes the [`Action`]s it emits. The
//! implementation follows the simplified algorithm of the paper's Figure 2
//! plus the reliability (§3.2) and performance (§4) techniques:
//!
//! * consistent routing — activation gated on leaf-set probing, eager leaf-set
//!   repair, no dead-node propagation;
//! * reliable routing — per-hop acks with aggressive retransmission and
//!   rerouting, active probing of leaf set and routing table;
//! * low overhead — heartbeats only to the left neighbour, self-tuned
//!   routing-table probe period, probe suppression by regular traffic, and
//!   symmetric distance probes for PNS.

use crate::config::Config;
use crate::diag::{NodeObs, ProbeCause};
use crate::events::{Action, DropReason, Effects, Event, TimerKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::id::{Id, Key, NodeId};
use crate::leaf_set::LeafSet;
use crate::messages::{LookupId, Message, Payload};
use crate::pns::{DistanceMeasurer, MeasurePurpose, MeasureTimeout, NnState, NnStep, ReplyOutcome};
use crate::probes::{ProbeKind, ProbeManager, TimeoutVerdict};
use crate::routing::{route, NextHop};
use crate::routing_table::{RoutingTable, DIST_UNKNOWN};
use crate::rto::RtoTable;
use crate::tuning::SelfTuner;
use obs::{HopEvent, HopKind, NO_PEER};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A lookup buffered or in flight at this node, awaiting a per-hop ack.
#[derive(Debug, Clone)]
struct PendingLookup {
    key: Key,
    payload: Payload,
    hops: u32,
    issued_at_us: u64,
    excluded: Vec<NodeId>,
    attempt: u32,
    /// How many times the lookup was re-routed around a suspect (excluding
    /// same-root retransmissions, which have their own budget).
    reroutes: u32,
    next: NodeId,
    sent_at_us: u64,
}

/// A lookup buffered while the node is still joining.
#[derive(Debug, Clone)]
struct BufferedLookup {
    id: LookupId,
    key: Key,
    payload: Payload,
    hops: u32,
    issued_at_us: u64,
    wants_acks: bool,
}

/// An MSPastry overlay node.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    cfg: Config,
    now_us: u64,
    active: bool,
    rt: RoutingTable,
    ls: LeafSet,
    probes: ProbeManager,
    probe_nonce: u64,
    failed: FxHashSet<NodeId>,
    failed_order: VecDeque<NodeId>,
    suspected: FxHashSet<NodeId>,
    last_heard: FxHashMap<NodeId, u64>,
    last_sent: FxHashMap<NodeId, u64>,
    repair_paced: FxHashMap<NodeId, u64>,
    rtos: RtoTable,
    tuner: SelfTuner,
    t_rt_us: u64,
    measurer: DistanceMeasurer,
    /// Measured round-trip distances with their measurement time; doubles
    /// as a negative cache so rejected routing-table candidates are not
    /// re-measured at every maintenance round.
    known_dists: FxHashMap<NodeId, (u64, u64)>,
    nn: Option<NnState>,
    join_seed: Option<NodeId>,
    pending: FxHashMap<LookupId, PendingLookup>,
    seen: FxHashSet<LookupId>,
    seen_order: VecDeque<LookupId>,
    buffered: Vec<BufferedLookup>,
    buffered_joins: Vec<(NodeId, Vec<Vec<NodeId>>, u32)>,
    lookup_seq: u64,
    rng: SmallRng,
    obs: NodeObs,
}

const SEEN_CAP: usize = 16_384;
const FAILED_CAP: usize = 512;
const MAX_CONCURRENT_MEASUREMENTS: usize = 64;

impl Node {
    /// Creates an inactive node; feed it [`Event::Join`] to start.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: NodeId, cfg: Config) -> Self {
        Self::with_obs(id, cfg, obs::Obs::disabled())
    }

    /// Creates an inactive node wired to a per-run observability handle:
    /// its diagnostic counters, RTO/period histograms and sampled hop
    /// traces land in `obs`'s registry and flight recorder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_obs(id: NodeId, cfg: Config, obs: obs::Obs) -> Self {
        cfg.validate().expect("invalid MSPastry configuration");
        let half = cfg.leaf_half();
        let b = cfg.b;
        let t_rt = cfg.fixed_t_rt_us;
        let tuner = SelfTuner::new(&cfg, 0);
        Node {
            id,
            rt: RoutingTable::new(id, b),
            ls: LeafSet::new(id, half),
            cfg,
            now_us: 0,
            active: false,
            probes: ProbeManager::new(),
            probe_nonce: 0,
            failed: FxHashSet::default(),
            failed_order: VecDeque::new(),
            suspected: FxHashSet::default(),
            last_heard: FxHashMap::default(),
            last_sent: FxHashMap::default(),
            repair_paced: FxHashMap::default(),
            rtos: RtoTable::new(),
            tuner,
            t_rt_us: t_rt,
            measurer: DistanceMeasurer::new(),
            known_dists: FxHashMap::default(),
            nn: None,
            join_seed: None,
            pending: FxHashMap::default(),
            seen: FxHashSet::default(),
            seen_order: VecDeque::new(),
            buffered: Vec::new(),
            buffered_joins: Vec::new(),
            lookup_seq: 0,
            rng: SmallRng::seed_from_u64((id.0 as u64) ^ ((id.0 >> 64) as u64)),
            obs: NodeObs::new(obs),
        }
    }

    /// Builds a hop-trace event at the current clock for lookup `id`.
    #[allow(clippy::too_many_arguments)]
    fn hop_ev(
        &self,
        id: LookupId,
        kind: HopKind,
        peer: u128,
        hops: u32,
        attempt: u32,
        detail_us: u64,
        note: &'static str,
    ) -> HopEvent {
        HopEvent {
            at_us: self.now_us,
            node: self.id.0,
            src: id.src.0,
            seq: id.seq,
            kind,
            peer,
            hops,
            attempt,
            detail_us,
            note,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// `true` once the node has completed its join.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The node's configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Read access to the routing table (for tests and metrics).
    pub fn routing_table(&self) -> &RoutingTable {
        &self.rt
    }

    /// Read access to the leaf set (for tests and metrics).
    pub fn leaf_set(&self) -> &LeafSet {
        &self.ls
    }

    /// The currently adopted routing-table probing period.
    pub fn t_rt_us(&self) -> u64 {
        self.t_rt_us
    }

    /// Handles one event at time `now_us`, appending outputs to `fx`.
    pub fn handle(&mut self, now_us: u64, event: Event, fx: &mut Effects) {
        self.now_us = now_us;
        match event {
            Event::Join { seed } => self.on_join(seed, fx),
            Event::Lookup { key, payload } => self.on_local_lookup(key, payload, fx),
            Event::Leave => self.on_leave(fx),
            Event::Receive { from, msg } => self.on_receive(from, msg, fx),
            Event::Timer(kind) => self.on_timer(kind, fx),
        }
    }

    // ----- join -----------------------------------------------------------

    fn on_join(&mut self, seed: Option<NodeId>, fx: &mut Effects) {
        self.join_seed = seed;
        self.tuner = SelfTuner::new(&self.cfg, self.now_us);
        // Periodic timers, staggered to avoid fleet-wide synchronisation.
        let stagger = |rng: &mut SmallRng, period: u64| rng.gen_range(1..=period.max(1));
        let hb = stagger(&mut self.rng, self.cfg.t_ls_us);
        fx.timer(hb, TimerKind::Heartbeat);
        let rp = stagger(&mut self.rng, self.t_rt_us);
        if self.cfg.active_rt_probing {
            fx.timer(rp, TimerKind::RtProbeTick);
        }
        let rm = stagger(&mut self.rng, self.cfg.rt_maintenance_period_us);
        fx.timer(rm, TimerKind::RtMaintenance);
        if self.cfg.self_tuning {
            let st = stagger(&mut self.rng, self.cfg.self_tune_period_us);
            fx.timer(st, TimerKind::SelfTune);
        }
        match seed {
            None => self.activate(fx),
            Some(seed) => {
                fx.timer(self.cfg.join_retry_us, TimerKind::JoinRetry);
                if self.cfg.nearest_neighbor_join {
                    self.nn = Some(NnState::new(seed));
                    self.send(seed, Message::NnLeafSetRequest, fx);
                    self.start_measurement(seed, MeasurePurpose::NearestNeighbor, fx);
                } else {
                    self.send_join_request(seed, fx);
                }
            }
        }
    }

    fn send_join_request(&mut self, to: NodeId, fx: &mut Effects) {
        self.send(
            to,
            Message::JoinRequest {
                joiner: self.id,
                rows: Vec::new(),
                hops: 0,
            },
            fx,
        );
    }

    fn activate(&mut self, fx: &mut Effects) {
        if self.active {
            return;
        }
        self.active = true;
        self.nn = None;
        self.failed.clear();
        self.failed_order.clear();
        fx.actions.push(Action::BecameActive);
        // Announce: send each initialised row to the nodes in that row so
        // they learn about us and gossip previous joiners (§2).
        for r in self.rt.occupied_rows() {
            let mut entries = self.rt.row_ids(r);
            for &to in entries.clone().iter() {
                entries.push(self.id);
                self.send(
                    to,
                    Message::RtRowAnnounce {
                        row: r,
                        entries: entries.clone(),
                    },
                    fx,
                );
                entries.pop();
            }
        }
        // Symmetric PNS: the joiner initiates distance probing of the nodes
        // in its routing state; they wait for the measured values (§4.2).
        let targets: Vec<NodeId> = self
            .rt
            .entries()
            .filter(|e| e.distance_us == DIST_UNKNOWN)
            .map(|e| e.id)
            .collect();
        for t in targets {
            self.start_measurement(t, MeasurePurpose::ConsiderRt, fx);
        }
        // Route anything buffered during the join.
        let joins = std::mem::take(&mut self.buffered_joins);
        for (joiner, rows, hops) in joins {
            self.on_join_request(joiner, rows, hops, fx);
        }
        let buffered = std::mem::take(&mut self.buffered);
        for bl in buffered {
            self.route_lookup(
                bl.id,
                bl.key,
                bl.payload,
                bl.hops,
                bl.issued_at_us,
                Vec::new(),
                0,
                0,
                bl.wants_acks,
                false,
                fx,
            );
        }
    }

    // ----- local lookups ---------------------------------------------------

    fn on_local_lookup(&mut self, key: Key, payload: Payload, fx: &mut Effects) {
        self.lookup_seq += 1;
        let id = LookupId {
            src: self.id,
            seq: self.lookup_seq,
        };
        self.note_seen(id);
        if self.obs.sampled(id) {
            let ev = self.hop_ev(id, HopKind::Issue, NO_PEER, 0, 0, 0, "");
            self.obs.hop(ev);
        }
        if !self.active {
            self.buffer_lookup(
                BufferedLookup {
                    id,
                    key,
                    payload,
                    hops: 0,
                    issued_at_us: self.now_us,
                    wants_acks: true,
                },
                fx,
            );
            return;
        }
        self.route_lookup(
            id,
            key,
            payload,
            0,
            self.now_us,
            Vec::new(),
            0,
            0,
            true,
            false,
            fx,
        );
    }

    fn buffer_lookup(&mut self, bl: BufferedLookup, fx: &mut Effects) {
        if self.buffered.len() >= self.cfg.join_buffer_cap {
            let reason = DropReason::BufferOverflow;
            let ev = self.hop_ev(
                bl.id,
                HopKind::Drop,
                NO_PEER,
                bl.hops,
                0,
                0,
                reason.as_str(),
            );
            self.obs.drop_event(reason, ev);
            fx.actions.push(Action::LookupDropped { id: bl.id, reason });
            return;
        }
        self.buffered.push(bl);
    }

    /// Announces a voluntary departure to every node in the routing state.
    /// The host is expected to stop the node afterwards.
    fn on_leave(&mut self, fx: &mut Effects) {
        if !self.active {
            return;
        }
        for peer in self.routing_state_ids() {
            self.send(peer, Message::Leaving, fx);
        }
        self.active = false;
    }

    // ----- receive ---------------------------------------------------------

    fn on_receive(&mut self, from: NodeId, msg: Message, fx: &mut Effects) {
        self.last_heard.insert(from, self.now_us);
        self.suspected.remove(&from);
        match msg {
            Message::JoinRequest { joiner, rows, hops } => {
                self.on_join_request(joiner, rows, hops, fx)
            }
            Message::JoinReply { rows, leaf_set } => self.on_join_reply(from, rows, leaf_set, fx),
            Message::LsProbe {
                leaf_set,
                failed,
                trt_hint,
            } => {
                self.note_hint(from, trt_hint);
                self.on_ls_probe(from, leaf_set, failed, true, fx);
            }
            Message::LsProbeReply {
                leaf_set,
                failed,
                trt_hint,
            } => {
                self.note_hint(from, trt_hint);
                self.on_ls_probe(from, leaf_set, failed, false, fx);
            }
            Message::Heartbeat { trt_hint } => {
                self.note_hint(from, trt_hint);
                // Liveness only; last_heard was already updated.
            }
            Message::RtProbe { nonce } => {
                let hint = self.hint();
                self.send(
                    from,
                    Message::RtProbeReply {
                        nonce,
                        trt_hint: hint,
                    },
                    fx,
                );
            }
            Message::RtProbeReply { trt_hint, .. } => {
                self.note_hint(from, trt_hint);
                self.clear_probe(from);
            }
            Message::RtRowRequest { row } => {
                let entries = self.rt.row_ids(row);
                self.send(from, Message::RtRowReply { row, entries }, fx);
            }
            Message::RtRowReply { entries, .. } | Message::RtRowAnnounce { entries, .. } => {
                for n in entries {
                    self.consider_rt_candidate(n, fx);
                }
            }
            Message::RtSlotRequest { row, col } => {
                let entry = self.rt.get(row, col).map(|e| e.id);
                self.send(from, Message::RtSlotReply { row, col, entry }, fx);
            }
            Message::RtSlotReply { entry, .. } => {
                if let Some(n) = entry {
                    self.consider_rt_candidate(n, fx);
                }
            }
            Message::DistanceProbe { nonce } => {
                self.send(from, Message::DistanceProbeReply { nonce }, fx);
            }
            Message::DistanceProbeReply { nonce } => self.on_distance_reply(from, nonce, fx),
            Message::DistanceReport { rtt_us } => {
                // Symmetric probing: the peer measured us; reuse its value.
                self.known_dists.insert(from, (rtt_us, self.now_us));
                self.rt.offer(from, rtt_us);
            }
            Message::NnLeafSetRequest => {
                let nodes = self.ls.members();
                self.send(from, Message::NnLeafSetReply { nodes }, fx);
            }
            Message::NnLeafSetReply { nodes } => self.on_nn_candidates(None, nodes, fx),
            Message::NnRowRequest { row } => {
                let occupied = self.rt.occupied_rows();
                let deepest = occupied.last().copied().unwrap_or(0);
                let row = row.min(deepest);
                let nodes = self.rt.row_ids(row);
                self.send(from, Message::NnRowReply { row, nodes }, fx);
            }
            Message::NnRowReply { row, nodes } => self.on_nn_candidates(Some(row), nodes, fx),
            Message::Lookup {
                id,
                key,
                payload,
                hops,
                issued_at_us,
                is_retransmit: _,
                wants_acks,
            } => {
                if self.cfg.per_hop_acks && wants_acks {
                    self.send(from, Message::Ack { id }, fx);
                }
                if self.seen.contains(&id) {
                    return; // duplicate copy of a rerouted lookup
                }
                self.note_seen(id);
                if !self.active {
                    self.buffer_lookup(
                        BufferedLookup {
                            id,
                            key,
                            payload,
                            hops,
                            issued_at_us,
                            wants_acks,
                        },
                        fx,
                    );
                    return;
                }
                self.route_lookup(
                    id,
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    Vec::new(),
                    0,
                    0,
                    wants_acks,
                    false,
                    fx,
                );
            }
            Message::Leaving => {
                // The sender told us directly it is gone: skip failure
                // detection entirely. No announcement — the leaver notified
                // its whole routing state itself.
                self.mark_faulty(from, false, fx);
                self.done_probing(fx);
            }
            Message::Ack { id } => {
                if let Some(p) = self.pending.remove(&id) {
                    let rtt = self.now_us.saturating_sub(p.sent_at_us);
                    if p.next == from && p.attempt == 0 {
                        // Karn's rule: only sample unambiguous exchanges.
                        self.obs.rtt_sample(rtt);
                        self.rtos.update(from, rtt);
                    }
                    if self.obs.sampled(id) {
                        let ev = self.hop_ev(id, HopKind::Ack, from.0, p.hops, p.attempt, rtt, "");
                        self.obs.hop(ev);
                    }
                }
            }
        }
    }

    // ----- join handling ---------------------------------------------------

    fn on_join_request(
        &mut self,
        joiner: NodeId,
        mut rows: Vec<Vec<NodeId>>,
        hops: u32,
        fx: &mut Effects,
    ) {
        if joiner == self.id {
            return;
        }
        // Contribute routing-table rows 0..=spl (Fig. 2: R.add(Ri)).
        let spl = self.id.shared_prefix_len(joiner, self.cfg.b);
        let max_row = spl.min(Id::rows(self.cfg.b) - 1);
        if rows.len() <= max_row {
            rows.resize(max_row + 1, Vec::new());
        }
        for (r, row) in rows.iter_mut().enumerate().take(max_row + 1) {
            if row.is_empty() {
                *row = self.rt.row_ids(r);
            }
        }
        // The hop itself belongs in the joiner's table at row `spl`.
        if !rows[max_row].contains(&self.id) {
            rows[max_row].push(self.id);
        }
        let excluded = self.excluded_set(&[]);
        match route(&self.rt, &self.ls, joiner, &|n| excluded.contains(&n)) {
            NextHop::Local => {
                if self.active {
                    let mut leaf_set = self.ls.members();
                    leaf_set.push(self.id);
                    self.send(joiner, Message::JoinReply { rows, leaf_set }, fx);
                } else if self.buffered_joins.len() < 64 {
                    // Buffer and re-route once we are active ourselves
                    // (Fig. 2 buffers messages received while inactive).
                    self.buffered_joins.push((joiner, rows, hops));
                }
            }
            NextHop::Forward { next, .. } => {
                self.send(
                    next,
                    Message::JoinRequest {
                        joiner,
                        rows,
                        hops: hops + 1,
                    },
                    fx,
                );
            }
        }
    }

    fn on_join_reply(
        &mut self,
        from: NodeId,
        rows: Vec<Vec<NodeId>>,
        leaf_set: Vec<NodeId>,
        fx: &mut Effects,
    ) {
        if self.active {
            return;
        }
        // Bootstrap the routing state (Fig. 2: Ri.add(R ∪ L); Li.add(L)).
        let nn_dists: FxHashMap<NodeId, u64> = self
            .nn
            .as_ref()
            .map(|nn| nn.measured().clone())
            .unwrap_or_default();
        for row in &rows {
            for &n in row {
                let d = nn_dists
                    .get(&n)
                    .copied()
                    .or_else(|| self.known_dists.get(&n).map(|&(d, _)| d))
                    .unwrap_or(DIST_UNKNOWN);
                self.rt.offer(n, d);
            }
        }
        for &n in &leaf_set {
            let d = self
                .known_dists
                .get(&n)
                .map(|&(d, _)| d)
                .unwrap_or(DIST_UNKNOWN);
            self.rt.offer(n, d);
            self.ls.add(n);
        }
        // The replying root spoke to us directly.
        self.ls.add(from);
        self.rt.offer(
            from,
            self.known_dists
                .get(&from)
                .map(|&(d, _)| d)
                .unwrap_or(DIST_UNKNOWN),
        );
        // Probe every leaf-set member before becoming active.
        for m in self.ls.members() {
            if self.probe(m, ProbeKind::LeafSet, true, fx) {
                self.obs.cause(ProbeCause::JoinBootstrap);
            }
        }
        if self.probes.leaf_set_outstanding() == 0 {
            // Degenerate bootstrap (no members): singleton overlay.
            self.done_probing(fx);
        }
    }

    // ----- leaf-set probing (Fig. 2) ---------------------------------------

    /// Starts a probe of `j` unless one is outstanding or `j` is failed.
    /// `announce` controls whether exhausting the probe announces the failure
    /// to the leaf set (confirmation probes of an already-announced failure
    /// do not re-announce).
    fn probe(&mut self, j: NodeId, kind: ProbeKind, announce: bool, fx: &mut Effects) -> bool {
        if j == self.id || self.failed.contains(&j) || self.probes.contains(j) {
            return false;
        }
        if !self.probes.begin(j, kind, announce, self.now_us) {
            return false;
        }
        self.send_probe_message(j, kind, fx);
        fx.timer(
            self.cfg.t_o_us,
            TimerKind::ProbeTimeout {
                target: j,
                attempt: 0,
            },
        );
        true
    }

    fn send_probe_message(&mut self, j: NodeId, kind: ProbeKind, fx: &mut Effects) {
        match kind {
            ProbeKind::LeafSet => {
                let msg = Message::LsProbe {
                    leaf_set: self.ls.members(),
                    failed: self.failed.iter().copied().collect(),
                    trt_hint: self.hint(),
                };
                self.send(j, msg, fx);
            }
            ProbeKind::Liveness => {
                self.probe_nonce += 1;
                self.send(
                    j,
                    Message::RtProbe {
                        nonce: self.probe_nonce,
                    },
                    fx,
                );
            }
        }
    }

    fn on_ls_probe(
        &mut self,
        j: NodeId,
        leaf_set: Vec<NodeId>,
        failed: Vec<NodeId>,
        is_probe: bool,
        fx: &mut Effects,
    ) {
        // failed_i := failed_i − {j}
        if self.failed.remove(&j) {
            self.failed_order.retain(|&n| n != j);
        }
        // L_i.add({j}); R_i.add({j}) — j spoke to us directly.
        self.ls.add(j);
        self.rt.offer(
            j,
            self.known_dists
                .get(&j)
                .map(|&(d, _)| d)
                .unwrap_or(DIST_UNKNOWN),
        );
        // Probe members the sender believes faulty (to confirm / recover from
        // false positives), then drop them from the leaf set.
        for &n in &failed {
            if n != self.id && self.ls.contains(n) {
                // Confirmation probe: do not re-announce on exhaustion.
                if self.probe(n, ProbeKind::LeafSet, false, fx) {
                    self.obs.cause(ProbeCause::Confirm);
                }
                self.ls.remove(n);
            }
        }
        // Candidates from the sender's leaf set are probed before inclusion.
        // Only candidates that would actually belong to the resulting leaf
        // set are probed; probing every admissible node would flood ~l
        // probes per vacancy.
        let failed = &self.failed;
        for n in self
            .ls
            .useful_candidates_filtered(&leaf_set, |n| !failed.contains(&n))
        {
            if self.probe(n, ProbeKind::LeafSet, true, fx) {
                self.obs.cause(ProbeCause::Candidate);
            }
        }
        if is_probe {
            let msg = Message::LsProbeReply {
                leaf_set: self.ls.members(),
                failed: self.failed.iter().copied().collect(),
                trt_hint: self.hint(),
            };
            self.send(j, msg, fx);
        } else {
            self.clear_probe(j);
            self.done_probing(fx);
        }
    }

    /// Clears an outstanding probe to `j` after any direct reply and samples
    /// its RTT.
    fn clear_probe(&mut self, j: NodeId) {
        if let Some(st) = self.probes.on_reply(j) {
            let rtt = self.now_us.saturating_sub(st.sent_at_us);
            self.obs.rtt_sample(rtt);
            self.rtos.update(j, rtt);
        }
    }

    fn done_probing(&mut self, fx: &mut Effects) {
        if self.probes.leaf_set_outstanding() > 0 {
            return;
        }
        if self.ls.is_complete() {
            if !self.active {
                self.activate(fx);
            }
            // Fig. 2: whenever probing drains with a complete leaf set,
            // `failed` is cleared. This stops stale false-positive entries
            // from being gossiped forever (a peer's sticky `failed` set
            // would otherwise keep evicting a live node from our leaf set,
            // re-probing it in an endless remove/confirm/re-add cycle).
            self.failed.clear();
            self.failed_order.clear();
            return;
        }
        // Leaf-set repair: extend the short side by probing its farthest
        // member; with an empty side, fall back to the closest known node on
        // that side (generalised repair).
        let half = self.cfg.leaf_half();
        let mut repair_targets: Vec<NodeId> = Vec::new();
        if self.ls.left().len() < half {
            match self.ls.leftmost() {
                Some(lm) => repair_targets.push(lm),
                None => {
                    if let Some(c) = self.closest_known(|own, n| own.ccw_dist(n)) {
                        repair_targets.push(c);
                    }
                }
            }
        }
        if self.ls.right().len() < half {
            match self.ls.rightmost() {
                Some(rm) => repair_targets.push(rm),
                None => {
                    if let Some(c) = self.closest_known(|own, n| own.cw_dist(n)) {
                        repair_targets.push(c);
                    }
                }
            }
        }
        if repair_targets.is_empty() {
            // Nobody left to ask: the overlay (as far as we know) is just us.
            if !self.active {
                self.activate(fx);
            }
            return;
        }
        for t in repair_targets {
            // Pace repair probes so an unhelpful neighbour is not hammered.
            let last = self.repair_paced.get(&t).copied().unwrap_or(0);
            if self.now_us.saturating_sub(last) >= self.cfg.t_o_us || last == 0 {
                self.repair_paced.insert(t, self.now_us.max(1));
                if self.probe(t, ProbeKind::LeafSet, true, fx) {
                    self.obs.cause(ProbeCause::Repair);
                }
            }
        }
    }

    fn closest_known(&self, dist: impl Fn(NodeId, NodeId) -> u128) -> Option<NodeId> {
        self.routing_state_ids()
            .into_iter()
            .filter(|n| !self.failed.contains(n))
            .min_by_key(|&n| dist(self.id, n))
    }

    fn mark_faulty(&mut self, j: NodeId, announce: bool, fx: &mut Effects) {
        let was_ls_member = self.ls.contains(j);
        self.ls.remove(j);
        self.rt.remove(j);
        self.insert_failed(j);
        self.tuner.record_failure(self.now_us);
        self.tuner.forget(j);
        self.rtos.forget(j);
        self.known_dists.remove(&j);
        self.measurer.cancel(j);
        self.suspected.remove(&j);
        if was_ls_member && self.active && announce {
            // Announce the failure to the remaining leaf-set members; their
            // replies provide replacement candidates (§4.1).
            for m in self.ls.members() {
                if self.probe(m, ProbeKind::LeafSet, true, fx) {
                    self.obs.cause(ProbeCause::Announce);
                }
            }
        }
        // Lookups still awaiting an ack from `j` will never get one —
        // re-route them now rather than waiting out their (backed-off)
        // retransmission timers.
        let stranded: Vec<LookupId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.next == j)
            .map(|(&id, _)| id)
            .collect();
        for id in stranded {
            self.obs.stranded_reroute();
            let p = self.pending.remove(&id).expect("pending entry present");
            if self.obs.sampled(id) {
                let ev = self.hop_ev(id, HopKind::Exclude, j.0, p.hops, p.attempt, 0, "stranded");
                self.obs.hop(ev);
            }
            let mut excluded = p.excluded;
            if !excluded.contains(&j) {
                excluded.push(j);
            }
            self.route_lookup(
                id,
                p.key,
                p.payload,
                p.hops,
                p.issued_at_us,
                excluded,
                p.attempt + 1,
                p.reroutes + 1,
                true,
                true,
                fx,
            );
        }
    }

    fn insert_failed(&mut self, j: NodeId) {
        if self.failed.insert(j) {
            self.failed_order.push_back(j);
            while self.failed_order.len() > FAILED_CAP {
                if let Some(old) = self.failed_order.pop_front() {
                    self.failed.remove(&old);
                }
            }
        }
    }

    // ----- timers ----------------------------------------------------------

    fn on_timer(&mut self, kind: TimerKind, fx: &mut Effects) {
        match kind {
            TimerKind::Heartbeat => self.on_heartbeat_tick(fx),
            TimerKind::RtProbeTick => self.on_rt_probe_tick(fx),
            TimerKind::RtMaintenance => self.on_rt_maintenance(fx),
            TimerKind::SelfTune => self.on_self_tune(fx),
            TimerKind::ProbeTimeout { target, attempt } => {
                self.on_probe_timeout(target, attempt, fx)
            }
            TimerKind::AckTimeout { lookup, attempt } => self.on_ack_timeout(lookup, attempt, fx),
            TimerKind::DistanceProbeNext { target } => {
                if let Some(nonce) = self.measurer.next_probe(target, self.now_us) {
                    self.send(target, Message::DistanceProbe { nonce }, fx);
                    fx.timer(
                        self.cfg.t_o_us,
                        TimerKind::DistanceProbeTimeout { target, nonce },
                    );
                }
            }
            TimerKind::DistanceProbeTimeout { target, nonce } => {
                self.on_distance_timeout(target, nonce, fx)
            }
            TimerKind::JoinRetry => {
                if !self.active {
                    if let Some(seed) = self.join_seed {
                        // Prefer whatever the nearest-neighbour phase found.
                        let to = self.nn.as_ref().map(|n| n.current()).unwrap_or(seed);
                        self.nn = None;
                        self.send_join_request(to, fx);
                        fx.timer(self.cfg.join_retry_us, TimerKind::JoinRetry);
                    }
                }
            }
        }
    }

    fn on_heartbeat_tick(&mut self, fx: &mut Effects) {
        if !self.active {
            fx.timer(self.cfg.t_ls_us, TimerKind::Heartbeat);
            return;
        }
        // Heartbeat to the left neighbour. Suppression *postpones* the
        // heartbeat to `last_sent + Tls` rather than skipping a whole period:
        // skipping would stretch the neighbour's inter-reception gap to
        // almost 2·Tls and trip its Tls+To silence check spuriously.
        let mut next_tick = self.cfg.t_ls_us;
        if let Some(left) = self.ls.left_neighbor() {
            let due = if self.cfg.probe_suppression {
                self.last_sent
                    .get(&left)
                    .map(|&t| t.saturating_add(self.cfg.t_ls_us))
                    .unwrap_or(self.now_us)
            } else {
                self.now_us
            };
            if self.now_us >= due {
                let hint = self.hint();
                self.send(left, Message::Heartbeat { trt_hint: hint }, fx);
            } else {
                next_tick = (due - self.now_us).min(self.cfg.t_ls_us);
            }
        }
        fx.timer(next_tick, TimerKind::Heartbeat);
        if let Some(right) = self.ls.right_neighbor() {
            let last = self.last_heard.get(&right).copied().unwrap_or(0);
            if self.now_us.saturating_sub(last) > self.cfg.t_ls_us + self.cfg.t_o_us {
                // SUSPECT-FAULTY (Fig. 2): silence from the right neighbour.
                if self.probe(right, ProbeKind::LeafSet, true, fx) {
                    self.obs.cause(ProbeCause::Suspect);
                }
            }
        }
    }

    fn on_rt_probe_tick(&mut self, fx: &mut Effects) {
        if !self.cfg.active_rt_probing {
            return;
        }
        fx.timer(self.t_rt_us, TimerKind::RtProbeTick);
        if !self.active {
            return;
        }
        let targets: Vec<NodeId> = self.rt.entries().map(|e| e.id).collect();
        for j in targets {
            let suppressed = self.cfg.probe_suppression
                && self
                    .last_heard
                    .get(&j)
                    .is_some_and(|&t| self.now_us.saturating_sub(t) < self.t_rt_us);
            if !suppressed {
                self.probe(j, ProbeKind::Liveness, true, fx);
            }
        }
    }

    fn on_rt_maintenance(&mut self, fx: &mut Effects) {
        fx.timer(self.cfg.rt_maintenance_period_us, TimerKind::RtMaintenance);
        if !self.active {
            return;
        }
        for r in self.rt.occupied_rows() {
            let ids = self.rt.row_ids(r);
            let j = ids[self.rng.gen_range(0..ids.len())];
            self.send(j, Message::RtRowRequest { row: r }, fx);
        }
    }

    fn on_self_tune(&mut self, fx: &mut Effects) {
        fx.timer(self.cfg.self_tune_period_us, TimerKind::SelfTune);
        if !self.active || !self.cfg.self_tuning {
            return;
        }
        let state = self.routing_state_ids();
        let m = state.len();
        self.t_rt_us = self
            .tuner
            .recompute(&self.cfg, self.now_us, m, &self.ls, &state)
            .max(self.cfg.t_rt_floor_us());
        self.obs.t_rt(self.t_rt_us);
        // Opportunistic pruning of per-peer maps.
        let keep: FxHashSet<NodeId> = state.into_iter().collect();
        let now = self.now_us;
        let horizon = 4 * self.cfg.t_ls_us;
        self.last_heard
            .retain(|n, &mut t| keep.contains(n) || now.saturating_sub(t) < horizon);
        self.last_sent
            .retain(|n, &mut t| keep.contains(n) || now.saturating_sub(t) < horizon);
        self.repair_paced
            .retain(|_, &mut t| now.saturating_sub(t) < horizon);
        let dist_horizon = self.cfg.rt_maintenance_period_us;
        self.known_dists
            .retain(|n, &mut (_, at)| keep.contains(n) || now.saturating_sub(at) < dist_horizon);
    }

    fn on_probe_timeout(&mut self, target: NodeId, attempt: u32, fx: &mut Effects) {
        match self
            .probes
            .on_timeout(target, attempt, self.cfg.max_probe_retries, self.now_us)
        {
            TimeoutVerdict::Stale => {}
            TimeoutVerdict::Retry(next_attempt) => {
                let kind = self
                    .probes
                    .get(target)
                    .map(|s| s.kind)
                    .unwrap_or(ProbeKind::Liveness);
                self.send_probe_message(target, kind, fx);
                fx.timer(
                    self.cfg.t_o_us,
                    TimerKind::ProbeTimeout {
                        target,
                        attempt: next_attempt,
                    },
                );
            }
            TimeoutVerdict::Exhausted(st) => {
                self.mark_faulty(target, st.announce, fx);
                if st.kind == ProbeKind::LeafSet {
                    self.done_probing(fx);
                }
            }
        }
    }

    // ----- lookups and per-hop acks ----------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn route_lookup(
        &mut self,
        id: LookupId,
        key: Key,
        payload: Payload,
        hops: u32,
        issued_at_us: u64,
        excluded: Vec<NodeId>,
        attempt: u32,
        reroutes: u32,
        wants_acks: bool,
        is_retransmit: bool,
        fx: &mut Effects,
    ) {
        let excl = self.excluded_set(&excluded);
        let (next, empty_slot) = match route(&self.rt, &self.ls, key, &|n| excl.contains(&n)) {
            NextHop::Local => {
                if !self.active || !self.ls.covers(key) {
                    let reason = DropReason::NoRoute;
                    let ev = self.hop_ev(
                        id,
                        HopKind::Drop,
                        NO_PEER,
                        hops,
                        attempt,
                        0,
                        reason.as_str(),
                    );
                    self.obs.drop_event(reason, ev);
                    fx.actions.push(Action::LookupDropped { id, reason });
                    return;
                }
                let root = self.ls.closest_to(key, |_| false);
                if root == self.id {
                    if self.obs.sampled(id) {
                        let ev = self.hop_ev(id, HopKind::Deliver, NO_PEER, hops, attempt, 0, "");
                        self.obs.hop(ev);
                    }
                    fx.actions.push(Action::Deliver {
                        id,
                        key,
                        payload,
                        hops,
                        issued_at_us,
                        replica_set: self.replica_set(key),
                    });
                    return;
                }
                // A strictly closer leaf-set member exists but is excluded,
                // i.e. merely *suspected* — not confirmed dead (confirmed
                // failures leave the leaf set). Delivering here would be
                // speculative and risks an incorrect delivery whenever the
                // suspect is alive but silent (e.g. a transient outage).
                // Forward to the suspect root instead: either it answers
                // (clearing the suspicion) or its failure probe exhausts and
                // mark_faulty re-routes the lookup against the repaired set.
                (root, None)
            }
            NextHop::Forward { next, empty_slot } => (next, empty_slot),
        };
        self.send(
            next,
            Message::Lookup {
                id,
                key,
                payload,
                hops: hops + 1,
                issued_at_us,
                is_retransmit,
                wants_acks,
            },
            fx,
        );
        if self.cfg.per_hop_acks && wants_acks {
            let rto = self
                .rtos
                .rto_us(next, self.cfg.ack_rto_min_us, self.cfg.ack_rto_initial_us);
            self.obs.ack_rto(rto);
            if self.obs.sampled(id) {
                let ev = self.hop_ev(id, HopKind::Forward, next.0, hops + 1, attempt, rto, "");
                self.obs.hop(ev);
            }
            self.pending.insert(
                id,
                PendingLookup {
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    excluded,
                    attempt,
                    reroutes,
                    next,
                    sent_at_us: self.now_us,
                },
            );
            fx.timer(
                rto,
                TimerKind::AckTimeout {
                    lookup: id,
                    attempt,
                },
            );
        }
        if let Some((row, col)) = empty_slot {
            // Passive routing-table repair (§2).
            self.send(next, Message::RtSlotRequest { row, col }, fx);
        }
    }

    fn on_ack_timeout(&mut self, id: LookupId, attempt: u32, fx: &mut Effects) {
        let Some(p) = self.pending.get(&id) else {
            return;
        };
        if p.attempt != attempt {
            return; // stale timer from an earlier attempt
        }
        let p = self.pending.remove(&id).unwrap();
        let missed = p.next;
        // Probe the silent node; it is excluded from routing until it
        // answers, but only marked faulty if probing exhausts (§3.2).
        let kind = if self.ls.contains(missed) {
            ProbeKind::LeafSet
        } else {
            ProbeKind::Liveness
        };
        if self.probe(missed, kind, true, fx) {
            self.obs.cause(ProbeCause::AckSuspect);
        }
        // Final hop: `missed` is (still) the key's root from our view. There
        // is no alternative node that could correctly deliver, so retransmit
        // to the same root with a backed-off timeout; the probe decides its
        // fate (a live-but-lossy root gets the copy in ~RTO, a dead one is
        // removed from the leaf set within the probe budget, after which
        // routing resolves against the repaired state).
        let is_final_hop = !self.failed.contains(&missed)
            && self.ls.contains(missed)
            && self.ls.covers(p.key)
            && self.ls.closest_to(p.key, |_| false) == missed;
        if is_final_hop {
            let attempt = p.attempt + 1;
            // Retransmission budget: with the paper's default, a few quick
            // retries to the same root (an incorrect delivery then requires
            // several independent losses in a row); with the
            // consistency-over-latency variant, keep retrying until the
            // root's failure probe resolves (mark_faulty re-routes stranded
            // lookups the moment the root is declared dead). The short
            // budget is only safe when excluding the root leaves an
            // alternative candidate; if the reroute would fall back to a
            // speculative self-delivery (every closer member suspected, none
            // confirmed dead), use the extended budget so the backed-off
            // retransmissions outlast the probe verdict.
            let reroute_self_delivers = {
                let mut excl = self.excluded_set(&p.excluded);
                excl.insert(missed);
                matches!(
                    route(&self.rt, &self.ls, p.key, &|n| excl.contains(&n)),
                    NextHop::Local
                )
            };
            let budget = if self.cfg.exclude_root_on_ack_timeout && !reroute_self_delivers {
                self.cfg.root_retx_attempts
            } else {
                4 + 3 * (self.cfg.max_probe_retries + 1)
            };
            if attempt <= budget {
                self.obs.final_retx();
                self.obs.retx_attempt(attempt);
                let rto = self
                    .rtos
                    .rto_us(missed, self.cfg.ack_rto_min_us, self.cfg.ack_rto_initial_us)
                    .saturating_mul(1 << attempt.min(3));
                let rto = if attempt >= 4 {
                    rto.max(self.cfg.t_o_us / 3)
                } else {
                    rto
                };
                if self.obs.sampled(id) {
                    let ev = self.hop_ev(
                        id,
                        HopKind::Retransmit,
                        missed.0,
                        p.hops + 1,
                        attempt,
                        rto,
                        "final-hop",
                    );
                    self.obs.hop(ev);
                }
                self.send(
                    missed,
                    Message::Lookup {
                        id,
                        key: p.key,
                        payload: p.payload,
                        hops: p.hops + 1,
                        issued_at_us: p.issued_at_us,
                        is_retransmit: true,
                        wants_acks: true,
                    },
                    fx,
                );
                self.pending.insert(
                    id,
                    PendingLookup {
                        attempt,
                        sent_at_us: self.now_us,
                        ..p
                    },
                );
                fx.timer(
                    rto,
                    TimerKind::AckTimeout {
                        lookup: id,
                        attempt,
                    },
                );
                return;
            }
            if !self.cfg.exclude_root_on_ack_timeout {
                let reason = DropReason::TooManyReroutes;
                let ev = self.hop_ev(
                    id,
                    HopKind::Drop,
                    missed.0,
                    p.hops,
                    p.attempt,
                    0,
                    reason.as_str(),
                );
                self.obs.drop_event(reason, ev);
                fx.actions.push(Action::LookupDropped { id, reason });
                return;
            }
            // Budget exhausted: fall through to exclude the root and deliver
            // at the now-closest node.
        }
        // Intermediate hop (or the root is already gone): exclude the silent
        // node and exploit a redundant route. Only genuine reroutes count
        // against the budget — same-root retransmissions above must not
        // starve a lookup of its redundant routes.
        if p.reroutes + 1 > self.cfg.ack_max_reroutes {
            let reason = DropReason::TooManyReroutes;
            let ev = self.hop_ev(
                id,
                HopKind::Drop,
                missed.0,
                p.hops,
                p.attempt,
                0,
                reason.as_str(),
            );
            self.obs.drop_event(reason, ev);
            fx.actions.push(Action::LookupDropped { id, reason });
            return;
        }
        self.obs.reroute();
        if self.obs.sampled(id) {
            let ev = self.hop_ev(id, HopKind::Exclude, missed.0, p.hops, p.attempt, 0, "");
            self.obs.hop(ev);
        }
        let mut excluded = p.excluded;
        self.suspected.insert(missed);
        if !excluded.contains(&missed) {
            excluded.push(missed);
        }
        self.route_lookup(
            id,
            p.key,
            p.payload,
            p.hops,
            p.issued_at_us,
            excluded,
            p.attempt + 1,
            p.reroutes + 1,
            true,
            true,
            fx,
        );
    }

    // ----- distance measurement & PNS --------------------------------------

    fn start_measurement(&mut self, target: NodeId, purpose: MeasurePurpose, fx: &mut Effects) {
        if target == self.id
            || self.failed.contains(&target)
            || self.measurer.measuring(target)
            || self.measurer.len() >= MAX_CONCURRENT_MEASUREMENTS
        {
            return;
        }
        let (want, timeout, retry) = match purpose {
            MeasurePurpose::NearestNeighbor => {
                let want = if self.cfg.single_probe_nearest_neighbor {
                    1
                } else {
                    self.cfg.distance_probe_count
                };
                (want, self.cfg.nn_probe_timeout_us, false)
            }
            _ => (self.cfg.distance_probe_count, self.cfg.t_o_us, true),
        };
        if let Some(nonce) =
            self.measurer
                .start_with_retry(target, purpose, want, self.now_us, retry)
        {
            self.send(target, Message::DistanceProbe { nonce }, fx);
            fx.timer(timeout, TimerKind::DistanceProbeTimeout { target, nonce });
        }
    }

    fn on_distance_reply(&mut self, from: NodeId, nonce: u64, fx: &mut Effects) {
        match self.measurer.on_reply(from, nonce, self.now_us) {
            ReplyOutcome::Ignored => {}
            ReplyOutcome::NeedMore => {
                fx.timer(
                    self.cfg.distance_probe_spacing_us,
                    TimerKind::DistanceProbeNext { target: from },
                );
            }
            ReplyOutcome::Done(purpose, rtt) => self.finish_measurement(from, purpose, rtt, fx),
        }
    }

    fn on_distance_timeout(&mut self, target: NodeId, nonce: u64, fx: &mut Effects) {
        match self.measurer.on_timeout(target, nonce, self.now_us) {
            MeasureTimeout::Stale => {}
            MeasureTimeout::Retry(new_nonce) => {
                self.send(target, Message::DistanceProbe { nonce: new_nonce }, fx);
                fx.timer(
                    self.cfg.t_o_us,
                    TimerKind::DistanceProbeTimeout {
                        target,
                        nonce: new_nonce,
                    },
                );
            }
            MeasureTimeout::Abandon(purpose, Some(rtt)) => {
                self.finish_measurement(target, purpose, rtt, fx)
            }
            MeasureTimeout::Abandon(purpose, None) => {
                if purpose == MeasurePurpose::NearestNeighbor {
                    self.nn_feed_distance(target, u64::MAX, fx);
                }
            }
        }
    }

    fn finish_measurement(
        &mut self,
        target: NodeId,
        purpose: MeasurePurpose,
        rtt: u64,
        fx: &mut Effects,
    ) {
        self.known_dists.insert(target, (rtt, self.now_us));
        self.obs.rtt_sample(rtt);
        self.rtos.update(target, rtt);
        match purpose {
            MeasurePurpose::NearestNeighbor => self.nn_feed_distance(target, rtt, fx),
            MeasurePurpose::ConsiderRt => {
                self.obs.pns_measured();
                let outcome = self.rt.offer(target, rtt);
                use crate::routing_table::InsertOutcome::*;
                if matches!(outcome, Replaced(_)) {
                    self.obs.pns_replaced();
                }
                let accepted = matches!(outcome, InsertedEmpty | Replaced(_) | Refreshed);
                if accepted && self.cfg.symmetric_distance_probes {
                    self.send(target, Message::DistanceReport { rtt_us: rtt }, fx);
                }
            }
        }
    }

    fn consider_rt_candidate(&mut self, n: NodeId, fx: &mut Effects) {
        if n == self.id || self.failed.contains(&n) || self.rt.contains(n) {
            return;
        }
        // A fresh cached measurement answers without new probes (this also
        // stops rejected candidates from being re-measured at every
        // maintenance round).
        if let Some(&(d, at)) = self.known_dists.get(&n) {
            if self.now_us.saturating_sub(at) < self.cfg.rt_maintenance_period_us {
                self.rt.offer(n, d);
                return;
            }
        }
        // Only measure when even a 0-distance candidate could change the
        // table (i.e. the slot is empty or occupied).
        if self.rt.would_accept(n, 0) {
            self.start_measurement(n, MeasurePurpose::ConsiderRt, fx);
        }
    }

    // ----- nearest-neighbour discovery --------------------------------------

    fn on_nn_candidates(&mut self, row: Option<usize>, nodes: Vec<NodeId>, fx: &mut Effects) {
        let Some(nn) = self.nn.as_mut() else {
            return;
        };
        if let Some(r) = row {
            nn.note_row(r);
        }
        let step = nn.on_candidates(self.id, &nodes);
        self.nn_execute(step, fx);
    }

    fn nn_feed_distance(&mut self, target: NodeId, dist: u64, fx: &mut Effects) {
        let Some(nn) = self.nn.as_mut() else {
            return;
        };
        let step = nn.on_distance(target, dist, usize::MAX);
        self.nn_execute(step, fx);
    }

    fn nn_execute(&mut self, step: NnStep, fx: &mut Effects) {
        match step {
            NnStep::Wait => {}
            NnStep::Measure(targets) => {
                let mut unmeasurable = Vec::new();
                for t in targets {
                    self.start_measurement(t, MeasurePurpose::NearestNeighbor, fx);
                    if !self.measurer.measuring(t) {
                        // Could not start (budget/failed); count as
                        // unreachable so discovery still terminates.
                        unmeasurable.push(t);
                    }
                }
                for t in unmeasurable {
                    self.nn_feed_distance(t, u64::MAX, fx);
                }
            }
            NnStep::AskLeafSet(to) => self.send(to, Message::NnLeafSetRequest, fx),
            NnStep::AskRow(to, row) => self.send(to, Message::NnRowRequest { row }, fx),
            NnStep::Finished(seed) => {
                // Seed the routing table distances with everything measured.
                if let Some(nn) = self.nn.take() {
                    for (&n, &d) in nn.measured() {
                        self.known_dists.insert(n, (d, self.now_us));
                    }
                }
                self.send_join_request(seed, fx);
            }
        }
    }

    // ----- helpers ----------------------------------------------------------

    fn send(&mut self, to: NodeId, msg: Message, fx: &mut Effects) {
        debug_assert_ne!(to, self.id, "node must not message itself");
        self.last_sent.insert(to, self.now_us);
        fx.send(to, msg);
    }

    /// The leaf-set members closest to `key` (ring-distance order, up to 8),
    /// for application-level replication.
    fn replica_set(&self, key: Key) -> Vec<NodeId> {
        let mut members = self.ls.members();
        members.sort_by_key(|m| (m.ring_dist(key), m.0));
        members.truncate(8);
        members
    }

    fn hint(&self) -> Option<u64> {
        if self.cfg.self_tuning && self.active {
            Some(self.tuner.local_t_rt_us())
        } else {
            None
        }
    }

    fn note_hint(&mut self, from: NodeId, hint: Option<u64>) {
        if let Some(h) = hint {
            self.tuner.note_hint(from, h);
        }
    }

    fn note_seen(&mut self, id: LookupId) {
        if self.seen.insert(id) {
            self.seen_order.push_back(id);
            while self.seen_order.len() > SEEN_CAP {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    fn excluded_set(&self, extra: &[NodeId]) -> FxHashSet<NodeId> {
        let mut s: FxHashSet<NodeId> = self.suspected.clone();
        s.extend(extra.iter().copied());
        s
    }

    /// All distinct nodes currently in the routing state (routing table and
    /// leaf set).
    pub fn routing_state_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.rt.len() + 2 * self.cfg.leaf_half());
        ids.extend(self.rt.entries().map(|e| e.id));
        // Routing-table ids are distinct, so only leaf-set members need the
        // (constant-time, digit-indexed) duplicate check.
        for m in self.ls.iter() {
            if !self.rt.contains(m) {
                ids.push(m);
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            nearest_neighbor_join: false,
            ..Config::default()
        }
    }

    /// Delivers every queued send between two nodes until quiescence,
    /// advancing a fake clock and firing timers is out of scope here; the
    /// full asynchronous behaviour is exercised by the simulator tests.
    fn pump(
        nodes: &mut [Node],
        mut queue: Vec<(NodeId, NodeId, Message)>,
        now: u64,
    ) -> Vec<Action> {
        let mut others = Vec::new();
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 10_000, "message storm");
            let Some(node) = nodes.iter_mut().find(|n| n.id() == to) else {
                continue;
            };
            let mut fx = Effects::new();
            node.handle(now, Event::Receive { from, msg }, &mut fx);
            for a in fx.drain() {
                match a {
                    Action::Send { to: t, msg } => queue.push((to, t, msg)),
                    other => others.push(other),
                }
            }
        }
        others
    }

    fn start_join(
        node: &mut Node,
        seed: Option<NodeId>,
        now: u64,
    ) -> Vec<(NodeId, NodeId, Message)> {
        let mut fx = Effects::new();
        node.handle(now, Event::Join { seed }, &mut fx);
        let id = node.id();
        fx.drain()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((id, to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn bootstrap_node_activates_immediately() {
        let mut n = Node::new(Id(1), cfg());
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        assert!(n.is_active());
        assert!(fx.drain().iter().any(|a| matches!(a, Action::BecameActive)));
    }

    #[test]
    fn two_node_overlay_forms_and_routes() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut b = Node::new(b_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let q = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        let actions = pump(&mut nodes, q, 2);
        assert!(actions.iter().any(|a| matches!(a, Action::BecameActive)));
        let (a, b) = (&nodes[0], &nodes[1]);
        assert!(a.is_active() && b.is_active());
        assert!(a.leaf_set().contains(b_id));
        assert!(b.leaf_set().contains(a_id));

        // A lookup for a key near b delivered at b.
        let key = Id((200 << 100) + 5);
        let mut fx = Effects::new();
        nodes[0].handle(10, Event::Lookup { key, payload: 7 }, &mut fx);
        let sends: Vec<(NodeId, NodeId, Message)> = fx
            .drain()
            .into_iter()
            .filter_map(|act| match act {
                Action::Send { to, msg } => Some((a_id, to, msg)),
                _ => None,
            })
            .collect();
        assert!(!sends.is_empty());
        let actions = pump(&mut nodes, sends, 11);
        let delivered = actions
            .iter()
            .any(|act| matches!(act, Action::Deliver { key: k, payload: 7, .. } if *k == key));
        assert!(delivered, "lookup must be delivered at b; got {actions:?}");
    }

    #[test]
    fn lookup_while_joining_is_buffered_and_flushed() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(b_id, cfg());
        // Issue a lookup before b joins: it must not be lost or delivered.
        let mut fx = Effects::new();
        b.handle(
            0,
            Event::Lookup {
                key: Id(5),
                payload: 1,
            },
            &mut fx,
        );
        assert!(
            fx.drain().is_empty(),
            "inactive node neither routes nor delivers"
        );
        let q = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        let actions = pump(&mut nodes, q, 2);
        // After activation the buffered lookup is routed; key 5's root is a
        // (10<<100) or b — either delivery or a forward happened.
        assert!(
            actions
                .iter()
                .any(|act| matches!(act, Action::Deliver { .. } | Action::BecameActive)),
            "buffered lookup processed after activation"
        );
    }

    #[test]
    fn probe_timeout_marks_faulty_and_repairs() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let c_id = Id(300 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let qb = start_join(&mut Node::new(b_id, cfg()), Some(a_id), 1);
        // Recreate b properly: we need the same instance used in pump.
        let mut b = Node::new(b_id, cfg());
        let qb2 = start_join(&mut b, Some(a_id), 1);
        drop(qb);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb2, 2);
        let mut c = Node::new(c_id, cfg());
        let qc = start_join(&mut c, Some(a_id), 3);
        nodes.push(c);
        pump(&mut nodes, qc, 4);
        assert!(nodes.iter().all(|n| n.is_active()));
        // Now kill b: a probes it (suspect), probe times out 3 times.
        let a = &mut nodes[0];
        let mut fx = Effects::new();
        // Force suspicion via probe.
        a.probe(b_id, ProbeKind::LeafSet, true, &mut fx);
        let _ = fx.drain();
        let mut now = 10_000_000;
        for attempt in 0..3 {
            let mut fx = Effects::new();
            a.handle(
                now,
                Event::Timer(TimerKind::ProbeTimeout {
                    target: b_id,
                    attempt,
                }),
                &mut fx,
            );
            now += 3_000_000;
            let _ = fx.drain();
        }
        assert!(a.failed.contains(&b_id));
        assert!(!a.leaf_set().contains(b_id));
        assert!(!a.routing_table().contains(b_id));
    }

    #[test]
    fn ack_timeout_reroutes_and_suspects() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let c_id = Id(210 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(b_id, cfg());
        let qb = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb, 2);
        let mut c = Node::new(c_id, cfg());
        let qc = start_join(&mut c, Some(a_id), 3);
        nodes.push(c);
        pump(&mut nodes, qc, 4);
        // a sends a lookup rooted at b; b never acks (we just don't deliver
        // the message); the ack timeout must reroute and suspect b.
        let key = Id((200 << 100) + 1);
        let mut fx = Effects::new();
        nodes[0].handle(100, Event::Lookup { key, payload: 9 }, &mut fx);
        let mut lookup_id = None;
        for act in fx.drain() {
            if let Action::Send {
                to,
                msg: Message::Lookup { id, .. },
            } = act
            {
                assert_eq!(to, b_id);
                lookup_id = Some(id);
            }
        }
        let id = lookup_id.expect("lookup forwarded to b");
        let retx_budget = nodes[0].cfg.root_retx_attempts;
        // b is the key's root, so the first timeouts retransmit to b itself.
        let mut now = 1_000_000;
        for attempt in 0..retx_budget {
            let mut fx = Effects::new();
            nodes[0].handle(
                now,
                Event::Timer(TimerKind::AckTimeout {
                    lookup: id,
                    attempt,
                }),
                &mut fx,
            );
            let retx = fx.drain().iter().any(|a| {
                matches!(
                    a,
                    Action::Send {
                        to,
                        msg: Message::Lookup {
                            is_retransmit: true,
                            ..
                        },
                    } if *to == b_id
                )
            });
            assert!(retx, "attempt {attempt} must retransmit to the root");
            now += 1_000_000;
        }
        // Budget exhausted: the root is excluded and the lookup resolves at
        // the now-closest node.
        let mut fx = Effects::new();
        nodes[0].handle(
            now,
            Event::Timer(TimerKind::AckTimeout {
                lookup: id,
                attempt: retx_budget,
            }),
            &mut fx,
        );
        let actions = fx.drain();
        assert!(nodes[0].suspected.contains(&b_id));
        let resolved = actions.iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    msg: Message::Lookup {
                        is_retransmit: true,
                        ..
                    },
                    ..
                }
            ) || matches!(a, Action::Deliver { .. })
        });
        assert!(resolved, "lookup resolved after budget: {actions:?}");
    }

    #[test]
    fn heartbeat_goes_to_left_neighbor_only() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let c_id = Id(300 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(b_id, cfg());
        let qb = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb, 2);
        let mut c = Node::new(c_id, cfg());
        let qc = start_join(&mut c, Some(a_id), 3);
        nodes.push(c);
        pump(&mut nodes, qc, 4);
        // Fire b's heartbeat far in the future (no suppression from recent
        // traffic).
        let b = &mut nodes[1];
        let left = b.leaf_set().left_neighbor().unwrap();
        let mut fx = Effects::new();
        b.handle(10_000_000_000, Event::Timer(TimerKind::Heartbeat), &mut fx);
        let hb_targets: Vec<NodeId> = fx
            .drain()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: Message::Heartbeat { .. },
                } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(hb_targets, vec![left], "single heartbeat to left neighbour");
    }

    #[test]
    fn suppression_skips_heartbeat_after_recent_send() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(b_id, cfg());
        let qb = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb, 2);
        let b = &mut nodes[1];
        let left = b.leaf_set().left_neighbor().unwrap();
        // Pretend b just sent something to its left neighbour.
        b.last_sent.insert(left, 999_000_000);
        let mut fx = Effects::new();
        b.handle(1_000_000_000, Event::Timer(TimerKind::Heartbeat), &mut fx);
        let heartbeats = fx
            .drain()
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Heartbeat { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(heartbeats, 0, "recent traffic suppresses the heartbeat");
    }

    #[test]
    fn rt_probe_tick_probes_unheard_entries() {
        let a_id = Id(10 << 100);
        let b_id = Id(200 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(b_id, cfg());
        let qb = start_join(&mut b, Some(a_id), 1);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb, 2);
        let a = &mut nodes[0];
        assert!(a.routing_table().contains(b_id));
        let mut fx = Effects::new();
        a.handle(
            10_000_000_000,
            Event::Timer(TimerKind::RtProbeTick),
            &mut fx,
        );
        let probed = fx.drain().iter().any(|act| {
            matches!(
                act,
                Action::Send {
                    to,
                    msg: Message::RtProbe { .. }
                } if *to == b_id
            )
        });
        assert!(probed, "stale routing-table entry gets a liveness probe");
    }

    #[test]
    fn dead_nodes_are_not_propagated_through_gossip() {
        // A node learns about a candidate via RtRowAnnounce; it must measure
        // (direct contact) before inserting, so a dead candidate never enters
        // the table.
        let a_id = Id(10 << 100);
        let dead = Id(400 << 100);
        let mut a = Node::new(a_id, cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut fx = Effects::new();
        a.handle(
            1,
            Event::Receive {
                from: Id(1),
                msg: Message::RtRowAnnounce {
                    row: 0,
                    entries: vec![dead],
                },
            },
            &mut fx,
        );
        assert!(
            !a.routing_table().contains(dead),
            "gossiped candidate only enters after a successful distance probe"
        );
        // It must have started a distance measurement instead.
        let probing = fx.drain().iter().any(|act| {
            matches!(
                act,
                Action::Send {
                    to,
                    msg: Message::DistanceProbe { .. }
                } if *to == dead
            )
        });
        assert!(probing);
    }

    #[test]
    fn self_tune_updates_period() {
        let mut a = Node::new(Id(1), cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let before = a.t_rt_us();
        let mut fx = Effects::new();
        a.handle(60_000_000, Event::Timer(TimerKind::SelfTune), &mut fx);
        // Singleton overlay: no failures, N=1 → probing effectively off.
        assert!(a.t_rt_us() >= before);
    }

    /// Builds a small active overlay of three nodes for handler tests.
    fn trio() -> (Vec<Node>, [NodeId; 3]) {
        let ids = [Id(10 << 100), Id(200 << 100), Id(300 << 100)];
        let mut a = Node::new(ids[0], cfg());
        let mut fx = Effects::new();
        a.handle(0, Event::Join { seed: None }, &mut fx);
        let mut b = Node::new(ids[1], cfg());
        let qb = start_join(&mut b, Some(ids[0]), 1);
        let mut nodes = vec![a, b];
        pump(&mut nodes, qb, 2);
        let mut c = Node::new(ids[2], cfg());
        let qc = start_join(&mut c, Some(ids[0]), 3);
        nodes.push(c);
        pump(&mut nodes, qc, 4);
        assert!(nodes.iter().all(|n| n.is_active()));
        (nodes, ids)
    }

    #[test]
    fn rt_row_request_returns_the_row() {
        let (mut nodes, ids) = trio();
        let mut fx = Effects::new();
        nodes[0].handle(
            100,
            Event::Receive {
                from: ids[1],
                msg: Message::RtRowRequest { row: 0 },
            },
            &mut fx,
        );
        let reply = fx.drain().into_iter().find_map(|a| match a {
            Action::Send {
                to,
                msg: Message::RtRowReply { row, entries },
            } if to == ids[1] => Some((row, entries)),
            _ => None,
        });
        let (row, entries) = reply.expect("row reply sent");
        assert_eq!(row, 0);
        assert_eq!(entries, nodes[0].routing_table().row_ids(0));
    }

    #[test]
    fn join_request_contributes_rows_and_self() {
        let (mut nodes, ids) = trio();
        // A brand-new joiner's request through node 0.
        let joiner = Id(250 << 100);
        let mut fx = Effects::new();
        nodes[0].handle(
            100,
            Event::Receive {
                from: joiner,
                msg: Message::JoinRequest {
                    joiner,
                    rows: Vec::new(),
                    hops: 0,
                },
            },
            &mut fx,
        );
        let mut saw = false;
        for a in fx.drain() {
            match a {
                Action::Send {
                    msg: Message::JoinReply { rows, leaf_set },
                    to,
                } => {
                    assert_eq!(to, joiner);
                    assert!(leaf_set.contains(&ids[0]), "root includes itself");
                    assert!(rows.iter().flatten().any(|&n| n == ids[0]));
                    saw = true;
                }
                Action::Send {
                    msg: Message::JoinRequest { rows, .. },
                    ..
                } => {
                    assert!(rows.iter().flatten().any(|&n| n == ids[0]));
                    saw = true;
                }
                _ => {}
            }
        }
        assert!(saw, "join request handled");
    }

    #[test]
    fn distance_report_inserts_into_routing_table() {
        let (mut nodes, _ids) = trio();
        let stranger = Id(0xdead << 100);
        let mut fx = Effects::new();
        nodes[0].handle(
            100,
            Event::Receive {
                from: stranger,
                msg: Message::DistanceReport { rtt_us: 1234 },
            },
            &mut fx,
        );
        let e = nodes[0]
            .routing_table()
            .entry_of(stranger)
            .expect("symmetric report inserts the sender");
        assert_eq!(e.distance_us, 1234);
    }

    #[test]
    fn duplicate_lookups_are_acked_but_not_reprocessed() {
        let (mut nodes, ids) = trio();
        let id = LookupId {
            src: ids[1],
            seq: 9,
        };
        let lookup = Message::Lookup {
            id,
            key: Id(5),
            payload: 0,
            hops: 1,
            issued_at_us: 50,
            is_retransmit: false,
            wants_acks: true,
        };
        let mut fx = Effects::new();
        nodes[0].handle(
            100,
            Event::Receive {
                from: ids[1],
                msg: lookup.clone(),
            },
            &mut fx,
        );
        let first: Vec<Action> = fx.drain();
        assert!(first.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Ack { .. },
                ..
            }
        )));
        let mut fx = Effects::new();
        nodes[0].handle(
            200,
            Event::Receive {
                from: ids[2],
                msg: lookup,
            },
            &mut fx,
        );
        let second = fx.drain();
        assert!(
            second.iter().all(|a| matches!(
                a,
                Action::Send {
                    msg: Message::Ack { .. },
                    ..
                }
            )),
            "duplicate only acked, got {second:?}"
        );
    }

    #[test]
    fn join_buffer_overflow_reports_drops() {
        let mut cfg2 = cfg();
        cfg2.join_buffer_cap = 2;
        let mut n = Node::new(Id(5), cfg2);
        // Not joined yet: local lookups buffer; the third overflows.
        let mut drops = 0;
        for i in 0..3 {
            let mut fx = Effects::new();
            n.handle(
                i,
                Event::Lookup {
                    key: Id(i as u128),
                    payload: i,
                },
                &mut fx,
            );
            drops += fx
                .drain()
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::LookupDropped {
                            reason: DropReason::BufferOverflow,
                            ..
                        }
                    )
                })
                .count();
        }
        assert_eq!(drops, 1);
    }

    #[test]
    fn heartbeat_silence_triggers_suspect_probe() {
        let (mut nodes, _) = trio();
        let b = &mut nodes[1];
        let right = b.leaf_set().right_neighbor().unwrap();
        // Pretend we have not heard from the right neighbour for a long time.
        b.last_heard.insert(right, 0);
        let mut fx = Effects::new();
        b.handle(100_000_000, Event::Timer(TimerKind::Heartbeat), &mut fx);
        let probed = fx.drain().iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    to,
                    msg: Message::LsProbe { .. }
                } if *to == right
            )
        });
        assert!(probed, "silent right neighbour must be probed");
    }

    #[test]
    fn leave_announces_and_receivers_remove_instantly() {
        let (mut nodes, ids) = trio();
        // Node 1 leaves gracefully.
        let mut fx = Effects::new();
        nodes[1].handle(100, Event::Leave, &mut fx);
        let targets: Vec<NodeId> = fx
            .drain()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: Message::Leaving,
                } => Some(to),
                _ => None,
            })
            .collect();
        assert!(targets.contains(&ids[0]) && targets.contains(&ids[2]));
        assert!(!nodes[1].is_active());
        // Node 0 receives the announcement: instant removal, no probes to
        // the leaver.
        let mut fx = Effects::new();
        nodes[0].handle(
            200,
            Event::Receive {
                from: ids[1],
                msg: Message::Leaving,
            },
            &mut fx,
        );
        assert!(!nodes[0].leaf_set().contains(ids[1]));
        assert!(!nodes[0].routing_table().contains(ids[1]));
        let probes_to_leaver = fx
            .drain()
            .iter()
            .filter(|a| matches!(a, Action::Send { to, .. } if *to == ids[1]))
            .count();
        assert_eq!(probes_to_leaver, 0, "no probes to an announced leaver");
    }

    #[test]
    fn inactive_node_replies_to_nn_requests() {
        let mut n = Node::new(Id(5), cfg());
        // Never joined; a joiner may still ask for its (empty) leaf set.
        let mut fx = Effects::new();
        n.handle(
            10,
            Event::Receive {
                from: Id(9),
                msg: Message::NnLeafSetRequest,
            },
            &mut fx,
        );
        assert!(fx.drain().iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::NnLeafSetReply { .. },
                ..
            }
        )));
    }

    #[test]
    fn rt_probe_suppressed_when_recently_heard() {
        let (mut nodes, ids) = trio();
        let a = &mut nodes[0];
        assert!(a.routing_table().contains(ids[1]));
        let now = 10_000_000_000;
        a.last_heard.insert(ids[1], now - 1);
        let mut fx = Effects::new();
        a.handle(now, Event::Timer(TimerKind::RtProbeTick), &mut fx);
        let probed = fx.drain().iter().any(|act| {
            matches!(
                act,
                Action::Send {
                    to,
                    msg: Message::RtProbe { .. }
                } if *to == ids[1]
            )
        });
        assert!(!probed, "fresh traffic suppresses the liveness probe");
    }

    #[test]
    fn probe_reply_samples_rtt_for_rto() {
        let (mut nodes, ids) = trio();
        let a = &mut nodes[0];
        let mut fx = Effects::new();
        a.handle(1_000_000, Event::Timer(TimerKind::RtProbeTick), &mut fx);
        let nonce = fx.drain().into_iter().find_map(|act| match act {
            Action::Send {
                to,
                msg: Message::RtProbe { nonce },
            } if to == ids[1] => Some(nonce),
            _ => None,
        });
        if let Some(nonce) = nonce {
            let mut fx = Effects::new();
            a.handle(
                1_040_000,
                Event::Receive {
                    from: ids[1],
                    msg: Message::RtProbeReply {
                        nonce,
                        trt_hint: None,
                    },
                },
                &mut fx,
            );
            assert!(
                a.rtos.rto_us(ids[1], 0, 999_999_999) < 999_999_999,
                "RTO estimator has a sample now"
            );
        }
    }
}
