//! Network-distance measurement for proximity neighbour selection (§4.2):
//! symmetric distance probes, the measured-distance cache, routing-table
//! candidate evaluation, and the nearest-neighbour discovery walk a joiner
//! runs before sending its join request.

use crate::events::{Effects, TimerKind};
use crate::fxhash::FxHashMap;
use crate::id::NodeId;
use crate::messages::Message;
use crate::node::Node;
use crate::pns::{DistanceMeasurer, MeasurePurpose, MeasureTimeout, NnState, NnStep, ReplyOutcome};
use crate::routing_table::DIST_UNKNOWN;

pub(crate) const MAX_CONCURRENT_MEASUREMENTS: usize = 64;

/// Distance-probing state owned by the measurement layer.
#[derive(Debug)]
pub(crate) struct Measurement {
    pub(crate) measurer: DistanceMeasurer,
    /// Measured round-trip distances with their measurement time; doubles
    /// as a negative cache so rejected routing-table candidates are not
    /// re-measured at every maintenance round.
    pub(crate) known_dists: FxHashMap<NodeId, (u64, u64)>,
    pub(crate) nn: Option<NnState>,
}

impl Measurement {
    pub(crate) fn new() -> Self {
        Measurement {
            measurer: DistanceMeasurer::new(),
            known_dists: FxHashMap::default(),
            nn: None,
        }
    }

    /// The cached distance to `n`, or [`DIST_UNKNOWN`] if never measured.
    pub(crate) fn known_dist(&self, n: NodeId) -> u64 {
        self.known_dists
            .get(&n)
            .map(|&(d, _)| d)
            .unwrap_or(DIST_UNKNOWN)
    }
}

impl Node {
    pub(crate) fn start_measurement(
        &mut self,
        target: NodeId,
        purpose: MeasurePurpose,
        fx: &mut Effects,
    ) {
        if target == self.ctx.id
            || self.consistency.failed.contains(&target)
            || self.measurement.measurer.measuring(target)
            || self.measurement.measurer.len() >= MAX_CONCURRENT_MEASUREMENTS
        {
            return;
        }
        let (want, timeout, retry) = match purpose {
            MeasurePurpose::NearestNeighbor => {
                let want = if self.ctx.cfg.single_probe_nearest_neighbor {
                    1
                } else {
                    self.ctx.cfg.distance_probe_count
                };
                (want, self.ctx.cfg.nn_probe_timeout_us, false)
            }
            _ => (self.ctx.cfg.distance_probe_count, self.ctx.cfg.t_o_us, true),
        };
        if let Some(nonce) = self.measurement.measurer.start_with_retry(
            target,
            purpose,
            want,
            self.ctx.now_us,
            retry,
        ) {
            self.send(target, Message::DistanceProbe { nonce }, fx);
            fx.timer(timeout, TimerKind::DistanceProbeTimeout { target, nonce });
        }
    }

    pub(crate) fn on_distance_probe_next(&mut self, target: NodeId, fx: &mut Effects) {
        if let Some(nonce) = self
            .measurement
            .measurer
            .next_probe(target, self.ctx.now_us)
        {
            self.send(target, Message::DistanceProbe { nonce }, fx);
            fx.timer(
                self.ctx.cfg.t_o_us,
                TimerKind::DistanceProbeTimeout { target, nonce },
            );
        }
    }

    pub(crate) fn on_distance_reply(&mut self, from: NodeId, nonce: u64, fx: &mut Effects) {
        match self
            .measurement
            .measurer
            .on_reply(from, nonce, self.ctx.now_us)
        {
            ReplyOutcome::Ignored => {}
            ReplyOutcome::NeedMore => {
                fx.timer(
                    self.ctx.cfg.distance_probe_spacing_us,
                    TimerKind::DistanceProbeNext { target: from },
                );
            }
            ReplyOutcome::Done(purpose, rtt) => self.finish_measurement(from, purpose, rtt, fx),
        }
    }

    pub(crate) fn on_distance_timeout(&mut self, target: NodeId, nonce: u64, fx: &mut Effects) {
        match self
            .measurement
            .measurer
            .on_timeout(target, nonce, self.ctx.now_us)
        {
            MeasureTimeout::Stale => {}
            MeasureTimeout::Retry(new_nonce) => {
                self.send(target, Message::DistanceProbe { nonce: new_nonce }, fx);
                fx.timer(
                    self.ctx.cfg.t_o_us,
                    TimerKind::DistanceProbeTimeout {
                        target,
                        nonce: new_nonce,
                    },
                );
            }
            MeasureTimeout::Abandon(purpose, Some(rtt)) => {
                self.finish_measurement(target, purpose, rtt, fx)
            }
            MeasureTimeout::Abandon(purpose, None) => {
                if purpose == MeasurePurpose::NearestNeighbor {
                    self.nn_feed_distance(target, u64::MAX, fx);
                }
            }
        }
    }

    pub(crate) fn finish_measurement(
        &mut self,
        target: NodeId,
        purpose: MeasurePurpose,
        rtt: u64,
        fx: &mut Effects,
    ) {
        self.measurement
            .known_dists
            .insert(target, (rtt, self.ctx.now_us));
        self.ctx.obs.rtt_sample(rtt);
        self.reliability.rtos.update(target, rtt);
        match purpose {
            MeasurePurpose::NearestNeighbor => self.nn_feed_distance(target, rtt, fx),
            MeasurePurpose::ConsiderRt => {
                self.ctx.obs.pns_measured();
                let outcome = self.rt.offer(target, rtt);
                use crate::routing_table::InsertOutcome::*;
                if matches!(outcome, Replaced(_)) {
                    self.ctx.obs.pns_replaced();
                }
                let accepted = matches!(outcome, InsertedEmpty | Replaced(_) | Refreshed);
                if accepted && self.ctx.cfg.symmetric_distance_probes {
                    self.send(target, Message::DistanceReport { rtt_us: rtt }, fx);
                }
            }
        }
    }

    /// Symmetric probing: the peer measured us; reuse its value.
    pub(crate) fn on_distance_report(&mut self, from: NodeId, rtt_us: u64) {
        self.measurement
            .known_dists
            .insert(from, (rtt_us, self.ctx.now_us));
        self.rt.offer(from, rtt_us);
    }

    pub(crate) fn consider_rt_candidate(&mut self, n: NodeId, fx: &mut Effects) {
        if n == self.ctx.id || self.consistency.failed.contains(&n) || self.rt.contains(n) {
            return;
        }
        // A fresh cached measurement answers without new probes (this also
        // stops rejected candidates from being re-measured at every
        // maintenance round).
        if let Some(&(d, at)) = self.measurement.known_dists.get(&n) {
            if self.ctx.now_us.saturating_sub(at) < self.ctx.cfg.rt_maintenance_period_us {
                self.rt.offer(n, d);
                return;
            }
        }
        // Only measure when even a 0-distance candidate could change the
        // table (i.e. the slot is empty or occupied).
        if self.rt.would_accept(n, 0) {
            self.start_measurement(n, MeasurePurpose::ConsiderRt, fx);
        }
    }

    // ----- nearest-neighbour discovery --------------------------------------

    pub(crate) fn on_nn_row_request(&mut self, from: NodeId, row: usize, fx: &mut Effects) {
        let occupied = self.rt.occupied_rows();
        let deepest = occupied.last().copied().unwrap_or(0);
        let row = row.min(deepest);
        let nodes = self.rt.row_ids(row);
        self.send(from, Message::NnRowReply { row, nodes }, fx);
    }

    pub(crate) fn on_nn_candidates(
        &mut self,
        row: Option<usize>,
        nodes: Vec<NodeId>,
        fx: &mut Effects,
    ) {
        let Some(nn) = self.measurement.nn.as_mut() else {
            return;
        };
        if let Some(r) = row {
            nn.note_row(r);
        }
        let step = nn.on_candidates(self.ctx.id, &nodes);
        self.nn_execute(step, fx);
    }

    pub(crate) fn nn_feed_distance(&mut self, target: NodeId, dist: u64, fx: &mut Effects) {
        let Some(nn) = self.measurement.nn.as_mut() else {
            return;
        };
        let step = nn.on_distance(target, dist, usize::MAX);
        self.nn_execute(step, fx);
    }

    pub(crate) fn nn_execute(&mut self, step: NnStep, fx: &mut Effects) {
        match step {
            NnStep::Wait => {}
            NnStep::Measure(targets) => {
                let mut unmeasurable = Vec::new();
                for t in targets {
                    self.start_measurement(t, MeasurePurpose::NearestNeighbor, fx);
                    if !self.measurement.measurer.measuring(t) {
                        // Could not start (budget/failed); count as
                        // unreachable so discovery still terminates.
                        unmeasurable.push(t);
                    }
                }
                for t in unmeasurable {
                    self.nn_feed_distance(t, u64::MAX, fx);
                }
            }
            NnStep::AskLeafSet(to) => self.send(to, Message::NnLeafSetRequest, fx),
            NnStep::AskRow(to, row) => self.send(to, Message::NnRowRequest { row }, fx),
            NnStep::Finished(seed) => {
                // Seed the routing table distances with everything measured.
                if let Some(nn) = self.measurement.nn.take() {
                    for (&n, &d) in nn.measured() {
                        self.measurement.known_dists.insert(n, (d, self.ctx.now_us));
                    }
                }
                self.send_join_request(seed, fx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::events::{Action, Event};
    use crate::id::Id;

    fn cfg() -> Config {
        Config {
            nearest_neighbor_join: false,
            ..Config::default()
        }
    }

    #[test]
    fn fresh_cached_distance_suppresses_new_probes() {
        let mut n = Node::new(Id(1), cfg());
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        let _ = fx.drain();
        let candidate = Id(77 << 100);
        n.measurement.known_dists.insert(candidate, (1234, 0));
        n.handle(
            10,
            Event::Receive {
                from: Id(2),
                msg: Message::RtRowAnnounce {
                    row: 0,
                    entries: vec![candidate],
                },
            },
            &mut fx,
        );
        let probed = fx.drain().iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    msg: Message::DistanceProbe { .. },
                    ..
                }
            )
        });
        assert!(!probed, "cached distance answers without probing");
        assert!(
            n.routing_table().contains(candidate),
            "candidate inserted from the cache"
        );
        assert_eq!(n.measurement.known_dist(candidate), 1234);
        assert_eq!(
            n.measurement.known_dist(Id(555)),
            DIST_UNKNOWN,
            "unmeasured nodes report DIST_UNKNOWN"
        );
    }
}
