#![warn(missing_docs)]
//! # MSPastry
//!
//! A from-scratch implementation of **MSPastry** — the structured
//! peer-to-peer overlay of *"Performance and dependability of structured
//! peer-to-peer overlays"* (Castro, Costa, Rowstron; DSN 2004) — as a pure,
//! deterministic, event-driven protocol library.
//!
//! MSPastry is a Pastry overlay hardened for realistic, high-churn
//! environments:
//!
//! * **Consistent routing** (§3.1): nodes never deliver a lookup unless they
//!   are the current root of its key. Joins probe every leaf-set member
//!   before activation, leaf sets are eagerly repaired, and dead nodes are
//!   never propagated between routing states.
//! * **Reliable routing** (§3.2): active liveness probing plus per-hop acks
//!   with aggressive, TCP-style-estimated retransmission timeouts that
//!   reroute around silent nodes.
//! * **Low overhead** (§4): a single heartbeat to the left ring neighbour
//!   instead of all-pairs leaf-set probing; a self-tuned routing-table probe
//!   period that meets a target raw loss rate with minimum traffic; probe
//!   suppression by regular traffic; and symmetric single/median distance
//!   probes for proximity neighbour selection.
//!
//! The [`node::Node`] state machine performs no I/O: the host feeds it
//! [`events::Event`]s and executes the [`events::Action`]s it returns. The
//! protocol logic is layered into one private module per mechanism
//! (`consistency`, `reliability`, `maintenance`, `measurement`) glued by the
//! dispatcher in [`node`]. Hosts do not interpret actions themselves: the
//! shared [`driver`] layer executes them against a narrow [`driver::Host`]
//! trait, so the companion `netsim`/`harness` simulator and the `transport`
//! UDP binding drive the identical core.
//!
//! # Example
//!
//! ```
//! use mspastry::{Config, Effects, Event, Id, Node};
//!
//! // Bootstrap a single-node overlay.
//! let mut node = Node::new(Id(42), Config::default());
//! let mut fx = Effects::new();
//! node.handle(0, Event::Join { seed: None }, &mut fx);
//! assert!(node.is_active());
//!
//! // Lookups for any key are delivered locally: we are the only node.
//! node.handle(1, Event::Lookup { key: Id(7), payload: 1 }, &mut fx);
//! let delivered = fx
//!     .drain()
//!     .iter()
//!     .any(|a| matches!(a, mspastry::Action::Deliver { .. }));
//! assert!(delivered);
//! ```

pub mod codec;
pub mod config;
mod consistency;
pub mod diag;
pub mod driver;
pub mod events;
pub mod fxhash;
pub mod id;
pub mod leaf_set;
mod maintenance;
mod measurement;
pub mod messages;
pub mod node;
pub mod pns;
pub mod probes;
mod reliability;
pub mod routing;
pub mod routing_table;
pub mod rto;
pub mod tuning;

pub use config::Config;
pub use driver::{Clock, Delivery, Driver, Host, WallClock};
pub use events::{Action, DropReason, Effects, Event, TimerKind};
pub use id::{Id, Key, NodeId};
pub use messages::{Category, LookupId, Message, Payload};
pub use node::Node;
