//! Low-overhead maintenance (§4.1): the single heartbeat to the left ring
//! neighbour, active liveness probing of routing-table entries, periodic
//! routing-table maintenance, and the self-tuning tick that recomputes the
//! probing period `T_rt` from the observed failure rate.
//!
//! Probe suppression lives here too: regular traffic recorded in
//! `last_heard`/`last_sent` postpones heartbeats and skips liveness probes.

use crate::config::Config;
use crate::diag::ProbeCause;
use crate::events::{Effects, TimerKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::id::NodeId;
use crate::messages::Message;
use crate::node::Node;
use crate::probes::ProbeKind;
use crate::tuning::SelfTuner;
use rand::Rng;

/// Timer/traffic bookkeeping owned by the maintenance layer.
#[derive(Debug)]
pub(crate) struct Maintenance {
    pub(crate) last_heard: FxHashMap<NodeId, u64>,
    pub(crate) last_sent: FxHashMap<NodeId, u64>,
    pub(crate) tuner: SelfTuner,
    pub(crate) t_rt_us: u64,
}

impl Maintenance {
    pub(crate) fn new(cfg: &Config) -> Self {
        Maintenance {
            last_heard: FxHashMap::default(),
            last_sent: FxHashMap::default(),
            tuner: SelfTuner::new(cfg, 0),
            t_rt_us: cfg.fixed_t_rt_us,
        }
    }
}

impl Node {
    pub(crate) fn on_heartbeat_tick(&mut self, fx: &mut Effects) {
        if !self.ctx.active {
            fx.timer(self.ctx.cfg.t_ls_us, TimerKind::Heartbeat);
            return;
        }
        // Heartbeat to the left neighbour. Suppression *postpones* the
        // heartbeat to `last_sent + Tls` rather than skipping a whole period:
        // skipping would stretch the neighbour's inter-reception gap to
        // almost 2·Tls and trip its Tls+To silence check spuriously.
        let mut next_tick = self.ctx.cfg.t_ls_us;
        if let Some(left) = self.ls.left_neighbor() {
            let due = if self.ctx.cfg.probe_suppression {
                self.maintenance
                    .last_sent
                    .get(&left)
                    .map(|&t| t.saturating_add(self.ctx.cfg.t_ls_us))
                    .unwrap_or(self.ctx.now_us)
            } else {
                self.ctx.now_us
            };
            if self.ctx.now_us >= due {
                let hint = self.hint();
                self.send(left, Message::Heartbeat { trt_hint: hint }, fx);
            } else {
                next_tick = (due - self.ctx.now_us).min(self.ctx.cfg.t_ls_us);
            }
        }
        fx.timer(next_tick, TimerKind::Heartbeat);
        if let Some(right) = self.ls.right_neighbor() {
            let last = self
                .maintenance
                .last_heard
                .get(&right)
                .copied()
                .unwrap_or(0);
            if self.ctx.now_us.saturating_sub(last) > self.ctx.cfg.t_ls_us + self.ctx.cfg.t_o_us {
                // SUSPECT-FAULTY (Fig. 2): silence from the right neighbour.
                if self.probe(right, ProbeKind::LeafSet, true, fx) {
                    self.ctx.obs.cause(ProbeCause::Suspect);
                }
            }
        }
    }

    pub(crate) fn on_rt_probe_tick(&mut self, fx: &mut Effects) {
        if !self.ctx.cfg.active_rt_probing {
            return;
        }
        fx.timer(self.maintenance.t_rt_us, TimerKind::RtProbeTick);
        if !self.ctx.active {
            return;
        }
        let targets: Vec<NodeId> = self.rt.entries().map(|e| e.id).collect();
        for j in targets {
            let suppressed =
                self.ctx.cfg.probe_suppression
                    && self.maintenance.last_heard.get(&j).is_some_and(|&t| {
                        self.ctx.now_us.saturating_sub(t) < self.maintenance.t_rt_us
                    });
            if !suppressed {
                self.probe(j, ProbeKind::Liveness, true, fx);
            }
        }
    }

    pub(crate) fn on_rt_maintenance(&mut self, fx: &mut Effects) {
        fx.timer(
            self.ctx.cfg.rt_maintenance_period_us,
            TimerKind::RtMaintenance,
        );
        if !self.ctx.active {
            return;
        }
        for r in self.rt.occupied_rows() {
            let ids = self.rt.row_ids(r);
            let j = ids[self.ctx.rng.gen_range(0..ids.len())];
            self.send(j, Message::RtRowRequest { row: r }, fx);
        }
    }

    pub(crate) fn on_self_tune(&mut self, fx: &mut Effects) {
        fx.timer(self.ctx.cfg.self_tune_period_us, TimerKind::SelfTune);
        if !self.ctx.active || !self.ctx.cfg.self_tuning {
            return;
        }
        let state = self.routing_state_ids();
        let m = state.len();
        self.maintenance.t_rt_us = self
            .maintenance
            .tuner
            .recompute(&self.ctx.cfg, self.ctx.now_us, m, &self.ls, &state)
            .max(self.ctx.cfg.t_rt_floor_us());
        self.ctx.obs.t_rt(self.maintenance.t_rt_us);
        // Opportunistic pruning of per-peer maps.
        let keep: FxHashSet<NodeId> = state.into_iter().collect();
        let now = self.ctx.now_us;
        let horizon = 4 * self.ctx.cfg.t_ls_us;
        self.maintenance
            .last_heard
            .retain(|n, &mut t| keep.contains(n) || now.saturating_sub(t) < horizon);
        self.maintenance
            .last_sent
            .retain(|n, &mut t| keep.contains(n) || now.saturating_sub(t) < horizon);
        self.consistency
            .repair_paced
            .retain(|_, &mut t| now.saturating_sub(t) < horizon);
        let dist_horizon = self.ctx.cfg.rt_maintenance_period_us;
        self.measurement
            .known_dists
            .retain(|n, &mut (_, at)| keep.contains(n) || now.saturating_sub(at) < dist_horizon);
    }

    // ----- passive RT exchange handlers -------------------------------------

    pub(crate) fn on_rt_probe(&mut self, from: NodeId, nonce: u64, fx: &mut Effects) {
        let hint = self.hint();
        self.send(
            from,
            Message::RtProbeReply {
                nonce,
                trt_hint: hint,
            },
            fx,
        );
    }

    pub(crate) fn on_rt_row_request(&mut self, from: NodeId, row: usize, fx: &mut Effects) {
        let entries = self.rt.row_ids(row);
        self.send(from, Message::RtRowReply { row, entries }, fx);
    }

    pub(crate) fn on_rt_slot_request(
        &mut self,
        from: NodeId,
        row: usize,
        col: u8,
        fx: &mut Effects,
    ) {
        let entry = self.rt.get(row, col).map(|e| e.id);
        self.send(from, Message::RtSlotReply { row, col, entry }, fx);
    }

    // ----- self-tuning hints ------------------------------------------------

    pub(crate) fn hint(&self) -> Option<u64> {
        if self.ctx.cfg.self_tuning && self.ctx.active {
            Some(self.maintenance.tuner.local_t_rt_us())
        } else {
            None
        }
    }

    pub(crate) fn note_hint(&mut self, from: NodeId, hint: Option<u64>) {
        if let Some(h) = hint {
            self.maintenance.tuner.note_hint(from, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;
    use crate::id::Id;

    fn cfg() -> Config {
        Config {
            nearest_neighbor_join: false,
            ..Config::default()
        }
    }

    #[test]
    fn hint_is_only_offered_by_active_self_tuning_nodes() {
        let mut n = Node::new(Id(1), cfg());
        assert_eq!(n.hint(), None, "inactive node offers no hint");
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        if n.config().self_tuning {
            assert!(n.hint().is_some(), "active self-tuning node offers a hint");
        }
        n.note_hint(Id(2), Some(12_000_000));
        n.note_hint(Id(3), None); // must be a no-op, not a panic
    }

    #[test]
    fn self_tune_prunes_stale_peer_maps() {
        let mut n = Node::new(Id(1), cfg());
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        // A peer outside the routing state, heard from long ago.
        n.maintenance.last_heard.insert(Id(999), 1);
        n.maintenance.last_sent.insert(Id(999), 1);
        let far = 100 * n.config().t_ls_us;
        n.handle(far, Event::Timer(TimerKind::SelfTune), &mut fx);
        assert!(
            !n.maintenance.last_heard.contains_key(&Id(999)),
            "stale non-member pruned from last_heard"
        );
        assert!(!n.maintenance.last_sent.contains_key(&Id(999)));
    }
}
