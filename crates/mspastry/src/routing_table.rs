//! Pastry routing table with proximity-aware slot selection.
//!
//! The table is a matrix with `ceil(128/b)` rows and `2^b` columns. The entry
//! in row `r`, column `c` holds a nodeId that shares the first `r` digits
//! with the local node and has digit `r` equal to `c`. Proximity neighbour
//! selection (PNS) fills each slot with the *closest* qualifying node in the
//! underlying network; an entry is replaced when a closer candidate with a
//! measured distance shows up.

use crate::id::{Id, NodeId};

/// Distance value meaning "not measured yet" (treated as infinitely far, so
/// any measured candidate wins the slot).
pub const DIST_UNKNOWN: u64 = u64::MAX;

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtEntry {
    /// The entry's node identifier.
    pub id: NodeId,
    /// Measured round-trip distance to the node, microseconds;
    /// [`DIST_UNKNOWN`] if not measured.
    pub distance_us: u64,
}

/// Outcome of offering a candidate to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The slot was empty; the candidate was inserted.
    InsertedEmpty,
    /// The candidate replaced a farther (or unmeasured) entry.
    Replaced(NodeId),
    /// The candidate is already in the slot (distance possibly refreshed).
    Refreshed,
    /// The existing entry is closer; candidate rejected.
    Rejected,
    /// The candidate is the local node itself; ignored.
    SelfId,
}

/// A Pastry routing table.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    own: NodeId,
    b: u8,
    cols: usize,
    rows: Vec<Vec<Option<RtEntry>>>,
}

impl RoutingTable {
    /// Creates an empty table for the given local node.
    pub fn new(own: NodeId, b: u8) -> Self {
        let n_rows = Id::rows(b);
        let cols = 1usize << b;
        RoutingTable {
            own,
            b,
            cols,
            rows: vec![vec![None; cols]; n_rows],
        }
    }

    /// The local node's identifier.
    pub fn own(&self) -> NodeId {
        self.own
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (2^b).
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// The slot `(row, col)` a given node belongs in, or `None` for the local
    /// node itself.
    pub fn slot_of(&self, id: NodeId) -> Option<(usize, u8)> {
        if id == self.own {
            return None;
        }
        let row = self.own.shared_prefix_len(id, self.b);
        let col = id.digit(row, self.b);
        Some((row, col))
    }

    /// The entry at `(row, col)`, if any.
    pub fn get(&self, row: usize, col: u8) -> Option<RtEntry> {
        self.rows.get(row).and_then(|r| r[col as usize])
    }

    /// The entry holding `id`, if present.
    pub fn entry_of(&self, id: NodeId) -> Option<RtEntry> {
        let (row, col) = self.slot_of(id)?;
        self.get(row, col).filter(|e| e.id == id)
    }

    /// `true` if `id` is in the table.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entry_of(id).is_some()
    }

    /// Offers a candidate with a measured (or unknown) distance.
    ///
    /// PNS policy: an empty slot takes any candidate; an occupied slot is
    /// replaced only by a strictly closer candidate. Unmeasured incumbents
    /// are replaced by any measured candidate.
    pub fn offer(&mut self, id: NodeId, distance_us: u64) -> InsertOutcome {
        let Some((row, col)) = self.slot_of(id) else {
            return InsertOutcome::SelfId;
        };
        let slot = &mut self.rows[row][col as usize];
        match slot {
            None => {
                *slot = Some(RtEntry { id, distance_us });
                InsertOutcome::InsertedEmpty
            }
            Some(e) if e.id == id => {
                // Keep the freshest measurement.
                if distance_us != DIST_UNKNOWN {
                    e.distance_us = distance_us;
                }
                InsertOutcome::Refreshed
            }
            Some(e) => {
                if distance_us < e.distance_us {
                    let old = e.id;
                    *slot = Some(RtEntry { id, distance_us });
                    InsertOutcome::Replaced(old)
                } else {
                    InsertOutcome::Rejected
                }
            }
        }
    }

    /// Removes `id` from the table; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        if let Some((row, col)) = self.slot_of(id) {
            let slot = &mut self.rows[row][col as usize];
            if slot.map(|e| e.id) == Some(id) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Iterates over all entries.
    pub fn entries(&self) -> impl Iterator<Item = RtEntry> + '_ {
        self.rows.iter().flatten().flatten().copied()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.rows.iter().flatten().flatten().count()
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The non-empty entries of row `r` (nodeIds only).
    pub fn row_ids(&self, r: usize) -> Vec<NodeId> {
        self.rows
            .get(r)
            .map(|row| row.iter().flatten().map(|e| e.id).collect())
            .unwrap_or_default()
    }

    /// Indices of rows that contain at least one entry.
    pub fn occupied_rows(&self) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&r| self.rows[r].iter().any(Option::is_some))
            .collect()
    }

    /// `true` if the slot the candidate belongs in is empty or unmeasured
    /// or farther than `distance_us` — i.e. offering with this distance would
    /// change the table. Used to decide whether a distance measurement is
    /// worth starting.
    pub fn would_accept(&self, id: NodeId, distance_us: u64) -> bool {
        match self.slot_of(id) {
            None => false,
            Some((row, col)) => match self.get(row, col) {
                None => true,
                Some(e) => e.id != id && distance_us < e.distance_us,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn own() -> NodeId {
        Id(0x5000_0000_0000_0000_0000_0000_0000_0000)
    }

    #[test]
    fn slot_invariants_hold_for_random_nodes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for b in [1u8, 2, 4] {
            let rt = RoutingTable::new(own(), b);
            for _ in 0..500 {
                let id = Id::random(&mut rng);
                if id == own() {
                    continue;
                }
                let (row, col) = rt.slot_of(id).unwrap();
                assert_eq!(own().shared_prefix_len(id, b), row);
                assert_eq!(id.digit(row, b), col);
            }
        }
    }

    #[test]
    fn offer_fills_empty_slot_and_pns_replaces_farther() {
        let mut rt = RoutingTable::new(own(), 4);
        // Two ids in the same slot: first digit differs from own (5), both
        // start with digit 0x6.
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000);
        let c = Id(0x6bbb_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(rt.offer(a, 100), InsertOutcome::InsertedEmpty);
        assert_eq!(rt.offer(c, 200), InsertOutcome::Rejected);
        assert_eq!(rt.offer(c, 50), InsertOutcome::Replaced(a));
        assert_eq!(rt.entry_of(c).unwrap().distance_us, 50);
        assert!(!rt.contains(a));
    }

    #[test]
    fn measured_candidate_beats_unknown_incumbent() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000);
        let c = Id(0x6bbb_0000_0000_0000_0000_0000_0000_0000);
        rt.offer(a, DIST_UNKNOWN);
        assert_eq!(rt.offer(c, 999), InsertOutcome::Replaced(a));
    }

    #[test]
    fn refresh_updates_distance() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000);
        rt.offer(a, DIST_UNKNOWN);
        assert_eq!(rt.offer(a, 70), InsertOutcome::Refreshed);
        assert_eq!(rt.entry_of(a).unwrap().distance_us, 70);
    }

    #[test]
    fn own_id_is_never_inserted() {
        let mut rt = RoutingTable::new(own(), 4);
        assert_eq!(rt.offer(own(), 1), InsertOutcome::SelfId);
        assert!(rt.is_empty());
    }

    #[test]
    fn remove_only_removes_the_exact_node() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000);
        let c = Id(0x6bbb_0000_0000_0000_0000_0000_0000_0000);
        rt.offer(a, 100);
        assert!(!rt.remove(c), "c occupies the same slot but is not present");
        assert!(rt.remove(a));
        assert!(rt.is_empty());
    }

    #[test]
    fn row_ids_and_occupied_rows() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000); // row 0
        let deep = Id(0x5aaa_0000_0000_0000_0000_0000_0000_0000); // row 1
        rt.offer(a, 10);
        rt.offer(deep, 20);
        assert_eq!(rt.occupied_rows(), vec![0, 1]);
        assert_eq!(rt.row_ids(0), vec![a]);
        assert_eq!(rt.row_ids(1), vec![deep]);
        assert_eq!(rt.len(), 2);
    }

    #[test]
    fn would_accept_matches_offer_semantics() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = Id(0x6aaa_0000_0000_0000_0000_0000_0000_0000);
        let c = Id(0x6bbb_0000_0000_0000_0000_0000_0000_0000);
        assert!(rt.would_accept(a, DIST_UNKNOWN));
        rt.offer(a, 100);
        assert!(!rt.would_accept(a, 50), "already present");
        assert!(rt.would_accept(c, 50));
        assert!(!rt.would_accept(c, 150));
        assert!(!rt.would_accept(own(), 0));
    }

    #[test]
    fn average_occupied_rows_is_logarithmic() {
        // With N random nodes only ~log_{2^b} N rows have entries on average.
        let mut rng = SmallRng::seed_from_u64(8);
        let mut rt = RoutingTable::new(Id::random(&mut rng), 4);
        for _ in 0..1000 {
            rt.offer(Id::random(&mut rng), 100);
        }
        let occ = rt.occupied_rows().len();
        assert!(
            (2..=6).contains(&occ),
            "occupied rows {occ} for N=1000, b=4"
        );
    }
}
