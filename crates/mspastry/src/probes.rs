//! Outstanding-probe bookkeeping.
//!
//! A node has at most one outstanding probe per target. Leaf-set probes
//! participate in the `done_probing` logic of Figure 2 (they gate activation
//! and leaf-set repair); liveness probes of routing-table entries only detect
//! failures.

use crate::fxhash::FxHashMap;
use crate::id::NodeId;

/// What a probe is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// An `LS-PROBE` (Fig. 2): carries leaf sets, gates activation/repair.
    LeafSet,
    /// A liveness probe of a routing-table entry (§3.2).
    Liveness,
}

/// State of one outstanding probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeState {
    /// What the probe is for.
    pub kind: ProbeKind,
    /// Retry attempt (0 = first probe).
    pub attempt: u32,
    /// When the current attempt was sent, microseconds.
    pub sent_at_us: u64,
    /// Whether exhausting this probe should be announced to the leaf set.
    /// Confirmation probes (triggered by a peer's `failed` set) do not
    /// re-announce: the failure is already being disseminated, and
    /// re-announcing from every member would cascade quadratically.
    pub announce: bool,
}

/// Verdict for a probe timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// The timeout does not match the outstanding probe (already answered or
    /// superseded); ignore it.
    Stale,
    /// Retry the probe; the new attempt number is given.
    Retry(u32),
    /// Retries are exhausted; mark the target faulty.
    Exhausted(ProbeState),
}

/// Tracks a node's outstanding probes.
#[derive(Debug, Clone, Default)]
pub struct ProbeManager {
    outstanding: FxHashMap<NodeId, ProbeState>,
}

impl ProbeManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a probe to `target`; returns `false` if one is already
    /// outstanding.
    pub fn begin(&mut self, target: NodeId, kind: ProbeKind, announce: bool, now_us: u64) -> bool {
        if self.outstanding.contains_key(&target) {
            return false;
        }
        self.outstanding.insert(
            target,
            ProbeState {
                kind,
                attempt: 0,
                sent_at_us: now_us,
                announce,
            },
        );
        true
    }

    /// `true` if a probe to `target` is outstanding.
    pub fn contains(&self, target: NodeId) -> bool {
        self.outstanding.contains_key(&target)
    }

    /// The outstanding probe to `target`, if any.
    pub fn get(&self, target: NodeId) -> Option<ProbeState> {
        self.outstanding.get(&target).copied()
    }

    /// Records a reply from `target`; returns the cleared probe state (for
    /// RTT sampling and `done_probing`).
    pub fn on_reply(&mut self, target: NodeId) -> Option<ProbeState> {
        self.outstanding.remove(&target)
    }

    /// Handles a timeout for `(target, attempt)`.
    pub fn on_timeout(
        &mut self,
        target: NodeId,
        attempt: u32,
        max_retries: u32,
        now_us: u64,
    ) -> TimeoutVerdict {
        match self.outstanding.get_mut(&target) {
            Some(st) if st.attempt == attempt => {
                if attempt < max_retries {
                    st.attempt += 1;
                    st.sent_at_us = now_us;
                    TimeoutVerdict::Retry(st.attempt)
                } else {
                    let st = *st;
                    self.outstanding.remove(&target);
                    TimeoutVerdict::Exhausted(st)
                }
            }
            _ => TimeoutVerdict::Stale,
        }
    }

    /// Number of outstanding leaf-set probes (the `probing_i` set of Fig. 2).
    pub fn leaf_set_outstanding(&self) -> usize {
        self.outstanding
            .values()
            .filter(|s| s.kind == ProbeKind::LeafSet)
            .count()
    }

    /// Total outstanding probes.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    #[test]
    fn begin_is_idempotent_per_target() {
        let mut pm = ProbeManager::new();
        assert!(pm.begin(Id(1), ProbeKind::LeafSet, true, 0));
        assert!(!pm.begin(Id(1), ProbeKind::Liveness, true, 5));
        assert_eq!(pm.get(Id(1)).unwrap().kind, ProbeKind::LeafSet);
        assert_eq!(pm.leaf_set_outstanding(), 1);
    }

    #[test]
    fn reply_clears_and_returns_state() {
        let mut pm = ProbeManager::new();
        pm.begin(Id(1), ProbeKind::Liveness, true, 10);
        let st = pm.on_reply(Id(1)).unwrap();
        assert_eq!(st.sent_at_us, 10);
        assert!(pm.is_empty());
        assert!(pm.on_reply(Id(1)).is_none());
    }

    #[test]
    fn timeout_retries_then_exhausts() {
        let mut pm = ProbeManager::new();
        pm.begin(Id(1), ProbeKind::LeafSet, false, 0);
        assert_eq!(pm.on_timeout(Id(1), 0, 2, 10), TimeoutVerdict::Retry(1));
        assert_eq!(pm.on_timeout(Id(1), 1, 2, 20), TimeoutVerdict::Retry(2));
        match pm.on_timeout(Id(1), 2, 2, 30) {
            TimeoutVerdict::Exhausted(st) => {
                assert_eq!(st.kind, ProbeKind::LeafSet);
                assert!(!st.announce);
            }
            other => panic!("expected exhausted, got {other:?}"),
        }
        assert!(pm.is_empty());
    }

    #[test]
    fn stale_timeouts_are_ignored() {
        let mut pm = ProbeManager::new();
        pm.begin(Id(1), ProbeKind::LeafSet, false, 0);
        pm.on_timeout(Id(1), 0, 2, 10); // now attempt 1
        assert_eq!(pm.on_timeout(Id(1), 0, 2, 20), TimeoutVerdict::Stale);
        pm.on_reply(Id(1));
        assert_eq!(pm.on_timeout(Id(1), 1, 2, 30), TimeoutVerdict::Stale);
    }
}
