//! The leaf set: the `l/2` closest nodeIds on each side of the local node.
//!
//! Leaf sets connect the overlay nodes in a ring and are the foundation of
//! consistent routing: a key is delivered by the node whose identifier is
//! closest to it, and the leaf set is how a node knows whether that node is
//! itself.

use crate::id::{closer_to, Key, NodeId};

/// The leaf set of a Pastry node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafSet {
    own: NodeId,
    half: usize,
    /// Counter-clockwise neighbours, closest first (`left[0]` is the
    /// immediate predecessor; `left.last()` is the leftmost member).
    left: Vec<NodeId>,
    /// Clockwise neighbours, closest first.
    right: Vec<NodeId>,
    /// `true` when some node sits on both sides: the overlay is smaller than
    /// `l` and the leaf set wraps the entire ring.
    overlap: bool,
}

impl LeafSet {
    /// Creates an empty leaf set holding up to `half` nodes per side.
    ///
    /// # Panics
    ///
    /// Panics if `half == 0`.
    pub fn new(own: NodeId, half: usize) -> Self {
        assert!(half > 0, "leaf set half size must be positive");
        LeafSet {
            own,
            half,
            left: Vec::with_capacity(half),
            right: Vec::with_capacity(half),
            overlap: false,
        }
    }

    /// The local node's identifier.
    pub fn own(&self) -> NodeId {
        self.own
    }

    /// Maximum nodes per side (`l/2`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// Current left-side members, closest first.
    pub fn left(&self) -> &[NodeId] {
        &self.left
    }

    /// Current right-side members, closest first.
    pub fn right(&self) -> &[NodeId] {
        &self.right
    }

    /// The immediate counter-clockwise neighbour, if known.
    pub fn left_neighbor(&self) -> Option<NodeId> {
        self.left.first().copied()
    }

    /// The immediate clockwise neighbour, if known.
    pub fn right_neighbor(&self) -> Option<NodeId> {
        self.right.first().copied()
    }

    /// The farthest member on the left side.
    pub fn leftmost(&self) -> Option<NodeId> {
        self.left.last().copied()
    }

    /// The farthest member on the right side.
    pub fn rightmost(&self) -> Option<NodeId> {
        self.right.last().copied()
    }

    /// Iterates over all distinct members without allocating (a node can sit
    /// on both sides in a small overlay; such duplicates are yielded once).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        // A node appears on both sides only when the set wraps the ring
        // (`overlap`), so the dedup scan is skipped entirely in the common
        // large-overlay case.
        self.left.iter().copied().chain(
            self.right
                .iter()
                .copied()
                .filter(move |r| !self.overlap || !self.left.contains(r)),
        )
    }

    /// All distinct members (a node can sit on both sides in a small
    /// overlay).
    pub fn members(&self) -> Vec<NodeId> {
        let mut m = Vec::with_capacity(self.left.len() + self.right.len());
        m.extend(self.iter());
        m
    }

    /// `true` if `id` is a member of either side.
    pub fn contains(&self, id: NodeId) -> bool {
        self.left.contains(&id) || self.right.contains(&id)
    }

    /// Offers `id` for membership; returns `true` if the set changed.
    ///
    /// The caller is responsible for the consistency rule that a node is only
    /// added after a message has been received directly from it (or during
    /// the join bootstrap, where every candidate is probed before the node
    /// becomes active).
    pub fn add(&mut self, id: NodeId) -> bool {
        if id == self.own {
            return false;
        }
        let ccw = self.own.ccw_dist(id);
        let cw = self.own.cw_dist(id);
        let l = Self::insert_side(
            &mut self.left,
            id,
            ccw,
            self.half,
            |o, n| o.ccw_dist(n),
            self.own,
        );
        let r = Self::insert_side(
            &mut self.right,
            id,
            cw,
            self.half,
            |o, n| o.cw_dist(n),
            self.own,
        );
        if l || r {
            self.recompute_overlap();
        }
        l || r
    }

    fn recompute_overlap(&mut self) {
        self.overlap = self.left.iter().any(|l| self.right.contains(l));
    }

    fn insert_side(
        side: &mut Vec<NodeId>,
        id: NodeId,
        dist: u128,
        half: usize,
        dist_of: impl Fn(NodeId, NodeId) -> u128,
        own: NodeId,
    ) -> bool {
        if side.contains(&id) {
            return false;
        }
        let pos = side
            .iter()
            .position(|&m| dist_of(own, m) > dist)
            .unwrap_or(side.len());
        if pos >= half {
            return false;
        }
        side.insert(pos, id);
        side.truncate(half);
        true
    }

    /// `true` if offering `id` would change the set (used to decide whether a
    /// leaf-set candidate is worth probing before insertion).
    pub fn would_admit(&self, id: NodeId) -> bool {
        if id == self.own || self.contains(id) {
            return false;
        }
        let ccw = self.own.ccw_dist(id);
        let cw = self.own.cw_dist(id);
        let admit = |side: &Vec<NodeId>, dist: u128, dist_of: &dyn Fn(NodeId) -> u128| {
            side.len() < self.half || dist < dist_of(*side.last().unwrap())
        };
        admit(&self.left, ccw, &|m| self.own.ccw_dist(m))
            || admit(&self.right, cw, &|m| self.own.cw_dist(m))
    }

    /// Of `candidates`, returns those that would belong to the leaf set if
    /// every candidate were admitted — i.e. the subset actually worth probing
    /// before insertion.
    ///
    /// Probing every [`LeafSet::would_admit`] candidate would be wasteful:
    /// after one member fails, *all* nodes beyond the span become admissible
    /// for the single open slot, but only the closest one can end up in the
    /// set.
    pub fn useful_candidates(&self, candidates: &[NodeId]) -> Vec<NodeId> {
        self.useful_candidates_filtered(candidates, |_| true)
    }

    /// [`LeafSet::useful_candidates`] with an admissibility pre-filter, so
    /// callers can pass a raw peer leaf set without first collecting the
    /// eligible subset into a temporary vector.
    pub fn useful_candidates_filtered(
        &self,
        candidates: &[NodeId],
        eligible: impl Fn(NodeId) -> bool,
    ) -> Vec<NodeId> {
        let mut useful: Vec<NodeId> = Vec::new();
        let ccw = |n: NodeId| self.own.ccw_dist(n);
        let cw = |n: NodeId| self.own.cw_dist(n);
        // Ring distances from a fixed origin are injective and both sides are
        // kept sorted by distance, so membership testing is a binary search,
        // and a candidate beyond the span of both (full) sides cannot join
        // either would-be set and is dropped outright. In a stable overlay
        // almost every candidate is already a member, making this the hot
        // path: no allocation happens until something is actually admissible.
        let left_full = self.left.len() == self.half;
        let right_full = self.right.len() == self.half;
        let mut adm: Vec<(NodeId, u128, u128)> = Vec::new();
        for &c in candidates {
            if c == self.own || !eligible(c) {
                continue;
            }
            let dc = ccw(c);
            let dw = cw(c);
            if left_full
                && right_full
                && dc > ccw(*self.left.last().expect("full side"))
                && dw > cw(*self.right.last().expect("full side"))
            {
                continue;
            }
            if self.left.binary_search_by(|&m| ccw(m).cmp(&dc)).is_ok()
                || self.right.binary_search_by(|&m| cw(m).cmp(&dw)).is_ok()
            {
                continue;
            }
            adm.push((c, dc, dw));
        }
        if adm.is_empty() {
            return useful;
        }
        let mut cand: Vec<(u128, NodeId)> = Vec::with_capacity(adm.len());
        for left_side in [true, false] {
            let side = if left_side { &self.left } else { &self.right };
            cand.clear();
            cand.extend(
                adm.iter()
                    .map(|&(c, dc, dw)| (if left_side { dc } else { dw }, c)),
            );
            // Distinct ids have distinct ring distances from `own`, so the
            // sort order is total and duplicate candidates are adjacent.
            cand.sort_unstable();
            cand.dedup();
            // `side` is kept sorted by distance, so merging it with the
            // sorted candidates enumerates the would-be leaf set in order;
            // candidates among the first `half` merged entries survive.
            let dist_of = |n: NodeId| if left_side { ccw(n) } else { cw(n) };
            let (mut si, mut ci, mut taken) = (0usize, 0usize, 0usize);
            while taken < self.half && ci < cand.len() {
                if si < side.len() && dist_of(side[si]) < cand[ci].0 {
                    si += 1;
                } else {
                    let id = cand[ci].1;
                    if !useful.contains(&id) {
                        useful.push(id);
                    }
                    ci += 1;
                }
                taken += 1;
            }
        }
        useful
    }

    /// Removes `id` from both sides; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let before = self.left.len() + self.right.len();
        self.left.retain(|&m| m != id);
        self.right.retain(|&m| m != id);
        let changed = before != self.left.len() + self.right.len();
        if changed {
            self.recompute_overlap();
        }
        changed
    }

    /// `true` when the leaf set is complete: both sides full, or the sides
    /// overlap (the whole overlay is smaller than `l` and the set wraps the
    /// ring), or the set is empty (singleton overlay).
    pub fn is_complete(&self) -> bool {
        if self.left.is_empty() && self.right.is_empty() {
            return true;
        }
        if self.left.len() == self.half && self.right.len() == self.half {
            return true;
        }
        self.overlap
    }

    /// `true` if the destination key lies between the leftmost and rightmost
    /// leaf-set members (Fig. 2's coverage test). An empty set covers
    /// everything (singleton overlay), as does an overlapping set (the whole
    /// overlay is inside the leaf set); a one-sided set covers nothing.
    pub fn covers(&self, key: Key) -> bool {
        if self.overlap {
            return true;
        }
        match (self.leftmost(), self.rightmost()) {
            (None, None) => true,
            (Some(lm), Some(rm)) => key.on_cw_arc(lm, rm),
            _ => false,
        }
    }

    /// The member (or the local node) closest to `key`, excluding the nodes
    /// for which `excluded` returns `true` (the local node is never
    /// excluded).
    pub fn closest_to(&self, key: Key, excluded: impl Fn(NodeId) -> bool) -> NodeId {
        let mut best = self.own;
        for m in self.left.iter().chain(self.right.iter()) {
            if !excluded(*m) {
                best = closer_to(key, best, *m);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    fn ls(own: u128, half: usize) -> LeafSet {
        LeafSet::new(Id(own), half)
    }

    #[test]
    fn add_orders_sides_by_ring_distance() {
        let mut s = ls(1000, 2);
        assert!(s.add(Id(1100)));
        assert!(s.add(Id(1050)));
        assert!(s.add(Id(900)));
        assert!(s.add(Id(990)));
        assert_eq!(s.right(), &[Id(1050), Id(1100)]);
        assert_eq!(s.left(), &[Id(990), Id(900)]);
        assert_eq!(s.right_neighbor(), Some(Id(1050)));
        assert_eq!(s.left_neighbor(), Some(Id(990)));
        assert_eq!(s.rightmost(), Some(Id(1100)));
        assert_eq!(s.leftmost(), Some(Id(900)));
    }

    #[test]
    fn farther_candidates_are_dropped_when_full() {
        let mut s = ls(1000, 2);
        s.add(Id(1010));
        s.add(Id(1020));
        // 1030 does not fit the right side (1010 and 1020 are closer) but it
        // *is* the closest predecessor going counter-clockwise around the
        // ring, so it lands on the left side.
        assert!(s.add(Id(1030)));
        assert!(!s.right().contains(&Id(1030)));
        assert_eq!(s.left()[0], Id(1030));
        assert!(s.add(Id(1005)), "closer node displaces the farthest");
        assert_eq!(s.right(), &[Id(1005), Id(1010)]);
    }

    #[test]
    fn small_overlay_nodes_appear_on_both_sides() {
        // Overlay of two nodes: the other node is both predecessor and
        // successor.
        let mut s = ls(0, 2);
        s.add(Id(1 << 100));
        assert_eq!(s.left().len(), 1);
        assert_eq!(s.right().len(), 1);
        assert!(s.is_complete(), "overlapping sides mean a complete set");
    }

    #[test]
    fn completeness_full_sides() {
        let mut s = ls(1000, 2);
        for id in [900u128, 950, 1050, 1100] {
            s.add(Id(id));
        }
        assert!(s.is_complete());
        s.remove(Id(900));
        assert!(!s.is_complete());
    }

    #[test]
    fn empty_set_is_complete_and_covers_everything() {
        let s = ls(1000, 2);
        assert!(s.is_complete());
        assert!(s.covers(Id(123)));
    }

    #[test]
    fn coverage_arc() {
        let mut s = ls(1000, 2);
        for id in [900u128, 950, 1050, 1100] {
            s.add(Id(id));
        }
        assert!(s.covers(Id(1000)));
        assert!(s.covers(Id(901)));
        assert!(s.covers(Id(1099)));
        assert!(!s.covers(Id(2000)));
        assert!(!s.covers(Id(0)));
    }

    #[test]
    fn one_sided_set_covers_nothing() {
        let mut s = ls(1000, 2);
        // Nodes so close to own on one side that both sides hold the same
        // two nodes would be overlap; construct a genuinely one-sided view.
        s.right.push(Id(1010));
        assert!(!s.covers(Id(1005)));
    }

    #[test]
    fn closest_to_matches_naive_oracle() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let own = Id::random(&mut rng);
            let mut s = LeafSet::new(own, 4);
            let mut all = vec![own];
            for _ in 0..12 {
                let id = Id::random(&mut rng);
                s.add(id);
                all.push(id);
            }
            let key = Id::random(&mut rng);
            let members: Vec<NodeId> = {
                let mut m = s.members();
                m.push(own);
                m
            };
            let naive = members
                .iter()
                .copied()
                .reduce(|a, b| closer_to(key, a, b))
                .unwrap();
            assert_eq!(s.closest_to(key, |_| false), naive);
            let _ = rng.gen::<bool>();
        }
    }

    #[test]
    fn closest_to_respects_exclusions() {
        let mut s = ls(1000, 2);
        s.add(Id(1100));
        s.add(Id(900));
        let c = s.closest_to(Id(1090), |n| n == Id(1100));
        assert_eq!(c, Id(1000), "excluded best falls back to own");
    }

    #[test]
    fn would_admit_agrees_with_add() {
        let mut s = ls(1000, 2);
        for id in [1010u128, 1020, 990, 980] {
            s.add(Id(id));
        }
        assert!(!s.would_admit(Id(1030)));
        assert!(s.would_admit(Id(1005)));
        assert!(!s.would_admit(Id(1010)), "already a member");
        assert!(!s.would_admit(Id(1000)), "own id");
    }

    #[test]
    fn useful_candidates_matches_naive_merge_oracle() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        // Reference implementation: merge each side with every admissible
        // candidate, sort, and keep candidates landing in the first `half`.
        fn naive(s: &LeafSet, candidates: &[NodeId]) -> Vec<NodeId> {
            let mut useful: Vec<NodeId> = Vec::new();
            for (side, dist_of) in [
                (
                    &s.left,
                    &(|n: NodeId| s.own.ccw_dist(n)) as &dyn Fn(NodeId) -> u128,
                ),
                (&s.right, &|n: NodeId| s.own.cw_dist(n)),
            ] {
                let mut merged: Vec<(u128, NodeId, bool)> =
                    side.iter().map(|&m| (dist_of(m), m, false)).collect();
                for &c in candidates {
                    if c != s.own && !s.contains(c) && !merged.iter().any(|&(_, m, _)| m == c) {
                        merged.push((dist_of(c), c, true));
                    }
                }
                merged.sort_unstable();
                for &(_, id, is_candidate) in merged.iter().take(s.half) {
                    if is_candidate && !useful.contains(&id) {
                        useful.push(id);
                    }
                }
            }
            useful
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for round in 0..200 {
            let own = Id::random(&mut rng);
            let mut s = LeafSet::new(own, 1 + round % 5);
            for _ in 0..(round % 12) {
                s.add(Id::random(&mut rng));
            }
            let mut candidates: Vec<NodeId> =
                (0..(round % 9)).map(|_| Id::random(&mut rng)).collect();
            // Throw in duplicates, members and the node's own id.
            if let Some(&m) = s.left().first() {
                candidates.push(m);
            }
            if let Some(&c) = candidates.first() {
                candidates.push(c);
            }
            candidates.push(own);
            assert_eq!(s.useful_candidates(&candidates), naive(&s, &candidates));
        }
    }

    #[test]
    fn iter_matches_members() {
        let mut s = ls(0, 2);
        s.add(Id(1 << 100));
        s.add(Id(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), s.members());
    }

    #[test]
    fn remove_clears_both_sides() {
        let mut s = ls(0, 2);
        s.add(Id(1 << 100));
        assert!(s.remove(Id(1 << 100)));
        assert!(s.left().is_empty() && s.right().is_empty());
        assert!(!s.remove(Id(1 << 100)));
    }

    #[test]
    fn members_deduplicates() {
        let mut s = ls(0, 2);
        s.add(Id(1 << 100));
        assert_eq!(s.members().len(), 1);
    }
}
