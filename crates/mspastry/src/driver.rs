//! The shared event-loop driver: one action-execution layer for every host.
//!
//! The simulator (`harness::Runner`) and the UDP deployment
//! (`transport::UdpNode`) used to each carry their own copy of the loop that
//! feeds a [`Node`] events and interprets the [`Action`]s it emits. That
//! duplication is exactly what the paper's "same code in the simulator and
//! in the real deployment" property forbids: the two copies could silently
//! diverge. This module extracts the loop once:
//!
//! * [`Host`] is the narrow wire/clock/application surface a deployment must
//!   provide — send a message, arm a one-shot timer, hand a delivery to the
//!   application, observe activation and drops.
//! * [`Driver`] owns the [`Node`] plus a reusable action buffer and runs the
//!   interpretation loop allocation-free: `step` swaps the buffer into the
//!   node's [`Effects`], dispatches each resulting action to the host, and
//!   keeps the buffer's capacity for the next event.
//! * [`Clock`] abstracts the host's time source; [`WallClock`] is the
//!   real-time implementation used by the UDP transport. The simulator's
//!   virtual time comes straight from its event queue, so it passes
//!   timestamps to [`Driver::step`] directly.
//!
//! Hosts never match on [`Action`] themselves; protocol outputs reach them
//! only through the [`Host`] trait, so sim and deployment cannot drift.

use crate::events::{Action, DropReason, Effects, Event, TimerKind};
use crate::id::{Key, NodeId};
use crate::messages::{LookupId, Message, Payload};
use crate::node::Node;
use std::time::Instant;

/// A lookup that reached its root, handed to the host's application layer.
///
/// This is [`Action::Deliver`] flattened into a struct so hosts receive one
/// typed value instead of destructuring an enum variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// End-to-end lookup identity.
    pub id: LookupId,
    /// The destination key.
    pub key: Key,
    /// The application payload.
    pub payload: Payload,
    /// Overlay hops the lookup took.
    pub hops: u32,
    /// When the lookup was issued, microseconds.
    pub issued_at_us: u64,
    /// The deliverer's leaf-set members closest to the key (up to 8), for
    /// application-level replication.
    pub replica_set: Vec<NodeId>,
}

/// What a deployment must provide for the protocol core to run on it: a wire
/// to send messages, a timer service, and sinks for application-visible
/// events. Implemented by the simulator and by the UDP event loop.
pub trait Host {
    /// Transmit `msg` to `to` (lossy, unordered delivery is fine).
    fn send(&mut self, to: NodeId, msg: Message);
    /// Arm a one-shot timer: feed `Event::Timer(kind)` back into the driver
    /// `delay_us` microseconds from the current event's time. Timers are
    /// never cancelled; stale ones are ignored by the node.
    fn set_timer(&mut self, delay_us: u64, kind: TimerKind);
    /// A lookup was delivered at this node (it is the key's root).
    fn deliver(&mut self, delivery: Delivery);
    /// The node completed its join and became active.
    fn became_active(&mut self);
    /// A lookup was dropped; reported for loss accounting.
    fn lookup_dropped(&mut self, id: LookupId, reason: DropReason);
}

/// Owns a [`Node`] and executes its actions against a [`Host`].
///
/// The driver keeps one reusable action buffer per node, so steady-state
/// event handling performs no allocation (the simulator's hot path processes
/// hundreds of millions of events).
#[derive(Debug)]
pub struct Driver {
    node: Node,
    buf: Vec<Action>,
}

impl Driver {
    /// Wraps a node in a driver with a warm action buffer.
    pub fn new(node: Node) -> Self {
        Driver {
            node,
            buf: Vec::with_capacity(16),
        }
    }

    /// Read access to the driven node (for metrics and tests).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Feeds one event to the node at time `now_us` and dispatches every
    /// resulting action to `host`.
    pub fn step(&mut self, now_us: u64, event: Event, host: &mut impl Host) {
        let mut fx = Effects {
            actions: std::mem::take(&mut self.buf),
        };
        fx.actions.clear();
        self.node.handle(now_us, event, &mut fx);
        for action in fx.actions.drain(..) {
            match action {
                Action::Send { to, msg } => host.send(to, msg),
                Action::SetTimer { delay_us, kind } => host.set_timer(delay_us, kind),
                Action::Deliver {
                    id,
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    replica_set,
                } => host.deliver(Delivery {
                    id,
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    replica_set,
                }),
                Action::BecameActive => host.became_active(),
                Action::LookupDropped { id, reason } => host.lookup_dropped(id, reason),
            }
        }
        self.buf = fx.actions;
    }
}

/// A monotonic time source for hosts that run on real time.
pub trait Clock {
    /// Microseconds elapsed since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// The real-time [`Clock`]: microseconds since construction, monotonic.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts a clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::id::Id;

    /// Records every host call-back for assertion.
    #[derive(Default)]
    struct MockHost {
        sent: Vec<(NodeId, Message)>,
        timers: Vec<(u64, TimerKind)>,
        delivered: Vec<Delivery>,
        activations: usize,
        drops: Vec<(LookupId, DropReason)>,
    }

    impl Host for MockHost {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, delay_us: u64, kind: TimerKind) {
            self.timers.push((delay_us, kind));
        }
        fn deliver(&mut self, delivery: Delivery) {
            self.delivered.push(delivery);
        }
        fn became_active(&mut self) {
            self.activations += 1;
        }
        fn lookup_dropped(&mut self, id: LookupId, reason: DropReason) {
            self.drops.push((id, reason));
        }
    }

    fn cfg() -> Config {
        Config {
            nearest_neighbor_join: false,
            ..Config::default()
        }
    }

    #[test]
    fn driver_routes_every_action_kind_to_the_host() {
        let mut d = Driver::new(Node::new(Id(42), cfg()));
        let mut host = MockHost::default();
        d.step(0, Event::Join { seed: None }, &mut host);
        assert_eq!(host.activations, 1, "bootstrap join activates");
        assert!(!host.timers.is_empty(), "periodic timers armed");
        // A singleton overlay delivers every lookup locally.
        d.step(
            1,
            Event::Lookup {
                key: Id(7),
                payload: 3,
            },
            &mut host,
        );
        assert_eq!(host.delivered.len(), 1);
        assert_eq!(host.delivered[0].payload, 3);
        assert!(d.node().is_active());
    }

    #[test]
    fn driver_reuses_its_action_buffer() {
        let mut d = Driver::new(Node::new(Id(42), cfg()));
        let mut host = MockHost::default();
        d.step(0, Event::Join { seed: None }, &mut host);
        let cap = d.buf.capacity();
        assert!(cap > 0, "buffer kept after the first step");
        d.step(
            1,
            Event::Lookup {
                key: Id(7),
                payload: 0,
            },
            &mut host,
        );
        assert!(d.buf.capacity() >= cap.min(2), "capacity retained");
        assert!(d.buf.is_empty(), "buffer drained between steps");
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
