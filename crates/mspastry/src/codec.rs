//! Binary wire codec for [`Message`].
//!
//! The simulator passes `Message` values by move, but a real deployment
//! needs bytes on the wire. The encoding is a compact hand-rolled format:
//! little-endian integers, a one-byte variant tag, and length-prefixed
//! lists. Every decode is bounds-checked; malformed input yields a
//! [`DecodeError`], never a panic.

use crate::id::{Id, NodeId};
use crate::messages::{LookupId, Message};
use std::fmt;

/// Maximum list length accepted by the decoder (defence against hostile
/// length prefixes; the largest legitimate lists are leaf sets and
/// routing-table rows, both far below this).
const MAX_LIST: usize = 4096;

/// Error decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// A length prefix exceeded sane bounds.
    ListTooLong(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::ListTooLong(n) => write!(f, "list length {n} exceeds bounds"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn id(&mut self, id: Id) {
        self.u128(id.0);
    }
    fn ids(&mut self, ids: &[NodeId]) {
        self.u32(ids.len() as u32);
        for id in ids {
            self.id(*id);
        }
    }
    fn rows(&mut self, rows: &[Vec<NodeId>]) {
        self.u32(rows.len() as u32);
        for row in rows {
            self.ids(row);
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn lookup_id(&mut self, id: LookupId) {
        self.id(id.src);
        self.u64(id.seq);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn id(&mut self) -> Result<Id, DecodeError> {
        Ok(Id(self.u128()?))
    }
    fn ids(&mut self) -> Result<Vec<NodeId>, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_LIST {
            return Err(DecodeError::ListTooLong(n as u64));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.id()?);
        }
        Ok(v)
    }
    fn rows(&mut self) -> Result<Vec<Vec<NodeId>>, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_LIST {
            return Err(DecodeError::ListTooLong(n as u64));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.ids()?);
        }
        Ok(v)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.u64()?)),
        }
    }
    fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }
    fn lookup_id(&mut self) -> Result<LookupId, DecodeError> {
        Ok(LookupId {
            src: self.id()?,
            seq: self.u64()?,
        })
    }
    fn usize_(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        // `usize::MAX` row markers are legitimate (deepest-row request).
        Ok(v as usize)
    }
    fn finish(self) -> Result<(), DecodeError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(rest))
        }
    }
}

const T_JOIN_REQUEST: u8 = 1;
const T_JOIN_REPLY: u8 = 2;
const T_LS_PROBE: u8 = 3;
const T_LS_PROBE_REPLY: u8 = 4;
const T_HEARTBEAT: u8 = 5;
const T_RT_PROBE: u8 = 6;
const T_RT_PROBE_REPLY: u8 = 7;
const T_RT_ROW_REQUEST: u8 = 8;
const T_RT_ROW_REPLY: u8 = 9;
const T_RT_ROW_ANNOUNCE: u8 = 10;
const T_RT_SLOT_REQUEST: u8 = 11;
const T_RT_SLOT_REPLY: u8 = 12;
const T_DISTANCE_PROBE: u8 = 13;
const T_DISTANCE_PROBE_REPLY: u8 = 14;
const T_DISTANCE_REPORT: u8 = 15;
const T_NN_LEAFSET_REQUEST: u8 = 16;
const T_NN_LEAFSET_REPLY: u8 = 17;
const T_NN_ROW_REQUEST: u8 = 18;
const T_NN_ROW_REPLY: u8 = 19;
const T_LOOKUP: u8 = 20;
const T_ACK: u8 = 21;
const T_LEAVING: u8 = 22;

/// Encodes a message to bytes.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    match msg {
        Message::JoinRequest { joiner, rows, hops } => {
            w.u8(T_JOIN_REQUEST);
            w.id(*joiner);
            w.rows(rows);
            w.u32(*hops);
        }
        Message::JoinReply { rows, leaf_set } => {
            w.u8(T_JOIN_REPLY);
            w.rows(rows);
            w.ids(leaf_set);
        }
        Message::LsProbe {
            leaf_set,
            failed,
            trt_hint,
        } => {
            w.u8(T_LS_PROBE);
            w.ids(leaf_set);
            w.ids(failed);
            w.opt_u64(*trt_hint);
        }
        Message::LsProbeReply {
            leaf_set,
            failed,
            trt_hint,
        } => {
            w.u8(T_LS_PROBE_REPLY);
            w.ids(leaf_set);
            w.ids(failed);
            w.opt_u64(*trt_hint);
        }
        Message::Heartbeat { trt_hint } => {
            w.u8(T_HEARTBEAT);
            w.opt_u64(*trt_hint);
        }
        Message::RtProbe { nonce } => {
            w.u8(T_RT_PROBE);
            w.u64(*nonce);
        }
        Message::RtProbeReply { nonce, trt_hint } => {
            w.u8(T_RT_PROBE_REPLY);
            w.u64(*nonce);
            w.opt_u64(*trt_hint);
        }
        Message::RtRowRequest { row } => {
            w.u8(T_RT_ROW_REQUEST);
            w.u64(*row as u64);
        }
        Message::RtRowReply { row, entries } => {
            w.u8(T_RT_ROW_REPLY);
            w.u64(*row as u64);
            w.ids(entries);
        }
        Message::RtRowAnnounce { row, entries } => {
            w.u8(T_RT_ROW_ANNOUNCE);
            w.u64(*row as u64);
            w.ids(entries);
        }
        Message::RtSlotRequest { row, col } => {
            w.u8(T_RT_SLOT_REQUEST);
            w.u64(*row as u64);
            w.u8(*col);
        }
        Message::RtSlotReply { row, col, entry } => {
            w.u8(T_RT_SLOT_REPLY);
            w.u64(*row as u64);
            w.u8(*col);
            match entry {
                None => w.u8(0),
                Some(id) => {
                    w.u8(1);
                    w.id(*id);
                }
            }
        }
        Message::DistanceProbe { nonce } => {
            w.u8(T_DISTANCE_PROBE);
            w.u64(*nonce);
        }
        Message::DistanceProbeReply { nonce } => {
            w.u8(T_DISTANCE_PROBE_REPLY);
            w.u64(*nonce);
        }
        Message::DistanceReport { rtt_us } => {
            w.u8(T_DISTANCE_REPORT);
            w.u64(*rtt_us);
        }
        Message::NnLeafSetRequest => w.u8(T_NN_LEAFSET_REQUEST),
        Message::NnLeafSetReply { nodes } => {
            w.u8(T_NN_LEAFSET_REPLY);
            w.ids(nodes);
        }
        Message::NnRowRequest { row } => {
            w.u8(T_NN_ROW_REQUEST);
            w.u64(*row as u64);
        }
        Message::NnRowReply { row, nodes } => {
            w.u8(T_NN_ROW_REPLY);
            w.u64(*row as u64);
            w.ids(nodes);
        }
        Message::Lookup {
            id,
            key,
            payload,
            hops,
            issued_at_us,
            is_retransmit,
            wants_acks,
        } => {
            w.u8(T_LOOKUP);
            w.lookup_id(*id);
            w.id(*key);
            w.u64(*payload);
            w.u32(*hops);
            w.u64(*issued_at_us);
            w.bool(*is_retransmit);
            w.bool(*wants_acks);
        }
        Message::Ack { id } => {
            w.u8(T_ACK);
            w.lookup_id(*id);
        }
        Message::Leaving => w.u8(T_LEAVING),
    }
    w.buf
}

/// Decodes a message from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input, unknown tags, hostile
/// length prefixes, or trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut r = Reader::new(bytes);
    let msg = match r.u8()? {
        T_JOIN_REQUEST => Message::JoinRequest {
            joiner: r.id()?,
            rows: r.rows()?,
            hops: r.u32()?,
        },
        T_JOIN_REPLY => Message::JoinReply {
            rows: r.rows()?,
            leaf_set: r.ids()?,
        },
        T_LS_PROBE => Message::LsProbe {
            leaf_set: r.ids()?,
            failed: r.ids()?,
            trt_hint: r.opt_u64()?,
        },
        T_LS_PROBE_REPLY => Message::LsProbeReply {
            leaf_set: r.ids()?,
            failed: r.ids()?,
            trt_hint: r.opt_u64()?,
        },
        T_HEARTBEAT => Message::Heartbeat {
            trt_hint: r.opt_u64()?,
        },
        T_RT_PROBE => Message::RtProbe { nonce: r.u64()? },
        T_RT_PROBE_REPLY => Message::RtProbeReply {
            nonce: r.u64()?,
            trt_hint: r.opt_u64()?,
        },
        T_RT_ROW_REQUEST => Message::RtRowRequest { row: r.usize_()? },
        T_RT_ROW_REPLY => Message::RtRowReply {
            row: r.usize_()?,
            entries: r.ids()?,
        },
        T_RT_ROW_ANNOUNCE => Message::RtRowAnnounce {
            row: r.usize_()?,
            entries: r.ids()?,
        },
        T_RT_SLOT_REQUEST => Message::RtSlotRequest {
            row: r.usize_()?,
            col: r.u8()?,
        },
        T_RT_SLOT_REPLY => Message::RtSlotReply {
            row: r.usize_()?,
            col: r.u8()?,
            entry: match r.u8()? {
                0 => None,
                _ => Some(r.id()?),
            },
        },
        T_DISTANCE_PROBE => Message::DistanceProbe { nonce: r.u64()? },
        T_DISTANCE_PROBE_REPLY => Message::DistanceProbeReply { nonce: r.u64()? },
        T_DISTANCE_REPORT => Message::DistanceReport { rtt_us: r.u64()? },
        T_NN_LEAFSET_REQUEST => Message::NnLeafSetRequest,
        T_NN_LEAFSET_REPLY => Message::NnLeafSetReply { nodes: r.ids()? },
        T_NN_ROW_REQUEST => Message::NnRowRequest { row: r.usize_()? },
        T_NN_ROW_REPLY => Message::NnRowReply {
            row: r.usize_()?,
            nodes: r.ids()?,
        },
        T_LOOKUP => Message::Lookup {
            id: r.lookup_id()?,
            key: r.id()?,
            payload: r.u64()?,
            hops: r.u32()?,
            issued_at_us: r.u64()?,
            is_retransmit: r.bool()?,
            wants_acks: r.bool()?,
        },
        T_ACK => Message::Ack { id: r.lookup_id()? },
        T_LEAVING => Message::Leaving,
        t => return Err(DecodeError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

/// The exact encoded size of a message in bytes, without allocating.
///
/// Always equals `encode(msg).len()`; used for byte-level traffic
/// accounting in the simulator.
pub fn encoded_len(msg: &Message) -> usize {
    let ids = |v: &Vec<NodeId>| 4 + 16 * v.len();
    let rows = |r: &Vec<Vec<NodeId>>| 4 + r.iter().map(ids).sum::<usize>();
    let opt = |v: &Option<u64>| if v.is_some() { 9 } else { 1 };
    1 + match msg {
        Message::JoinRequest { rows: r, .. } => 16 + rows(r) + 4,
        Message::JoinReply { rows: r, leaf_set } => rows(r) + ids(leaf_set),
        Message::LsProbe {
            leaf_set,
            failed,
            trt_hint,
        }
        | Message::LsProbeReply {
            leaf_set,
            failed,
            trt_hint,
        } => ids(leaf_set) + ids(failed) + opt(trt_hint),
        Message::Heartbeat { trt_hint } => opt(trt_hint),
        Message::RtProbe { .. } => 8,
        Message::RtProbeReply { trt_hint, .. } => 8 + opt(trt_hint),
        Message::RtRowRequest { .. } => 8,
        Message::RtRowReply { entries, .. } | Message::RtRowAnnounce { entries, .. } => {
            8 + ids(entries)
        }
        Message::RtSlotRequest { .. } => 9,
        Message::RtSlotReply { entry, .. } => 10 + if entry.is_some() { 16 } else { 0 },
        Message::DistanceProbe { .. } | Message::DistanceProbeReply { .. } => 8,
        Message::DistanceReport { .. } => 8,
        Message::NnLeafSetRequest => 0,
        Message::NnLeafSetReply { nodes } => ids(nodes),
        Message::NnRowRequest { .. } => 8,
        Message::NnRowReply { nodes, .. } => 8 + ids(nodes),
        Message::Lookup { .. } => 24 + 16 + 8 + 4 + 8 + 2,
        Message::Ack { .. } => 24,
        Message::Leaving => 0,
    }
}

/// All node identifiers referenced inside a message (used by transports to
/// piggyback address hints so receivers can resolve identifiers to network
/// addresses).
pub fn referenced_node_ids(msg: &Message) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    let mut push = |id: NodeId| {
        if !out.contains(&id) {
            out.push(id);
        }
    };
    match msg {
        Message::JoinRequest { joiner, rows, .. } => {
            push(*joiner);
            for row in rows {
                for &n in row {
                    push(n);
                }
            }
        }
        Message::JoinReply { rows, leaf_set } => {
            for row in rows {
                for &n in row {
                    push(n);
                }
            }
            for &n in leaf_set {
                push(n);
            }
        }
        Message::LsProbe {
            leaf_set, failed, ..
        }
        | Message::LsProbeReply {
            leaf_set, failed, ..
        } => {
            for &n in leaf_set.iter().chain(failed.iter()) {
                push(n);
            }
        }
        Message::RtRowReply { entries, .. } | Message::RtRowAnnounce { entries, .. } => {
            for &n in entries {
                push(n);
            }
        }
        Message::NnLeafSetReply { nodes } | Message::NnRowReply { nodes, .. } => {
            for &n in nodes {
                push(n);
            }
        }
        Message::RtSlotReply {
            entry: Some(id), ..
        } => push(*id),
        Message::Lookup { id, .. } | Message::Ack { id } => push(id.src),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    fn samples() -> Vec<Message> {
        let lid = LookupId {
            src: Id(0xabcdef),
            seq: 42,
        };
        vec![
            Message::JoinRequest {
                joiner: Id(7),
                rows: vec![vec![Id(1), Id(2)], vec![], vec![Id(3)]],
                hops: 5,
            },
            Message::JoinReply {
                rows: vec![vec![Id(9)]],
                leaf_set: vec![Id(10), Id(11)],
            },
            Message::LsProbe {
                leaf_set: vec![Id(1)],
                failed: vec![Id(2), Id(3)],
                trt_hint: Some(30_000_000),
            },
            Message::LsProbeReply {
                leaf_set: vec![],
                failed: vec![],
                trt_hint: None,
            },
            Message::Heartbeat {
                trt_hint: Some(u64::MAX),
            },
            Message::RtProbe { nonce: 99 },
            Message::RtProbeReply {
                nonce: 99,
                trt_hint: None,
            },
            Message::RtRowRequest { row: usize::MAX },
            Message::RtRowReply {
                row: 3,
                entries: vec![Id(5)],
            },
            Message::RtRowAnnounce {
                row: 0,
                entries: vec![Id(6), Id(7)],
            },
            Message::RtSlotRequest { row: 2, col: 15 },
            Message::RtSlotReply {
                row: 2,
                col: 15,
                entry: Some(Id(77)),
            },
            Message::RtSlotReply {
                row: 2,
                col: 0,
                entry: None,
            },
            Message::DistanceProbe { nonce: 1 },
            Message::DistanceProbeReply { nonce: 1 },
            Message::DistanceReport { rtt_us: 1234 },
            Message::NnLeafSetRequest,
            Message::NnLeafSetReply {
                nodes: vec![Id(u128::MAX)],
            },
            Message::NnRowRequest { row: 0 },
            Message::NnRowReply {
                row: 1,
                nodes: vec![],
            },
            Message::Lookup {
                id: lid,
                key: Id(555),
                payload: 777,
                hops: 3,
                issued_at_us: 123456789,
                is_retransmit: true,
                wants_acks: false,
            },
            Message::Ack { id: lid },
            Message::Leaving,
        ]
    }

    #[test]
    fn encoded_len_matches_encode() {
        for msg in samples() {
            assert_eq!(encoded_len(&msg), encode(&msg).len(), "{msg:?}");
        }
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in samples() {
            let bytes = encode(&msg);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        for msg in samples() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                match decode(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(other) => panic!("decoded {other:?} from a {cut}-byte prefix of {msg:?}"),
                }
            }
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode(&[200]), Err(DecodeError::UnknownTag(200)));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Message::RtProbe { nonce: 1 });
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // LsProbe with an absurd leaf-set length.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::ListTooLong(_)) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn referenced_ids_cover_the_payload() {
        let msg = Message::LsProbe {
            leaf_set: vec![Id(1), Id(2)],
            failed: vec![Id(3)],
            trt_hint: None,
        };
        let ids = referenced_node_ids(&msg);
        assert_eq!(ids, vec![Id(1), Id(2), Id(3)]);
        // Duplicates collapse.
        let msg = Message::JoinRequest {
            joiner: Id(1),
            rows: vec![vec![Id(1), Id(1), Id(2)]],
            hops: 0,
        };
        assert_eq!(referenced_node_ids(&msg), vec![Id(1), Id(2)]);
    }
}
