//! 128-bit circular identifier space.
//!
//! Pastry selects nodeIds and keys uniformly at random from the set of
//! 128-bit unsigned integers and maps a key to the active node whose
//! identifier is numerically closest to the key modulo 2^128. Identifiers are
//! also read as sequences of base-2^b digits (most significant first) by the
//! prefix-routing algorithm.

use std::fmt;

/// A 128-bit identifier on the Pastry ring; used for both nodeIds and keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Id(pub u128);

/// A node identifier.
pub type NodeId = Id;
/// An object key.
pub type Key = Id;

impl Id {
    /// Number of digit rows for a given `b` (ceil(128 / b)).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= b <= 8`.
    pub fn rows(b: u8) -> usize {
        assert!((1..=8).contains(&b), "b must be in 1..=8");
        128usize.div_ceil(b as usize)
    }

    /// Draws a uniformly random identifier.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Id {
        Id(rng.gen())
    }

    /// The `row`-th base-2^b digit, most significant first.
    ///
    /// For `b` values that do not divide 128, the last digit is the remaining
    /// low-order bits.
    ///
    /// # Panics
    ///
    /// Panics if `row >= Id::rows(b)`.
    pub fn digit(&self, row: usize, b: u8) -> u8 {
        let rows = Self::rows(b);
        assert!(row < rows, "row {row} out of range for b={b}");
        let hi_bits = (row + 1) * b as usize;
        if hi_bits <= 128 {
            ((self.0 >> (128 - hi_bits)) & ((1u128 << b) - 1)) as u8
        } else {
            let width = 128 - row * b as usize;
            (self.0 & ((1u128 << width) - 1)) as u8
        }
    }

    /// Length of the shared base-2^b digit prefix of `self` and `other`.
    pub fn shared_prefix_len(&self, other: Id, b: u8) -> usize {
        if *self == other {
            return Self::rows(b);
        }
        // The first differing bit determines the first differing digit.
        let xor = self.0 ^ other.0;
        let first_diff_bit = xor.leading_zeros() as usize; // 0..127
        (first_diff_bit / b as usize).min(Self::rows(b) - 1)
    }

    /// Clockwise distance from `self` to `other` (increasing identifiers).
    pub fn cw_dist(&self, other: Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Counter-clockwise distance from `self` to `other`.
    pub fn ccw_dist(&self, other: Id) -> u128 {
        self.0.wrapping_sub(other.0)
    }

    /// Minimal ring distance between `self` and `other`.
    pub fn ring_dist(&self, other: Id) -> u128 {
        let cw = self.cw_dist(other);
        let ccw = self.ccw_dist(other);
        cw.min(ccw)
    }

    /// `true` if `self` lies on the clockwise arc from `a` to `b`, inclusive.
    pub fn on_cw_arc(&self, a: Id, b: Id) -> bool {
        a.cw_dist(*self) <= a.cw_dist(b)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:032x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form: first 8 hex digits, enough to tell nodes apart in logs.
        write!(f, "{:08x}", (self.0 >> 96) as u32)
    }
}

impl From<u128> for Id {
    fn from(v: u128) -> Self {
        Id(v)
    }
}

/// Returns whichever of `a` or `b` is closer to `key` on the ring, breaking
/// exact ties towards the numerically smaller identifier so that all nodes
/// agree on a key's root.
pub fn closer_to(key: Key, a: NodeId, b: NodeId) -> NodeId {
    let da = a.ring_dist(key);
    let db = b.ring_dist(key);
    match da.cmp(&db) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if a.0 <= b.0 {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rows_for_common_b() {
        assert_eq!(Id::rows(1), 128);
        assert_eq!(Id::rows(2), 64);
        assert_eq!(Id::rows(3), 43);
        assert_eq!(Id::rows(4), 32);
        assert_eq!(Id::rows(5), 26);
        assert_eq!(Id::rows(8), 16);
    }

    #[test]
    fn digits_b4_reads_hex_nibbles() {
        let id = Id(0xfedc_ba98_7654_3210_0123_4567_89ab_cdef);
        assert_eq!(id.digit(0, 4), 0xf);
        assert_eq!(id.digit(1, 4), 0xe);
        assert_eq!(id.digit(31, 4), 0xf);
    }

    #[test]
    fn digits_b3_last_digit_is_partial() {
        let id = Id(u128::MAX);
        // 42 full digits of value 7, then 2 remaining bits = 3.
        assert_eq!(id.digit(41, 3), 7);
        assert_eq!(id.digit(42, 3), 3);
    }

    #[test]
    fn digit_reconstructs_id_for_dividing_b() {
        let mut rng = SmallRng::seed_from_u64(1);
        for b in [1u8, 2, 4, 8] {
            let id = Id::random(&mut rng);
            let mut acc: u128 = 0;
            for r in 0..Id::rows(b) {
                acc = (acc << b) | id.digit(r, b) as u128;
            }
            assert_eq!(acc, id.0, "b={b}");
        }
    }

    #[test]
    fn shared_prefix_is_symmetric_and_consistent_with_digits() {
        let mut rng = SmallRng::seed_from_u64(2);
        for b in [1u8, 2, 3, 4, 5] {
            for _ in 0..200 {
                let a = Id::random(&mut rng);
                let x = Id::random(&mut rng);
                let l = a.shared_prefix_len(x, b);
                assert_eq!(l, x.shared_prefix_len(a, b));
                for r in 0..l {
                    assert_eq!(a.digit(r, b), x.digit(r, b));
                }
                if l < Id::rows(b) && a != x {
                    assert_ne!(a.digit(l, b), x.digit(l, b));
                }
            }
        }
    }

    #[test]
    fn shared_prefix_of_self_is_all_rows() {
        let id = Id(42);
        assert_eq!(id.shared_prefix_len(id, 4), 32);
    }

    #[test]
    fn ring_distance_is_symmetric_and_bounded() {
        let a = Id(10);
        let b = Id(u128::MAX - 5);
        assert_eq!(a.ring_dist(b), b.ring_dist(a));
        assert_eq!(a.ring_dist(b), 16);
    }

    #[test]
    fn cw_ccw_wrap() {
        let a = Id(u128::MAX);
        let b = Id(3);
        assert_eq!(a.cw_dist(b), 4);
        assert_eq!(b.ccw_dist(a), 4);
    }

    #[test]
    fn arc_membership() {
        let a = Id(100);
        let b = Id(200);
        assert!(Id(150).on_cw_arc(a, b));
        assert!(Id(100).on_cw_arc(a, b));
        assert!(Id(200).on_cw_arc(a, b));
        assert!(!Id(50).on_cw_arc(a, b));
        // Wrapping arc.
        let c = Id(u128::MAX - 10);
        assert!(Id(5).on_cw_arc(c, Id(20)));
        assert!(!Id(500).on_cw_arc(c, Id(20)));
    }

    #[test]
    fn closer_to_breaks_ties_deterministically() {
        let key = Id(100);
        let a = Id(90);
        let b = Id(110);
        assert_eq!(closer_to(key, a, b), a);
        assert_eq!(closer_to(key, b, a), a);
        assert_eq!(closer_to(key, Id(95), b), Id(95));
    }
}
