//! Per-peer retransmission timeout estimation.
//!
//! Timeouts are estimated as in TCP (Jacobson/Karn) but set more aggressively
//! (§3.2): Pastry has several alternative next hops at every hop except the
//! last, so an occasional spurious retransmission merely exercises a
//! redundant route, whereas a conservative timeout would inflate delay.

use crate::fxhash::FxHashMap;
use crate::id::NodeId;

/// Jacobson-style smoothed RTT estimator for one peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoEstimator {
    srtt_us: f64,
    rttvar_us: f64,
    samples: u32,
}

impl RtoEstimator {
    /// Creates an estimator with no samples.
    pub fn new() -> Self {
        RtoEstimator {
            srtt_us: 0.0,
            rttvar_us: 0.0,
            samples: 0,
        }
    }

    /// Feeds one round-trip sample, microseconds.
    pub fn update(&mut self, sample_us: u64) {
        let s = sample_us as f64;
        if self.samples == 0 {
            self.srtt_us = s;
            self.rttvar_us = s / 2.0;
        } else {
            let err = s - self.srtt_us;
            self.srtt_us += 0.125 * err;
            self.rttvar_us += 0.25 * (err.abs() - self.rttvar_us);
        }
        self.samples = self.samples.saturating_add(1);
    }

    /// Number of samples fed so far.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// The retransmission timeout: `srtt + 4·rttvar` (Jacobson), clamped to
    /// `min_us` from below; `initial_us` when no samples exist. The
    /// aggressiveness comes from the low floor, not from shaving the
    /// variance term — a tighter multiplier fires spuriously on ordinary
    /// delay jitter and floods the network with suspect probes.
    pub fn rto_us(&self, min_us: u64, initial_us: u64) -> u64 {
        if self.samples == 0 {
            return initial_us;
        }
        ((self.srtt_us + 4.0 * self.rttvar_us) as u64).max(min_us)
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// RTO estimators for all peers of a node, with size-bounded pruning.
#[derive(Debug, Clone, Default)]
pub struct RtoTable {
    peers: FxHashMap<NodeId, RtoEstimator>,
}

impl RtoTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a sample for a peer.
    pub fn update(&mut self, peer: NodeId, sample_us: u64) {
        self.peers.entry(peer).or_default().update(sample_us);
        // Bound memory: drop a stale entry when the table grows large. The
        // exact victim does not matter; estimators rebuild in one sample.
        if self.peers.len() > 4096 {
            if let Some(&k) = self.peers.keys().next() {
                self.peers.remove(&k);
            }
        }
    }

    /// Current timeout for a peer.
    pub fn rto_us(&self, peer: NodeId, min_us: u64, initial_us: u64) -> u64 {
        self.peers
            .get(&peer)
            .map(|e| e.rto_us(min_us, initial_us))
            .unwrap_or(initial_us)
    }

    /// Drops a departed peer.
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    #[test]
    fn first_sample_initialises() {
        let mut e = RtoEstimator::new();
        assert_eq!(e.rto_us(10, 999), 999, "initial timeout before samples");
        e.update(100_000);
        // srtt = 100ms, rttvar = 50ms → rto = 300ms.
        assert_eq!(e.rto_us(10, 999), 300_000);
    }

    #[test]
    fn steady_samples_converge_to_tight_rto() {
        let mut e = RtoEstimator::new();
        for _ in 0..100 {
            e.update(50_000);
        }
        let rto = e.rto_us(1_000, 0);
        assert!(rto < 70_000, "steady RTT gives a tight timeout, got {rto}");
        assert!(rto >= 50_000);
    }

    #[test]
    fn variance_widens_rto() {
        let mut steady = RtoEstimator::new();
        let mut jittery = RtoEstimator::new();
        for i in 0..100u64 {
            steady.update(50_000);
            jittery.update(if i % 2 == 0 { 20_000 } else { 80_000 });
        }
        assert!(jittery.rto_us(0, 0) > steady.rto_us(0, 0));
    }

    #[test]
    fn floor_applies() {
        let mut e = RtoEstimator::new();
        e.update(10);
        assert_eq!(e.rto_us(20_000, 0), 20_000);
    }

    #[test]
    fn table_tracks_peers_independently() {
        let mut t = RtoTable::new();
        t.update(Id(1), 10_000);
        t.update(Id(2), 90_000);
        assert!(t.rto_us(Id(1), 0, 0) < t.rto_us(Id(2), 0, 0));
        assert_eq!(t.rto_us(Id(3), 0, 777), 777);
        t.forget(Id(1));
        assert_eq!(t.rto_us(Id(1), 0, 777), 777);
    }
}
