//! A fast non-cryptographic hasher for simulator-internal keys.
//!
//! The protocol state machine and the harness key hash maps by node
//! identifiers (random 128-bit values) and lookup ids (node id + sequence
//! number) on the per-event hot path. The standard library's default SipHash
//! pays for DoS resistance the simulator does not need — all keys are
//! generated internally from a seeded RNG. This is the multiply-rotate scheme
//! used by the Rust compiler itself ("FxHash"): a couple of arithmetic
//! instructions per 8-byte word.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the rustc hasher (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher. Not DoS resistant by design.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s.
#[derive(Debug, Default, Clone)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&42u128), hash_of(&42u128));
        assert_eq!(hash_of(&(7u64, 9u64)), hash_of(&(7u64, 9u64)));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u128 {
            seen.insert(hash_of(&(i << 64 | i)));
        }
        assert!(seen.len() > 9_990, "only {} distinct hashes", seen.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u128, usize> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i * 31, i as usize);
        }
        for i in 0..1000u128 {
            assert_eq!(m.get(&(i * 31)), Some(&(i as usize)));
        }
    }

    #[test]
    fn partial_writes_cover_all_bytes() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..])
        );
    }
}
