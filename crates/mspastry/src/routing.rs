//! The Pastry routing function (`route_i` in Figure 2).
//!
//! Routing forwards a message to a node that matches a progressively longer
//! prefix with the destination key; once the key falls within the leaf set,
//! the member numerically closest to the key is selected. Failed or suspected
//! nodes can be excluded, in which case routing falls back to any known node
//! that is strictly closer to the key and preserves the prefix length — this
//! is how MSPastry routes around missing routing-table entries and missed
//! per-hop acks.

use crate::id::{Key, NodeId};
use crate::leaf_set::LeafSet;
use crate::routing_table::RoutingTable;

/// Result of one routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// This node is the destination (`receive_root` in Figure 2).
    Local,
    /// Forward to `next`.
    Forward {
        /// The selected next hop.
        next: NodeId,
        /// The primary routing-table slot was empty (passive-repair
        /// opportunity: ask `next` for an entry for this slot).
        empty_slot: Option<(usize, u8)>,
    },
}

/// Computes the next hop for `key` at the node owning `rt` and `ls`,
/// excluding nodes for which `excluded` returns `true`.
pub fn route(
    rt: &RoutingTable,
    ls: &LeafSet,
    key: Key,
    excluded: &dyn Fn(NodeId) -> bool,
) -> NextHop {
    let own = rt.own();
    if ls.covers(key) {
        let next = ls.closest_to(key, excluded);
        if next == own {
            return NextHop::Local;
        }
        return NextHop::Forward {
            next,
            empty_slot: None,
        };
    }
    let b = key_prefix_b(rt);
    let r = own.shared_prefix_len(key, b);
    let col = key.digit(r, b);
    let mut empty_slot = None;
    match rt.get(r, col) {
        Some(e) if !excluded(e.id) => {
            return NextHop::Forward {
                next: e.id,
                empty_slot: None,
            };
        }
        Some(_) => {}
        None => empty_slot = Some((r, col)),
    }
    // Rare case: route around the missing/excluded entry with any known node
    // strictly closer to the key that preserves the prefix length.
    let own_dist = own.ring_dist(key);
    let mut best: Option<(usize, u128, NodeId)> = None;
    let candidates = rt.entries().map(|e| e.id).chain(ls.members());
    for j in candidates {
        if excluded(j) || j == own {
            continue;
        }
        let spl = j.shared_prefix_len(key, b);
        if spl < r {
            continue;
        }
        let dist = j.ring_dist(key);
        if dist >= own_dist {
            continue;
        }
        let cand = (spl, dist, j);
        best = Some(match best {
            None => cand,
            Some(cur) => {
                // Prefer longer prefix, then smaller ring distance, then
                // smaller id for determinism.
                if (
                    cand.0,
                    std::cmp::Reverse(cand.1),
                    std::cmp::Reverse(cand.2 .0),
                ) > (cur.0, std::cmp::Reverse(cur.1), std::cmp::Reverse(cur.2 .0))
                {
                    cand
                } else {
                    cur
                }
            }
        });
    }
    match best {
        Some((_, _, next)) => NextHop::Forward { next, empty_slot },
        None => NextHop::Local,
    }
}

fn key_prefix_b(rt: &RoutingTable) -> u8 {
    // Recover b from the table geometry (cols = 2^b).
    rt.col_count().trailing_zeros() as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Builds perfect routing state for `own` given the full membership.
    fn perfect_state(own: NodeId, all: &[NodeId], b: u8, half: usize) -> (RoutingTable, LeafSet) {
        let mut rt = RoutingTable::new(own, b);
        let mut ls = LeafSet::new(own, half);
        for &n in all {
            if n != own {
                rt.offer(n, 100);
                ls.add(n);
            }
        }
        (rt, ls)
    }

    fn true_root(all: &[NodeId], key: Key) -> NodeId {
        all.iter()
            .copied()
            .reduce(|a, b| crate::id::closer_to(key, a, b))
            .unwrap()
    }

    #[test]
    fn routes_reach_the_true_root_with_perfect_state() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 64;
        let all: Vec<NodeId> = (0..n).map(|_| Id::random(&mut rng)).collect();
        let states: Vec<(RoutingTable, LeafSet)> =
            all.iter().map(|&o| perfect_state(o, &all, 4, 8)).collect();
        let index = |id: NodeId| all.iter().position(|&x| x == id).unwrap();
        for k in 0..200 {
            let key = Id::random(&mut rng);
            let mut cur = all[k % n];
            let mut hops = 0;
            loop {
                let (rt, ls) = &states[index(cur)];
                match route(rt, ls, key, &|_| false) {
                    NextHop::Local => break,
                    NextHop::Forward { next, .. } => {
                        assert_ne!(next, cur);
                        cur = next;
                        hops += 1;
                        assert!(hops < 64, "routing loop for key {key:?}");
                    }
                }
            }
            assert_eq!(cur, true_root(&all, key), "key {key:?}");
            assert!(hops <= 8, "too many hops: {hops}");
        }
    }

    #[test]
    fn hop_count_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(43);
        let n = 256;
        let all: Vec<NodeId> = (0..n).map(|_| Id::random(&mut rng)).collect();
        let states: Vec<(RoutingTable, LeafSet)> =
            all.iter().map(|&o| perfect_state(o, &all, 4, 8)).collect();
        let index = |id: NodeId| all.iter().position(|&x| x == id).unwrap();
        let mut total_hops = 0usize;
        let trials = 200;
        for k in 0..trials {
            let key = Id::random(&mut rng);
            let mut cur = all[k % n];
            loop {
                let (rt, ls) = &states[index(cur)];
                match route(rt, ls, key, &|_| false) {
                    NextHop::Local => break,
                    NextHop::Forward { next, .. } => {
                        cur = next;
                        total_hops += 1;
                    }
                }
            }
        }
        let avg = total_hops as f64 / trials as f64;
        // Expected ≈ 15/16 · log16(256) = 1.875; perfect leaf sets shorten
        // the tail, so accept a generous band.
        assert!((1.0..3.0).contains(&avg), "avg hops {avg}");
    }

    #[test]
    fn leaf_set_coverage_short_circuits() {
        let own = Id(1000);
        let all = [own, Id(900), Id(1100)];
        let (rt, ls) = perfect_state(own, &all, 4, 2);
        assert_eq!(route(&rt, &ls, Id(1001), &|_| false), NextHop::Local);
        assert_eq!(
            route(&rt, &ls, Id(1099), &|_| false),
            NextHop::Forward {
                next: Id(1100),
                empty_slot: None
            }
        );
    }

    #[test]
    fn exclusion_reroutes_to_alternative() {
        let own = Id(1000);
        let all = [own, Id(900), Id(1100)];
        let (rt, ls) = perfect_state(own, &all, 4, 2);
        // Root for 1099 is 1100; with 1100 excluded the closest remaining is
        // own (dist 99 vs 900's dist 199).
        let hop = route(&rt, &ls, Id(1099), &|n| n == Id(1100));
        assert_eq!(hop, NextHop::Local);
    }

    #[test]
    fn empty_slot_is_reported_for_passive_repair() {
        let own = Id(0x1000_0000_0000_0000_0000_0000_0000_0000u128);
        let mut rt = RoutingTable::new(own, 4);
        let mut ls = LeafSet::new(own, 1);
        // Non-overlapping leaf set near own so it does not cover the key.
        ls.add(Id(own.0 + 1));
        ls.add(Id(own.0 - 1));
        // Key starts with digit 8; the only known strictly-closer node starts
        // with digit 7, so the primary slot (row 0, col 8) is empty and the
        // fallback must report it for passive repair.
        let key = Id(0x8000_0000_0000_0000_0000_0000_0000_0001u128);
        let closer = Id(0x7fff_ffff_ffff_ffff_ffff_ffff_ffff_ffffu128);
        rt.offer(closer, 50);
        let hop = route(&rt, &ls, key, &|_| false);
        match hop {
            NextHop::Forward { next, empty_slot } => {
                assert_eq!(next, closer);
                assert_eq!(empty_slot, Some((0, 8)));
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn no_candidates_means_local() {
        let own = Id(5);
        let rt = RoutingTable::new(own, 4);
        let ls = LeafSet::new(own, 2);
        assert_eq!(
            route(&rt, &ls, Id(u128::MAX / 2), &|_| false),
            NextHop::Local
        );
    }

    #[test]
    fn fallback_never_selects_a_farther_node() {
        let mut rng = SmallRng::seed_from_u64(45);
        for _ in 0..100 {
            let own = Id::random(&mut rng);
            let key = Id::random(&mut rng);
            let mut rt = RoutingTable::new(own, 4);
            let mut ls = LeafSet::new(own, 4);
            for _ in 0..20 {
                let n = Id::random(&mut rng);
                rt.offer(n, 10);
                ls.add(n);
            }
            // Exclude the primary choice to force the fallback path.
            let b = 4;
            let r = own.shared_prefix_len(key, b);
            let primary = rt.get(r, key.digit(r, b)).map(|e| e.id);
            let hop = route(&rt, &ls, key, &|n| Some(n) == primary);
            if let NextHop::Forward { next, .. } = hop {
                if !ls.covers(key) {
                    assert!(next.ring_dist(key) < own.ring_dist(key));
                    assert!(next.shared_prefix_len(key, b) >= r);
                }
            }
        }
    }
}
