//! Reliable routing (§3.2): per-hop acks, retransmission with TCP-style
//! estimated timeouts, rerouting around silent nodes, and the temporary
//! exclusion of suspects from route selection.
//!
//! Every forwarded lookup arms a one-shot `AckTimeout`; a missed ack probes
//! the silent next hop, retransmits to the key's root with backoff, or
//! excludes the suspect and exploits a redundant route. Nodes are only
//! *suspected* here — confirming a failure is the consistency layer's job.

use crate::diag::ProbeCause;
use crate::events::{Action, DropReason, Effects, TimerKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::id::{Key, NodeId};
use crate::messages::{LookupId, Message, Payload};
use crate::node::Node;
use crate::probes::ProbeKind;
use crate::routing::{route, NextHop};
use crate::rto::RtoTable;
use obs::{HopKind, NO_PEER};
use std::collections::VecDeque;

pub(crate) const SEEN_CAP: usize = 16_384;

/// A lookup buffered or in flight at this node, awaiting a per-hop ack.
#[derive(Debug, Clone)]
pub(crate) struct PendingLookup {
    pub(crate) key: Key,
    pub(crate) payload: Payload,
    pub(crate) hops: u32,
    pub(crate) issued_at_us: u64,
    pub(crate) excluded: Vec<NodeId>,
    pub(crate) attempt: u32,
    /// How many times the lookup was re-routed around a suspect (excluding
    /// same-root retransmissions, which have their own budget).
    pub(crate) reroutes: u32,
    pub(crate) next: NodeId,
    pub(crate) sent_at_us: u64,
}

/// A lookup buffered while the node is still joining.
#[derive(Debug, Clone)]
pub(crate) struct BufferedLookup {
    pub(crate) id: LookupId,
    pub(crate) key: Key,
    pub(crate) payload: Payload,
    pub(crate) hops: u32,
    pub(crate) issued_at_us: u64,
    pub(crate) wants_acks: bool,
}

/// Lookup-forwarding state owned by the reliability layer.
#[derive(Debug)]
pub(crate) struct Reliability {
    pub(crate) suspected: FxHashSet<NodeId>,
    pub(crate) pending: FxHashMap<LookupId, PendingLookup>,
    pub(crate) seen: FxHashSet<LookupId>,
    pub(crate) seen_order: VecDeque<LookupId>,
    pub(crate) buffered: Vec<BufferedLookup>,
    pub(crate) lookup_seq: u64,
    pub(crate) rtos: RtoTable,
}

impl Reliability {
    pub(crate) fn new() -> Self {
        Reliability {
            suspected: FxHashSet::default(),
            pending: FxHashMap::default(),
            seen: FxHashSet::default(),
            seen_order: VecDeque::new(),
            buffered: Vec::new(),
            lookup_seq: 0,
            rtos: RtoTable::new(),
        }
    }

    /// Records a lookup id in the capped duplicate-suppression window.
    pub(crate) fn note_seen(&mut self, id: LookupId) {
        if self.seen.insert(id) {
            self.seen_order.push_back(id);
            while self.seen_order.len() > SEEN_CAP {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }
}

impl Node {
    // ----- local lookups ----------------------------------------------------

    pub(crate) fn on_local_lookup(&mut self, key: Key, payload: Payload, fx: &mut Effects) {
        self.reliability.lookup_seq += 1;
        let id = LookupId {
            src: self.ctx.id,
            seq: self.reliability.lookup_seq,
        };
        self.reliability.note_seen(id);
        if self.ctx.obs.sampled(id) {
            let ev = self.ctx.hop_ev(id, HopKind::Issue, NO_PEER, 0, 0, 0, "");
            self.ctx.obs.hop(ev);
        }
        if !self.ctx.active {
            self.buffer_lookup(
                BufferedLookup {
                    id,
                    key,
                    payload,
                    hops: 0,
                    issued_at_us: self.ctx.now_us,
                    wants_acks: true,
                },
                fx,
            );
            return;
        }
        self.route_lookup(
            id,
            key,
            payload,
            0,
            self.ctx.now_us,
            Vec::new(),
            0,
            0,
            true,
            false,
            fx,
        );
    }

    pub(crate) fn buffer_lookup(&mut self, bl: BufferedLookup, fx: &mut Effects) {
        if self.reliability.buffered.len() >= self.ctx.cfg.join_buffer_cap {
            let reason = DropReason::BufferOverflow;
            let ev = self.ctx.hop_ev(
                bl.id,
                HopKind::Drop,
                NO_PEER,
                bl.hops,
                0,
                0,
                reason.as_str(),
            );
            self.ctx.obs.drop_event(reason, ev);
            fx.actions.push(Action::LookupDropped { id: bl.id, reason });
            return;
        }
        self.reliability.buffered.push(bl);
    }

    /// Routes every lookup buffered while the node was joining (called once,
    /// on activation).
    pub(crate) fn flush_buffered(&mut self, fx: &mut Effects) {
        let buffered = std::mem::take(&mut self.reliability.buffered);
        for bl in buffered {
            self.route_lookup(
                bl.id,
                bl.key,
                bl.payload,
                bl.hops,
                bl.issued_at_us,
                Vec::new(),
                0,
                0,
                bl.wants_acks,
                false,
                fx,
            );
        }
    }

    // ----- forwarded lookups and acks ---------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_lookup(
        &mut self,
        from: NodeId,
        id: LookupId,
        key: Key,
        payload: Payload,
        hops: u32,
        issued_at_us: u64,
        wants_acks: bool,
        fx: &mut Effects,
    ) {
        if self.ctx.cfg.per_hop_acks && wants_acks {
            self.send(from, Message::Ack { id }, fx);
        }
        if self.reliability.seen.contains(&id) {
            return; // duplicate copy of a rerouted lookup
        }
        self.reliability.note_seen(id);
        if !self.ctx.active {
            self.buffer_lookup(
                BufferedLookup {
                    id,
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    wants_acks,
                },
                fx,
            );
            return;
        }
        self.route_lookup(
            id,
            key,
            payload,
            hops,
            issued_at_us,
            Vec::new(),
            0,
            0,
            wants_acks,
            false,
            fx,
        );
    }

    pub(crate) fn on_ack(&mut self, from: NodeId, id: LookupId) {
        if let Some(p) = self.reliability.pending.remove(&id) {
            let rtt = self.ctx.now_us.saturating_sub(p.sent_at_us);
            if p.next == from && p.attempt == 0 {
                // Karn's rule: only sample unambiguous exchanges.
                self.ctx.obs.rtt_sample(rtt);
                self.reliability.rtos.update(from, rtt);
            }
            if self.ctx.obs.sampled(id) {
                let ev = self
                    .ctx
                    .hop_ev(id, HopKind::Ack, from.0, p.hops, p.attempt, rtt, "");
                self.ctx.obs.hop(ev);
            }
        } else {
            // Stray or duplicate ack: the pending entry was already resolved
            // (acked, rerouted, or stranded-rerouted). Count it; never crash.
            self.ctx.obs.stray_ack();
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn route_lookup(
        &mut self,
        id: LookupId,
        key: Key,
        payload: Payload,
        hops: u32,
        issued_at_us: u64,
        excluded: Vec<NodeId>,
        attempt: u32,
        reroutes: u32,
        wants_acks: bool,
        is_retransmit: bool,
        fx: &mut Effects,
    ) {
        let excl = self.excluded_set(&excluded);
        let (next, empty_slot) = match route(&self.rt, &self.ls, key, &|n| excl.contains(&n)) {
            NextHop::Local => {
                if !self.ctx.active || !self.ls.covers(key) {
                    let reason = DropReason::NoRoute;
                    let ev = self.ctx.hop_ev(
                        id,
                        HopKind::Drop,
                        NO_PEER,
                        hops,
                        attempt,
                        0,
                        reason.as_str(),
                    );
                    self.ctx.obs.drop_event(reason, ev);
                    fx.actions.push(Action::LookupDropped { id, reason });
                    return;
                }
                let root = self.ls.closest_to(key, |_| false);
                if root == self.ctx.id {
                    if self.ctx.obs.sampled(id) {
                        let ev =
                            self.ctx
                                .hop_ev(id, HopKind::Deliver, NO_PEER, hops, attempt, 0, "");
                        self.ctx.obs.hop(ev);
                    }
                    fx.actions.push(Action::Deliver {
                        id,
                        key,
                        payload,
                        hops,
                        issued_at_us,
                        replica_set: self.replica_set(key),
                    });
                    return;
                }
                // A strictly closer leaf-set member exists but is excluded,
                // i.e. merely *suspected* — not confirmed dead (confirmed
                // failures leave the leaf set). Delivering here would be
                // speculative and risks an incorrect delivery whenever the
                // suspect is alive but silent (e.g. a transient outage).
                // Forward to the suspect root instead: either it answers
                // (clearing the suspicion) or its failure probe exhausts and
                // mark_faulty re-routes the lookup against the repaired set.
                (root, None)
            }
            NextHop::Forward { next, empty_slot } => (next, empty_slot),
        };
        self.send(
            next,
            Message::Lookup {
                id,
                key,
                payload,
                hops: hops + 1,
                issued_at_us,
                is_retransmit,
                wants_acks,
            },
            fx,
        );
        if self.ctx.cfg.per_hop_acks && wants_acks {
            let rto = self.reliability.rtos.rto_us(
                next,
                self.ctx.cfg.ack_rto_min_us,
                self.ctx.cfg.ack_rto_initial_us,
            );
            self.ctx.obs.ack_rto(rto);
            if self.ctx.obs.sampled(id) {
                let ev = self
                    .ctx
                    .hop_ev(id, HopKind::Forward, next.0, hops + 1, attempt, rto, "");
                self.ctx.obs.hop(ev);
            }
            self.reliability.pending.insert(
                id,
                PendingLookup {
                    key,
                    payload,
                    hops,
                    issued_at_us,
                    excluded,
                    attempt,
                    reroutes,
                    next,
                    sent_at_us: self.ctx.now_us,
                },
            );
            fx.timer(
                rto,
                TimerKind::AckTimeout {
                    lookup: id,
                    attempt,
                },
            );
        }
        if let Some((row, col)) = empty_slot {
            // Passive routing-table repair (§2).
            self.send(next, Message::RtSlotRequest { row, col }, fx);
        }
    }

    pub(crate) fn on_ack_timeout(&mut self, id: LookupId, attempt: u32, fx: &mut Effects) {
        let Some(p) = self.reliability.pending.get(&id) else {
            return;
        };
        if p.attempt != attempt {
            return; // stale timer from an earlier attempt
        }
        let Some(p) = self.reliability.pending.remove(&id) else {
            return;
        };
        let missed = p.next;
        // Probe the silent node; it is excluded from routing until it
        // answers, but only marked faulty if probing exhausts (§3.2).
        let kind = if self.ls.contains(missed) {
            ProbeKind::LeafSet
        } else {
            ProbeKind::Liveness
        };
        if self.probe(missed, kind, true, fx) {
            self.ctx.obs.cause(ProbeCause::AckSuspect);
        }
        // Final hop: `missed` is (still) the key's root from our view. There
        // is no alternative node that could correctly deliver, so retransmit
        // to the same root with a backed-off timeout; the probe decides its
        // fate (a live-but-lossy root gets the copy in ~RTO, a dead one is
        // removed from the leaf set within the probe budget, after which
        // routing resolves against the repaired state).
        let is_final_hop = !self.consistency.failed.contains(&missed)
            && self.ls.contains(missed)
            && self.ls.covers(p.key)
            && self.ls.closest_to(p.key, |_| false) == missed;
        if is_final_hop {
            let attempt = p.attempt + 1;
            // Retransmission budget: with the paper's default, a few quick
            // retries to the same root (an incorrect delivery then requires
            // several independent losses in a row); with the
            // consistency-over-latency variant, keep retrying until the
            // root's failure probe resolves (mark_faulty re-routes stranded
            // lookups the moment the root is declared dead). The short
            // budget is only safe when excluding the root leaves an
            // alternative candidate; if the reroute would fall back to a
            // speculative self-delivery (every closer member suspected, none
            // confirmed dead), use the extended budget so the backed-off
            // retransmissions outlast the probe verdict.
            let reroute_self_delivers = {
                let mut excl = self.excluded_set(&p.excluded);
                excl.insert(missed);
                matches!(
                    route(&self.rt, &self.ls, p.key, &|n| excl.contains(&n)),
                    NextHop::Local
                )
            };
            let budget = if self.ctx.cfg.exclude_root_on_ack_timeout && !reroute_self_delivers {
                self.ctx.cfg.root_retx_attempts
            } else {
                4 + 3 * (self.ctx.cfg.max_probe_retries + 1)
            };
            if attempt <= budget {
                self.ctx.obs.final_retx();
                self.ctx.obs.retx_attempt(attempt);
                let rto = self
                    .reliability
                    .rtos
                    .rto_us(
                        missed,
                        self.ctx.cfg.ack_rto_min_us,
                        self.ctx.cfg.ack_rto_initial_us,
                    )
                    .saturating_mul(1 << attempt.min(3));
                let rto = if attempt >= 4 {
                    rto.max(self.ctx.cfg.t_o_us / 3)
                } else {
                    rto
                };
                if self.ctx.obs.sampled(id) {
                    let ev = self.ctx.hop_ev(
                        id,
                        HopKind::Retransmit,
                        missed.0,
                        p.hops + 1,
                        attempt,
                        rto,
                        "final-hop",
                    );
                    self.ctx.obs.hop(ev);
                }
                self.send(
                    missed,
                    Message::Lookup {
                        id,
                        key: p.key,
                        payload: p.payload,
                        hops: p.hops + 1,
                        issued_at_us: p.issued_at_us,
                        is_retransmit: true,
                        wants_acks: true,
                    },
                    fx,
                );
                self.reliability.pending.insert(
                    id,
                    PendingLookup {
                        attempt,
                        sent_at_us: self.ctx.now_us,
                        ..p
                    },
                );
                fx.timer(
                    rto,
                    TimerKind::AckTimeout {
                        lookup: id,
                        attempt,
                    },
                );
                return;
            }
            if !self.ctx.cfg.exclude_root_on_ack_timeout {
                let reason = DropReason::TooManyReroutes;
                let ev = self.ctx.hop_ev(
                    id,
                    HopKind::Drop,
                    missed.0,
                    p.hops,
                    p.attempt,
                    0,
                    reason.as_str(),
                );
                self.ctx.obs.drop_event(reason, ev);
                fx.actions.push(Action::LookupDropped { id, reason });
                return;
            }
            // Budget exhausted: fall through to exclude the root and deliver
            // at the now-closest node.
        }
        // Intermediate hop (or the root is already gone): exclude the silent
        // node and exploit a redundant route. Only genuine reroutes count
        // against the budget — same-root retransmissions above must not
        // starve a lookup of its redundant routes.
        if p.reroutes + 1 > self.ctx.cfg.ack_max_reroutes {
            let reason = DropReason::TooManyReroutes;
            let ev = self.ctx.hop_ev(
                id,
                HopKind::Drop,
                missed.0,
                p.hops,
                p.attempt,
                0,
                reason.as_str(),
            );
            self.ctx.obs.drop_event(reason, ev);
            fx.actions.push(Action::LookupDropped { id, reason });
            return;
        }
        self.ctx.obs.reroute();
        if self.ctx.obs.sampled(id) {
            let ev = self
                .ctx
                .hop_ev(id, HopKind::Exclude, missed.0, p.hops, p.attempt, 0, "");
            self.ctx.obs.hop(ev);
        }
        let mut excluded = p.excluded;
        self.reliability.suspected.insert(missed);
        if !excluded.contains(&missed) {
            excluded.push(missed);
        }
        self.route_lookup(
            id,
            p.key,
            p.payload,
            p.hops,
            p.issued_at_us,
            excluded,
            p.attempt + 1,
            p.reroutes + 1,
            true,
            true,
            fx,
        );
    }

    pub(crate) fn excluded_set(&self, extra: &[NodeId]) -> FxHashSet<NodeId> {
        let mut s: FxHashSet<NodeId> = self.reliability.suspected.clone();
        s.extend(extra.iter().copied());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::events::Event;
    use crate::id::Id;

    #[test]
    fn seen_window_is_capped_and_evicts_oldest() {
        let mut r = Reliability::new();
        let id = |seq| LookupId { src: Id(1), seq };
        for seq in 0..(SEEN_CAP as u64 + 5) {
            r.note_seen(id(seq));
        }
        assert_eq!(r.seen.len(), SEEN_CAP);
        assert!(!r.seen.contains(&id(0)), "oldest entries evicted");
        assert!(r.seen.contains(&id(SEEN_CAP as u64 + 4)));
        // Re-noting a seen id must not grow the order queue.
        r.note_seen(id(SEEN_CAP as u64 + 4));
        assert_eq!(r.seen_order.len(), SEEN_CAP);
    }

    #[test]
    fn stray_ack_is_counted_not_fatal() {
        let run = obs::Obs::new(0.0, 16, false);
        let mut n = crate::node::Node::with_obs(
            Id(1),
            Config {
                nearest_neighbor_join: false,
                ..Config::default()
            },
            run.clone(),
        );
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        // An ack for a lookup this node never forwarded.
        let id = LookupId { src: Id(9), seq: 3 };
        n.handle(
            10,
            Event::Receive {
                from: Id(9),
                msg: Message::Ack { id },
            },
            &mut fx,
        );
        assert_eq!(run.snapshot().counter("lookup.stray-ack"), 1);
    }

    #[test]
    fn stale_attempt_ack_timeout_is_ignored() {
        let mut n = crate::node::Node::new(
            Id(1),
            Config {
                nearest_neighbor_join: false,
                ..Config::default()
            },
        );
        let mut fx = Effects::new();
        n.handle(0, Event::Join { seed: None }, &mut fx);
        let _ = fx.drain();
        // No pending entry at all: the timer must be a no-op, not a panic.
        n.handle(
            5,
            Event::Timer(TimerKind::AckTimeout {
                lookup: LookupId { src: Id(1), seq: 1 },
                attempt: 0,
            }),
            &mut fx,
        );
        assert!(fx.drain().is_empty());
    }
}
