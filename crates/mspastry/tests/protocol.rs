//! Protocol behaviour tests driving the public `Node::handle` surface.
//!
//! These started life as `node.rs`-internal unit tests; after the protocol
//! core was layered into per-mechanism modules they were rewritten against
//! the public API only (events in, actions out), so the internal layout can
//! change freely without touching them. Timer-free message pumping only —
//! the full asynchronous behaviour is exercised by the simulator tests.

use mspastry::{
    Action, Config, DropReason, Effects, Event, Id, LookupId, Message, Node, NodeId, TimerKind,
};

fn cfg() -> Config {
    Config {
        nearest_neighbor_join: false,
        ..Config::default()
    }
}

/// Delivers every queued send between nodes until quiescence, returning the
/// non-send actions. Advancing a fake clock and firing timers is out of
/// scope here.
fn pump(nodes: &mut [Node], mut queue: Vec<(NodeId, NodeId, Message)>, now: u64) -> Vec<Action> {
    let mut others = Vec::new();
    let mut guard = 0;
    while let Some((from, to, msg)) = queue.pop() {
        guard += 1;
        assert!(guard < 10_000, "message storm");
        let Some(node) = nodes.iter_mut().find(|n| n.id() == to) else {
            continue;
        };
        let mut fx = Effects::new();
        node.handle(now, Event::Receive { from, msg }, &mut fx);
        for a in fx.drain() {
            match a {
                Action::Send { to: t, msg } => queue.push((to, t, msg)),
                other => others.push(other),
            }
        }
    }
    others
}

fn start_join(node: &mut Node, seed: Option<NodeId>, now: u64) -> Vec<(NodeId, NodeId, Message)> {
    let mut fx = Effects::new();
    node.handle(now, Event::Join { seed }, &mut fx);
    let id = node.id();
    fx.drain()
        .into_iter()
        .filter_map(|a| match a {
            Action::Send { to, msg } => Some((id, to, msg)),
            _ => None,
        })
        .collect()
}

/// Fires one event on `node` and returns the drained actions.
fn step(node: &mut Node, now: u64, event: Event) -> Vec<Action> {
    let mut fx = Effects::new();
    node.handle(now, event, &mut fx);
    fx.drain()
}

/// Builds a small active overlay of three nodes for handler tests.
fn trio() -> (Vec<Node>, [NodeId; 3]) {
    let ids = [Id(10 << 100), Id(200 << 100), Id(300 << 100)];
    let mut a = Node::new(ids[0], cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let mut b = Node::new(ids[1], cfg());
    let qb = start_join(&mut b, Some(ids[0]), 1);
    let mut nodes = vec![a, b];
    pump(&mut nodes, qb, 2);
    let mut c = Node::new(ids[2], cfg());
    let qc = start_join(&mut c, Some(ids[0]), 3);
    nodes.push(c);
    pump(&mut nodes, qc, 4);
    assert!(nodes.iter().all(|n| n.is_active()));
    (nodes, ids)
}

#[test]
fn bootstrap_node_activates_immediately() {
    let mut n = Node::new(Id(1), cfg());
    let actions = step(&mut n, 0, Event::Join { seed: None });
    assert!(n.is_active());
    assert!(actions.iter().any(|a| matches!(a, Action::BecameActive)));
}

#[test]
fn two_node_overlay_forms_and_routes() {
    let a_id = Id(10 << 100);
    let b_id = Id(200 << 100);
    let mut a = Node::new(a_id, cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let mut b = Node::new(b_id, cfg());
    let q = start_join(&mut b, Some(a_id), 1);
    let mut nodes = vec![a, b];
    let actions = pump(&mut nodes, q, 2);
    assert!(actions.iter().any(|a| matches!(a, Action::BecameActive)));
    let (a, b) = (&nodes[0], &nodes[1]);
    assert!(a.is_active() && b.is_active());
    assert!(a.leaf_set().contains(b_id));
    assert!(b.leaf_set().contains(a_id));

    // A lookup for a key near b delivered at b.
    let key = Id((200 << 100) + 5);
    let sends: Vec<(NodeId, NodeId, Message)> =
        step(&mut nodes[0], 10, Event::Lookup { key, payload: 7 })
            .into_iter()
            .filter_map(|act| match act {
                Action::Send { to, msg } => Some((a_id, to, msg)),
                _ => None,
            })
            .collect();
    assert!(!sends.is_empty());
    let actions = pump(&mut nodes, sends, 11);
    let delivered = actions
        .iter()
        .any(|act| matches!(act, Action::Deliver { key: k, payload: 7, .. } if *k == key));
    assert!(delivered, "lookup must be delivered at b; got {actions:?}");
}

#[test]
fn lookup_while_joining_is_buffered_and_flushed() {
    let a_id = Id(10 << 100);
    let b_id = Id(200 << 100);
    let mut a = Node::new(a_id, cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let mut b = Node::new(b_id, cfg());
    // Issue a lookup before b joins: it must not be lost or delivered.
    let actions = step(
        &mut b,
        0,
        Event::Lookup {
            key: Id(5),
            payload: 1,
        },
    );
    assert!(
        actions.is_empty(),
        "inactive node neither routes nor delivers"
    );
    let q = start_join(&mut b, Some(a_id), 1);
    let mut nodes = vec![a, b];
    let actions = pump(&mut nodes, q, 2);
    // After activation the buffered lookup is routed; key 5's root is a
    // (10<<100) or b — either delivery or a forward happened.
    assert!(
        actions
            .iter()
            .any(|act| matches!(act, Action::Deliver { .. } | Action::BecameActive)),
        "buffered lookup processed after activation"
    );
}

#[test]
fn probe_timeout_marks_faulty_and_repairs() {
    let (mut nodes, _) = trio();
    // Kill a's right neighbour: long silence makes a's heartbeat tick start
    // a suspicion probe (public trigger for what used to be a private
    // `probe()` call); the probe then times out until exhaustion.
    let a = &mut nodes[0];
    let right = a.leaf_set().right_neighbor().expect("trio has neighbours");
    let probed = step(
        &mut nodes[0],
        10_000_000_000,
        Event::Timer(TimerKind::Heartbeat),
    )
    .iter()
    .any(|act| {
        matches!(
            act,
            Action::Send { to, msg: Message::LsProbe { .. } } if *to == right
        )
    });
    assert!(
        probed,
        "silence triggers a suspicion probe of the right neighbour"
    );
    let retries = nodes[0].config().max_probe_retries;
    let mut now = 10_003_000_000;
    for attempt in 0..=retries {
        step(
            &mut nodes[0],
            now,
            Event::Timer(TimerKind::ProbeTimeout {
                target: right,
                attempt,
            }),
        );
        now += 3_000_000;
    }
    assert!(
        !nodes[0].leaf_set().contains(right),
        "exhausted probe evicts"
    );
    assert!(!nodes[0].routing_table().contains(right));
}

#[test]
fn ack_timeout_reroutes_after_retx_budget() {
    let (mut nodes, ids) = trio();
    let b_id = ids[1];
    // a sends a lookup rooted at b; b never acks (we just don't deliver the
    // message); the ack timeout must retransmit, then exclude and reroute.
    let key = Id((200 << 100) + 1);
    let mut lookup_id = None;
    for act in step(&mut nodes[0], 100, Event::Lookup { key, payload: 9 }) {
        if let Action::Send {
            to,
            msg: Message::Lookup { id, .. },
        } = act
        {
            assert_eq!(to, b_id);
            lookup_id = Some(id);
        }
    }
    let id = lookup_id.expect("lookup forwarded to b");
    let retx_budget = nodes[0].config().root_retx_attempts;
    // b is the key's root, so the first timeouts retransmit to b itself.
    let mut now = 1_000_000;
    for attempt in 0..retx_budget {
        let retx = step(
            &mut nodes[0],
            now,
            Event::Timer(TimerKind::AckTimeout {
                lookup: id,
                attempt,
            }),
        )
        .iter()
        .any(|a| {
            matches!(
                a,
                Action::Send {
                    to,
                    msg: Message::Lookup {
                        is_retransmit: true,
                        ..
                    },
                } if *to == b_id
            )
        });
        assert!(retx, "attempt {attempt} must retransmit to the root");
        now += 1_000_000;
    }
    // Budget exhausted: the root is excluded and the lookup resolves at the
    // now-closest node — never another copy to the silent root.
    let actions = step(
        &mut nodes[0],
        now,
        Event::Timer(TimerKind::AckTimeout {
            lookup: id,
            attempt: retx_budget,
        }),
    );
    let to_root = actions
        .iter()
        .any(|a| matches!(a, Action::Send { to, msg: Message::Lookup { .. } } if *to == b_id));
    assert!(!to_root, "excluded root receives no further copies");
    let resolved = actions.iter().any(|a| {
        matches!(
            a,
            Action::Send {
                msg: Message::Lookup {
                    is_retransmit: true,
                    ..
                },
                ..
            }
        ) || matches!(a, Action::Deliver { .. })
    });
    assert!(resolved, "lookup resolved after budget: {actions:?}");
}

#[test]
fn heartbeat_goes_to_left_neighbor_only() {
    let (mut nodes, _) = trio();
    // Fire b's heartbeat far in the future (no suppression from recent
    // traffic).
    let b = &mut nodes[1];
    let left = b.leaf_set().left_neighbor().unwrap();
    let hb_targets: Vec<NodeId> = step(b, 10_000_000_000, Event::Timer(TimerKind::Heartbeat))
        .into_iter()
        .filter_map(|a| match a {
            Action::Send {
                to,
                msg: Message::Heartbeat { .. },
            } => Some(to),
            _ => None,
        })
        .collect();
    assert_eq!(hb_targets, vec![left], "single heartbeat to left neighbour");
}

#[test]
fn suppression_skips_heartbeat_after_recent_send() {
    let a_id = Id(10 << 100);
    let b_id = Id(200 << 100);
    let mut a = Node::new(a_id, cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let mut b = Node::new(b_id, cfg());
    let qb = start_join(&mut b, Some(a_id), 1);
    let mut nodes = vec![a, b];
    pump(&mut nodes, qb, 2);
    let b = &mut nodes[1];
    let left = b.leaf_set().left_neighbor().unwrap();
    // Answering the neighbour's probe counts as recent traffic to it.
    let replied = step(
        b,
        999_000_000,
        Event::Receive {
            from: left,
            msg: Message::RtProbe { nonce: 1 },
        },
    )
    .iter()
    .any(|a| matches!(a, Action::Send { to, msg: Message::RtProbeReply { .. } } if *to == left));
    assert!(replied);
    let heartbeats = step(b, 1_000_000_000, Event::Timer(TimerKind::Heartbeat))
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::Send {
                    msg: Message::Heartbeat { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(heartbeats, 0, "recent traffic suppresses the heartbeat");
}

#[test]
fn rt_probe_tick_probes_unheard_entries() {
    let a_id = Id(10 << 100);
    let b_id = Id(200 << 100);
    let mut a = Node::new(a_id, cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let mut b = Node::new(b_id, cfg());
    let qb = start_join(&mut b, Some(a_id), 1);
    let mut nodes = vec![a, b];
    pump(&mut nodes, qb, 2);
    let a = &mut nodes[0];
    assert!(a.routing_table().contains(b_id));
    let probed = step(a, 10_000_000_000, Event::Timer(TimerKind::RtProbeTick))
        .iter()
        .any(|act| {
            matches!(
                act,
                Action::Send {
                    to,
                    msg: Message::RtProbe { .. }
                } if *to == b_id
            )
        });
    assert!(probed, "stale routing-table entry gets a liveness probe");
}

#[test]
fn dead_nodes_are_not_propagated_through_gossip() {
    // A node learns about a candidate via RtRowAnnounce; it must measure
    // (direct contact) before inserting, so a dead candidate never enters
    // the table.
    let a_id = Id(10 << 100);
    let dead = Id(400 << 100);
    let mut a = Node::new(a_id, cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let actions = step(
        &mut a,
        1,
        Event::Receive {
            from: Id(1),
            msg: Message::RtRowAnnounce {
                row: 0,
                entries: vec![dead],
            },
        },
    );
    assert!(
        !a.routing_table().contains(dead),
        "gossiped candidate only enters after a successful distance probe"
    );
    // It must have started a distance measurement instead.
    let probing = actions.iter().any(|act| {
        matches!(
            act,
            Action::Send {
                to,
                msg: Message::DistanceProbe { .. }
            } if *to == dead
        )
    });
    assert!(probing);
}

#[test]
fn self_tune_updates_period() {
    let mut a = Node::new(Id(1), cfg());
    let mut fx = Effects::new();
    a.handle(0, Event::Join { seed: None }, &mut fx);
    let before = a.t_rt_us();
    step(&mut a, 60_000_000, Event::Timer(TimerKind::SelfTune));
    // Singleton overlay: no failures, N=1 → probing effectively off.
    assert!(a.t_rt_us() >= before);
}

#[test]
fn rt_row_request_returns_the_row() {
    let (mut nodes, ids) = trio();
    let reply = step(
        &mut nodes[0],
        100,
        Event::Receive {
            from: ids[1],
            msg: Message::RtRowRequest { row: 0 },
        },
    )
    .into_iter()
    .find_map(|a| match a {
        Action::Send {
            to,
            msg: Message::RtRowReply { row, entries },
        } if to == ids[1] => Some((row, entries)),
        _ => None,
    });
    let (row, entries) = reply.expect("row reply sent");
    assert_eq!(row, 0);
    assert_eq!(entries, nodes[0].routing_table().row_ids(0));
}

#[test]
fn join_request_contributes_rows_and_self() {
    let (mut nodes, ids) = trio();
    // A brand-new joiner's request through node 0.
    let joiner = Id(250 << 100);
    let mut saw = false;
    for a in step(
        &mut nodes[0],
        100,
        Event::Receive {
            from: joiner,
            msg: Message::JoinRequest {
                joiner,
                rows: Vec::new(),
                hops: 0,
            },
        },
    ) {
        match a {
            Action::Send {
                msg: Message::JoinReply { rows, leaf_set },
                to,
            } => {
                assert_eq!(to, joiner);
                assert!(leaf_set.contains(&ids[0]), "root includes itself");
                assert!(rows.iter().flatten().any(|&n| n == ids[0]));
                saw = true;
            }
            Action::Send {
                msg: Message::JoinRequest { rows, .. },
                ..
            } => {
                assert!(rows.iter().flatten().any(|&n| n == ids[0]));
                saw = true;
            }
            _ => {}
        }
    }
    assert!(saw, "join request handled");
}

#[test]
fn distance_report_inserts_into_routing_table() {
    let (mut nodes, _ids) = trio();
    let stranger = Id(0xdead << 100);
    step(
        &mut nodes[0],
        100,
        Event::Receive {
            from: stranger,
            msg: Message::DistanceReport { rtt_us: 1234 },
        },
    );
    let e = nodes[0]
        .routing_table()
        .entry_of(stranger)
        .expect("symmetric report inserts the sender");
    assert_eq!(e.distance_us, 1234);
}

#[test]
fn duplicate_lookups_are_acked_but_not_reprocessed() {
    let (mut nodes, ids) = trio();
    let id = LookupId {
        src: ids[1],
        seq: 9,
    };
    let lookup = Message::Lookup {
        id,
        key: Id(5),
        payload: 0,
        hops: 1,
        issued_at_us: 50,
        is_retransmit: false,
        wants_acks: true,
    };
    let first = step(
        &mut nodes[0],
        100,
        Event::Receive {
            from: ids[1],
            msg: lookup.clone(),
        },
    );
    assert!(first.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: Message::Ack { .. },
            ..
        }
    )));
    let second = step(
        &mut nodes[0],
        200,
        Event::Receive {
            from: ids[2],
            msg: lookup,
        },
    );
    assert!(
        second.iter().all(|a| matches!(
            a,
            Action::Send {
                msg: Message::Ack { .. },
                ..
            }
        )),
        "duplicate only acked, got {second:?}"
    );
}

#[test]
fn join_buffer_overflow_reports_drops() {
    let mut cfg2 = cfg();
    cfg2.join_buffer_cap = 2;
    let mut n = Node::new(Id(5), cfg2);
    // Not joined yet: local lookups buffer; the third overflows.
    let mut drops = 0;
    for i in 0..3 {
        drops += step(
            &mut n,
            i,
            Event::Lookup {
                key: Id(i as u128),
                payload: i,
            },
        )
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::LookupDropped {
                    reason: DropReason::BufferOverflow,
                    ..
                }
            )
        })
        .count();
    }
    assert_eq!(drops, 1);
}

#[test]
fn heartbeat_silence_triggers_suspect_probe() {
    let (mut nodes, _) = trio();
    let b = &mut nodes[1];
    let right = b.leaf_set().right_neighbor().unwrap();
    // Nothing heard from the right neighbour since the join (~t=4): firing
    // the heartbeat far past Tls+To finds a long silence.
    let probed = step(b, 100_000_000, Event::Timer(TimerKind::Heartbeat))
        .iter()
        .any(|a| {
            matches!(
                a,
                Action::Send {
                    to,
                    msg: Message::LsProbe { .. }
                } if *to == right
            )
        });
    assert!(probed, "silent right neighbour must be probed");
}

#[test]
fn leave_announces_and_receivers_remove_instantly() {
    let (mut nodes, ids) = trio();
    // Node 1 leaves gracefully.
    let targets: Vec<NodeId> = step(&mut nodes[1], 100, Event::Leave)
        .into_iter()
        .filter_map(|a| match a {
            Action::Send {
                to,
                msg: Message::Leaving,
            } => Some(to),
            _ => None,
        })
        .collect();
    assert!(targets.contains(&ids[0]) && targets.contains(&ids[2]));
    assert!(!nodes[1].is_active());
    // Node 0 receives the announcement: instant removal, no probes to the
    // leaver.
    let actions = step(
        &mut nodes[0],
        200,
        Event::Receive {
            from: ids[1],
            msg: Message::Leaving,
        },
    );
    assert!(!nodes[0].leaf_set().contains(ids[1]));
    assert!(!nodes[0].routing_table().contains(ids[1]));
    let probes_to_leaver = actions
        .iter()
        .filter(|a| matches!(a, Action::Send { to, .. } if *to == ids[1]))
        .count();
    assert_eq!(probes_to_leaver, 0, "no probes to an announced leaver");
}

#[test]
fn inactive_node_replies_to_nn_requests() {
    let mut n = Node::new(Id(5), cfg());
    // Never joined; a joiner may still ask for its (empty) leaf set.
    let actions = step(
        &mut n,
        10,
        Event::Receive {
            from: Id(9),
            msg: Message::NnLeafSetRequest,
        },
    );
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: Message::NnLeafSetReply { .. },
            ..
        }
    )));
}

#[test]
fn rt_probe_suppressed_when_recently_heard() {
    let (mut nodes, ids) = trio();
    let a = &mut nodes[0];
    assert!(a.routing_table().contains(ids[1]));
    let now = 10_000_000_000;
    // Hearing anything from the peer one microsecond ago suppresses its
    // liveness probe on the next tick.
    step(
        a,
        now - 1,
        Event::Receive {
            from: ids[1],
            msg: Message::Heartbeat { trt_hint: None },
        },
    );
    let probed = step(a, now, Event::Timer(TimerKind::RtProbeTick))
        .iter()
        .any(|act| {
            matches!(
                act,
                Action::Send {
                    to,
                    msg: Message::RtProbe { .. }
                } if *to == ids[1]
            )
        });
    assert!(!probed, "fresh traffic suppresses the liveness probe");
}

#[test]
fn probe_reply_samples_rtt_for_rto() {
    let (mut nodes, ids) = trio();
    let a = &mut nodes[0];
    // Fire the tick long after the join so suppression-by-recent-traffic
    // does not apply.
    let nonce = step(a, 10_000_000_000, Event::Timer(TimerKind::RtProbeTick))
        .into_iter()
        .find_map(|act| match act {
            Action::Send {
                to,
                msg: Message::RtProbe { nonce },
            } if to == ids[1] => Some(nonce),
            _ => None,
        });
    let nonce = nonce.expect("stale entry probed");
    // A 40 ms round trip gives the estimator a sample far below the initial
    // RTO; the next lookup forwarded to that peer must arm a tighter timer.
    step(
        a,
        10_000_040_000,
        Event::Receive {
            from: ids[1],
            msg: Message::RtProbeReply {
                nonce,
                trt_hint: None,
            },
        },
    );
    let key = Id((200 << 100) + 3); // rooted at ids[1]
    let armed = step(a, 10_001_000_000, Event::Lookup { key, payload: 0 })
        .into_iter()
        .find_map(|act| match act {
            Action::SetTimer {
                delay_us,
                kind: TimerKind::AckTimeout { .. },
            } => Some(delay_us),
            _ => None,
        });
    let rto = armed.expect("forwarded lookup arms an ack timeout");
    assert!(
        rto < nodes[0].config().ack_rto_initial_us,
        "estimator sample tightened the RTO: {rto}"
    );
}
