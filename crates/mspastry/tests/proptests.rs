//! Property-based tests of the protocol's core data structures and
//! invariants.

use mspastry::id::{closer_to, Id};
use mspastry::leaf_set::LeafSet;
use mspastry::messages::{LookupId, Message};
use mspastry::routing::{route, NextHop};
use mspastry::routing_table::RoutingTable;
use mspastry::tuning;
use mspastry::Config;
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    any::<u128>().prop_map(Id)
}

fn arb_b() -> impl Strategy<Value = u8> {
    1u8..=8
}

proptest! {
    // ----- identifier ring --------------------------------------------------

    #[test]
    fn ring_distance_is_a_symmetric_bounded_metric(a in arb_id(), b in arb_id()) {
        let d = a.ring_dist(b);
        prop_assert_eq!(d, b.ring_dist(a));
        prop_assert!(d <= u128::MAX / 2 + 1);
        prop_assert_eq!(a.ring_dist(a), 0);
        if a != b {
            prop_assert!(d > 0);
        }
    }

    #[test]
    fn cw_and_ccw_distances_complement(a in arb_id(), b in arb_id()) {
        if a != b {
            prop_assert_eq!(a.cw_dist(b).wrapping_add(a.ccw_dist(b)), 0u128);
        } else {
            prop_assert_eq!(a.cw_dist(b), 0);
        }
    }

    #[test]
    fn digits_reconstruct_the_id(a in arb_id(), b in prop::sample::select(vec![1u8, 2, 4, 8])) {
        let mut acc: u128 = 0;
        for r in 0..Id::rows(b) {
            acc = (acc << b) | a.digit(r, b) as u128;
        }
        prop_assert_eq!(acc, a.0);
    }

    #[test]
    fn shared_prefix_matches_digit_comparison(a in arb_id(), x in arb_id(), b in arb_b()) {
        let l = a.shared_prefix_len(x, b);
        for r in 0..l {
            prop_assert_eq!(a.digit(r, b), x.digit(r, b));
        }
        if a != x {
            prop_assert!(l < Id::rows(b));
            prop_assert_ne!(a.digit(l, b), x.digit(l, b));
        }
    }

    #[test]
    fn closer_to_is_commutative_and_picks_a_minimum(key in arb_id(), a in arb_id(), b in arb_id()) {
        let w = closer_to(key, a, b);
        prop_assert_eq!(w, closer_to(key, b, a));
        prop_assert!(w.ring_dist(key) <= a.ring_dist(key));
        prop_assert!(w.ring_dist(key) <= b.ring_dist(key));
    }

    // ----- routing table ----------------------------------------------------

    #[test]
    fn routing_table_slot_invariant(own in arb_id(), ids in prop::collection::vec(arb_id(), 1..80), b in prop::sample::select(vec![1u8, 2, 4])) {
        let mut rt = RoutingTable::new(own, b);
        for (i, &id) in ids.iter().enumerate() {
            rt.offer(id, i as u64);
        }
        for e in rt.entries() {
            let (row, col) = rt.slot_of(e.id).unwrap();
            prop_assert_eq!(own.shared_prefix_len(e.id, b), row);
            prop_assert_eq!(e.id.digit(row, b), col);
        }
        prop_assert!(rt.len() <= ids.len());
    }

    #[test]
    fn routing_table_keeps_the_closest_candidate(own in arb_id(), ids in prop::collection::vec((arb_id(), 1u64..1_000_000), 1..60)) {
        let mut rt = RoutingTable::new(own, 4);
        for &(id, d) in &ids {
            rt.offer(id, d);
        }
        // For every slot, the stored entry has the minimum distance among
        // all offered candidates for that slot.
        for e in rt.entries() {
            let slot = rt.slot_of(e.id).unwrap();
            let best = ids
                .iter()
                .filter(|(id, _)| *id != own && rt.slot_of(*id) == Some(slot))
                .map(|&(_, d)| d)
                .min()
                .unwrap();
            prop_assert_eq!(e.distance_us, best);
        }
    }

    // ----- leaf set -----------------------------------------------------------

    #[test]
    fn leaf_set_holds_the_closest_neighbours(own in arb_id(), ids in prop::collection::vec(arb_id(), 0..50), half in 1usize..8) {
        let mut ls = LeafSet::new(own, half);
        for &id in &ids {
            ls.add(id);
        }
        let distinct: Vec<Id> = {
            let mut v: Vec<Id> = ids.iter().copied().filter(|&i| i != own).collect();
            v.sort();
            v.dedup();
            v
        };
        // The right side must be exactly the `half` closest successors.
        let mut by_cw = distinct.clone();
        by_cw.sort_by_key(|&m| own.cw_dist(m));
        let expected_right: Vec<Id> = by_cw.iter().copied().take(half).collect();
        prop_assert_eq!(ls.right(), &expected_right[..]);
        // And the left side the `half` closest predecessors.
        let mut by_ccw = distinct.clone();
        by_ccw.sort_by_key(|&m| own.ccw_dist(m));
        let expected_left: Vec<Id> = by_ccw.iter().copied().take(half).collect();
        prop_assert_eq!(ls.left(), &expected_left[..]);
    }

    #[test]
    fn leaf_set_closest_matches_oracle(own in arb_id(), ids in prop::collection::vec(arb_id(), 1..40), key in arb_id()) {
        let mut ls = LeafSet::new(own, 4);
        for &id in &ids {
            ls.add(id);
        }
        let mut members = ls.members();
        members.push(own);
        let oracle = members.iter().copied().reduce(|a, b| closer_to(key, a, b)).unwrap();
        prop_assert_eq!(ls.closest_to(key, |_| false), oracle);
    }

    #[test]
    fn would_admit_predicts_add(own in arb_id(), ids in prop::collection::vec(arb_id(), 0..30), candidate in arb_id(), half in 1usize..6) {
        let mut ls = LeafSet::new(own, half);
        for &id in &ids {
            ls.add(id);
        }
        let predicted = ls.would_admit(candidate);
        let changed = ls.add(candidate);
        prop_assert_eq!(predicted, changed);
    }

    // ----- routing ------------------------------------------------------------

    #[test]
    fn route_makes_progress(own in arb_id(), ids in prop::collection::vec(arb_id(), 1..60), key in arb_id()) {
        let mut rt = RoutingTable::new(own, 4);
        let mut ls = LeafSet::new(own, 4);
        for &id in &ids {
            rt.offer(id, 1);
            ls.add(id);
        }
        match route(&rt, &ls, key, &|_| false) {
            NextHop::Local => {}
            NextHop::Forward { next, .. } => {
                prop_assert_ne!(next, own);
                // Forwarding either improves the shared prefix or strictly
                // reduces ring distance (leaf-set hops).
                let better_prefix =
                    next.shared_prefix_len(key, 4) > own.shared_prefix_len(key, 4);
                let closer = next.ring_dist(key) < own.ring_dist(key);
                prop_assert!(better_prefix || closer);
            }
        }
    }

    // ----- codec ----------------------------------------------------------------

    #[test]
    fn codec_round_trips_lookups(src in arb_id(), seq in any::<u64>(), key in arb_id(),
                                 payload in any::<u64>(), hops in any::<u32>(),
                                 t in any::<u64>(), retx in any::<bool>(), acks in any::<bool>()) {
        let msg = Message::Lookup {
            id: LookupId { src, seq },
            key,
            payload,
            hops,
            issued_at_us: t,
            is_retransmit: retx,
            wants_acks: acks,
        };
        let back = mspastry::codec::decode(&mspastry::codec::encode(&msg)).unwrap();
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn codec_round_trips_leaf_set_probes(ls in prop::collection::vec(arb_id(), 0..40),
                                         failed in prop::collection::vec(arb_id(), 0..40),
                                         hint in any::<Option<u64>>()) {
        let msg = Message::LsProbe { leaf_set: ls, failed, trt_hint: hint };
        let back = mspastry::codec::decode(&mspastry::codec::encode(&msg)).unwrap();
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = mspastry::codec::decode(&bytes); // must not panic
    }

    // ----- tuning ----------------------------------------------------------------

    #[test]
    fn pf_is_a_probability(t in 0.0f64..1e13, mu in 0.0f64..1e-6) {
        let p = tuning::pf(t, mu);
        prop_assert!((0.0..=1.0).contains(&p), "pf = {}", p);
    }

    #[test]
    fn solve_t_rt_respects_the_floor(mu in 1e-14f64..1e-7, n in 2.0f64..100_000.0) {
        let cfg = Config::default();
        let t = tuning::solve_t_rt(&cfg, mu, n);
        prop_assert!(t >= cfg.t_rt_floor_us());
        prop_assert!(t <= tuning::T_RT_MAX_US);
    }

    #[test]
    fn raw_loss_is_monotone_in_probing_period(mu in 1e-12f64..1e-8, n in 10.0f64..10_000.0,
                                              t1 in 1e6f64..1e10, t2 in 1e6f64..1e10) {
        let cfg = Config::default();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(tuning::raw_loss(&cfg, lo, mu, n) <= tuning::raw_loss(&cfg, hi, mu, n) + 1e-12);
    }
}
