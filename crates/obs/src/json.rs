//! A hand-rolled, offline-safe JSON writer (no serde).
//!
//! Produces deterministic, valid RFC 8259 output: keys and values are
//! written in call order, strings are escaped, non-finite floats become
//! `null` (JSON has no NaN/Infinity), and `f64` uses Rust's shortest
//! round-trip formatting so identical runs serialise identically.

/// Escapes `s` into `out` as JSON string *content* (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` escaped and quoted as a JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    Object { first: bool, after_key: bool },
    Array { first: bool },
}

/// A streaming JSON writer.
///
/// Call [`begin_object`](Self::begin_object)/[`begin_array`](Self::begin_array),
/// [`key`](Self::key) and the value methods in document order;
/// [`finish`](Self::finish) returns the built string. Misuse (a value with a
/// pending key missing, unbalanced frames) panics — writers are exercised by
/// tests, not user input.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        match self.stack.last_mut() {
            None => {}
            Some(Frame::Array { first }) => {
                if !*first {
                    self.out.push(',');
                }
                *first = false;
            }
            Some(Frame::Object { after_key, .. }) => {
                assert!(*after_key, "object value without a key");
                *after_key = false;
            }
        }
    }

    /// Starts an object value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(Frame::Object {
            first: true,
            after_key: false,
        });
        self
    }

    /// Closes the current object.
    pub fn end_object(&mut self) -> &mut Self {
        match self.stack.pop() {
            Some(Frame::Object { after_key, .. }) => assert!(!after_key, "dangling key"),
            other => panic!("end_object out of place: {other:?}"),
        }
        self.out.push('}');
        self
    }

    /// Starts an array value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(Frame::Array { first: true });
        self
    }

    /// Closes the current array.
    pub fn end_array(&mut self) -> &mut Self {
        match self.stack.pop() {
            Some(Frame::Array { .. }) => {}
            other => panic!("end_array out of place: {other:?}"),
        }
        self.out.push(']');
        self
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        match self.stack.last_mut() {
            Some(Frame::Object { first, after_key }) => {
                assert!(!*after_key, "two keys in a row");
                if !*first {
                    self.out.push(',');
                }
                *first = false;
                *after_key = true;
            }
            other => panic!("key outside object: {other:?}"),
        }
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.before_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a float value (`null` for non-finite values).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            // Shortest round-trip formatting; integral values still get a
            // fractional part so the field reads as a float.
            if v == v.trunc() && v.abs() < 1e15 {
                self.out.push_str(&format!("{v:.1}"));
            } else {
                self.out.push_str(&format!("{v}"));
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a `null` value.
    pub fn null(&mut self) -> &mut Self {
        self.before_value();
        self.out.push_str("null");
        self
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// Convenience: `key` + u64 value.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Convenience: `key` + f64 value.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64(v)
    }

    /// Convenience: `key` + optional u64 (`null` when `None`).
    pub fn field_opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        self.key(k);
        match v {
            Some(v) => self.u64(v),
            None => self.null(),
        }
    }

    /// Finishes the document and returns it.
    ///
    /// # Panics
    ///
    /// Panics if any object or array is still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unbalanced JSON frames");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\re\tf\u{08}g\u{0c}h\u{01}i√");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\re\\tf\\bg\\fh\\u0001i√");
        assert_eq!(quote("x\"y"), "\"x\\\"y\"");
    }

    #[test]
    fn writes_nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "run")
            .key("values")
            .begin_array()
            .u64(1)
            .f64(2.5)
            .null()
            .bool(true)
            .string("s")
            .end_array()
            .key("nested")
            .begin_object()
            .field_u64("n", 7)
            .end_object()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"run","values":[1,2.5,null,true,"s"],"nested":{"n":7}}"#
        );
    }

    #[test]
    fn floats_are_stable_and_json_safe() {
        let mut w = JsonWriter::new();
        w.begin_array()
            .f64(f64::NAN)
            .f64(f64::INFINITY)
            .f64(0.1 + 0.2)
            .f64(3.0)
            .f64(-0.0)
            .end_array();
        assert_eq!(w.finish(), "[null,null,0.30000000000000004,3.0,-0.0]");
    }

    #[test]
    fn float_tokens_round_trip_bit_exactly() {
        // Every finite float must parse back to the identical bit pattern:
        // artifacts are diffed and re-read by tools, so lossy formatting
        // would silently corrupt metrics.
        let cases = [
            0.0,
            -0.0,
            0.1,
            0.1 + 0.2,
            1.0 / 3.0,
            std::f64::consts::PI,
            1e-308, // subnormal territory
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            f64::MAX,
            1e15,                // first magnitude past the {v:.1} fast path
            1e15 - 1.0,          // last magnitude inside it
            (1u64 << 53) as f64, // integer precision edge
            -1234.5678e-9,
            2.225_073_858_507_201e-308, // historical strtod stress value
        ];
        for v in cases {
            let mut w = JsonWriter::new();
            w.f64(v);
            let token = w.finish();
            let back: f64 = token
                .parse()
                .unwrap_or_else(|_| panic!("unparseable: {token}"));
            assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {token} -> {back:e}");
        }
    }

    #[test]
    fn non_finite_floats_become_null_everywhere() {
        for v in [f64::NAN, -f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut w = JsonWriter::new();
            w.begin_object().field_f64("v", v).end_object();
            assert_eq!(w.finish(), r#"{"v":null}"#, "{v} must serialise as null");
        }
    }

    #[test]
    fn float_tokens_use_no_locale_dependent_characters() {
        // RFC 8259 numbers use '.' as the only decimal separator and no
        // grouping. Rust's formatter is locale-independent by contract; pin
        // that the emitted alphabet stays inside the JSON number grammar so
        // a regression (e.g. a future switch to a locale-aware formatter)
        // fails loudly rather than producing "3,14".
        let cases = [0.5, -1234567.89, 1e300, 0.12345, 1e15 + 7.0, 42.0];
        for v in cases {
            let mut w = JsonWriter::new();
            w.f64(v);
            let token = w.finish();
            assert!(
                token
                    .bytes()
                    .all(|b| b.is_ascii_digit() || b"+-.eE".contains(&b)),
                "{v}: token {token:?} has characters outside the JSON number grammar"
            );
            assert!(!token.contains(','), "{v}: grouping separator in {token:?}");
            assert!(
                token.matches('.').count() <= 1,
                "one decimal point in {token:?}"
            );
        }
    }

    #[test]
    fn negative_and_large_integers() {
        let mut w = JsonWriter::new();
        w.begin_array().i64(-5).u64(u64::MAX).end_array();
        assert_eq!(w.finish(), format!("[-5,{}]", u64::MAX));
    }

    #[test]
    #[should_panic(expected = "object value without a key")]
    fn value_without_key_panics() {
        let mut w = JsonWriter::new();
        w.begin_object().u64(1);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_finish_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.finish();
    }
}
