//! The flight recorder: a bounded ring buffer of per-lookup hop events.
//!
//! Lookups are sampled by a deterministic hash of their identity, so every
//! node along a sampled lookup's path records its hops — the whole route can
//! be reconstructed from the dump — and repeated runs of the same seed
//! produce bit-identical event streams. When the ring fills, the oldest
//! events are overwritten (and counted), never the newest: a post-mortem
//! wants the events closest to the end of the run.

/// What happened to a lookup at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// The lookup was issued at this node.
    Issue,
    /// Forwarded to `peer` (`hops` counts this transmission).
    Forward,
    /// Delivered by this node (it is the key's root).
    Deliver,
    /// A per-hop ack from `peer` arrived.
    Ack,
    /// Retransmitted to the same root `peer` after an ack timeout
    /// (`attempt`-th attempt, next timeout `detail_us`).
    Retransmit,
    /// `peer` missed an ack and is temporarily excluded from routing; the
    /// lookup reroutes around it.
    Exclude,
    /// The lookup was dropped at this node (`note` holds the reason).
    Drop,
}

impl HopKind {
    /// Stable lower-case name used in the JSONL dump.
    pub fn name(self) -> &'static str {
        match self {
            HopKind::Issue => "issue",
            HopKind::Forward => "forward",
            HopKind::Deliver => "deliver",
            HopKind::Ack => "ack",
            HopKind::Retransmit => "retransmit",
            HopKind::Exclude => "exclude",
            HopKind::Drop => "drop",
        }
    }
}

/// Sentinel for "no peer" in [`HopEvent::peer`].
pub const NO_PEER: u128 = u128::MAX;

/// One recorded hop event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopEvent {
    /// Simulation time, microseconds.
    pub at_us: u64,
    /// The node the event happened at.
    pub node: u128,
    /// Lookup identity: issuing node.
    pub src: u128,
    /// Lookup identity: per-issuer sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: HopKind,
    /// The other node involved (next hop, acker, excluded suspect);
    /// [`NO_PEER`] when not applicable.
    pub peer: u128,
    /// Overlay hop count at this point.
    pub hops: u32,
    /// Retransmission attempt number (0 = first transmission).
    pub attempt: u32,
    /// Kind-specific duration: the armed retransmission timeout for
    /// `Forward`/`Retransmit`, the sampled RTT for `Ack`, otherwise 0.
    pub detail_us: u64,
    /// Kind-specific note (drop reason); empty otherwise.
    pub note: &'static str,
}

/// Deterministic 64-bit mix of a lookup identity (splitmix64 over the
/// folded id). Used for sampling: stable across nodes, runs and platforms.
#[inline]
pub fn lookup_hash(src: u128, seq: u64) -> u64 {
    let mut x = (src as u64)
        ^ ((src >> 64) as u64).rotate_left(31)
        ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A bounded ring buffer of [`HopEvent`]s with deterministic sampling.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<HopEvent>,
    cap: usize,
    /// Next write position once the ring is full.
    next: usize,
    overwritten: u64,
    /// Sample iff `lookup_hash(id) <= threshold`; 0 disables tracing.
    threshold: u64,
    sample_rate: f64,
}

impl FlightRecorder {
    /// Creates a recorder sampling `sample_rate` (0.0..=1.0) of lookups,
    /// keeping at most `capacity` events.
    pub fn new(sample_rate: f64, capacity: usize) -> Self {
        let rate = sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        FlightRecorder {
            buf: Vec::new(),
            cap: capacity.max(1),
            next: 0,
            overwritten: 0,
            threshold,
            sample_rate: rate,
        }
    }

    /// The configured sampling rate.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// `true` if the lookup `(src, seq)` is in the sample.
    #[inline]
    pub fn sampled(&self, src: u128, seq: u64) -> bool {
        self.threshold != 0 && lookup_hash(src, seq) <= self.threshold
    }

    /// Records an event (caller has already checked [`Self::sampled`]).
    pub fn push(&mut self, ev: HopEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events lost to ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The raw sampling threshold (0 = tracing off).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the recorder, returning the retained events in recording
    /// order (oldest first) and the overwritten-event count.
    pub fn into_events(mut self) -> (Vec<HopEvent>, u64) {
        self.buf.rotate_left(self.next);
        (self.buf, self.overwritten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, seq: u64) -> HopEvent {
        HopEvent {
            at_us: at,
            node: 1,
            src: 2,
            seq,
            kind: HopKind::Forward,
            peer: NO_PEER,
            hops: 1,
            attempt: 0,
            detail_us: 0,
            note: "",
        }
    }

    #[test]
    fn zero_rate_samples_nothing_full_rate_everything() {
        let off = FlightRecorder::new(0.0, 8);
        let on = FlightRecorder::new(1.0, 8);
        for seq in 0..1000 {
            assert!(!off.sampled(99, seq));
            assert!(on.sampled(99, seq));
        }
    }

    #[test]
    fn sampling_rate_is_approximate_and_deterministic() {
        let r = FlightRecorder::new(0.1, 8);
        let hits = (0..100_000).filter(|&s| r.sampled(1234, s)).count();
        assert!((8_000..12_000).contains(&hits), "hits {hits}");
        let r2 = FlightRecorder::new(0.1, 8);
        for s in 0..1000 {
            assert_eq!(r.sampled(1234, s), r2.sampled(1234, s));
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut r = FlightRecorder::new(1.0, 4);
        for i in 0..7 {
            r.push(ev(i, i));
        }
        let (events, dropped) = r.into_events();
        assert_eq!(dropped, 3);
        let ats: Vec<u64> = events.iter().map(|e| e.at_us).collect();
        assert_eq!(ats, vec![3, 4, 5, 6]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = FlightRecorder::new(1.0, 16);
        for i in 0..5 {
            r.push(ev(i, i));
        }
        assert_eq!(r.len(), 5);
        let (events, dropped) = r.into_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].at_us, 0);
    }
}
