//! In-run time series: per-interval deltas of every registry metric.
//!
//! The registry ([`crate::Registry`]) accumulates monotonically over a run;
//! a [`TimeSeries`] turns it into *behavior over time* by snapshotting on a
//! clock-driven cadence and recording, per window, the **delta** of every
//! counter and histogram against the previous snapshot. The paper's churn
//! figures (Fig. 4/5) are exactly this view — loss and repair dynamics as a
//! storm hits, not run totals.
//!
//! The sampler is a pure observer: it only *reads* snapshots the caller
//! hands it, so enabling it cannot perturb a simulation (pinned by
//! `crates/harness/tests/determinism.rs`). Who drives the cadence is the
//! host's business: the simulator samples on virtual-time events from its
//! queue, the UDP deployment on wall-clock ticks.
//!
//! The series is bounded: past `max_windows` the *oldest* windows are
//! dropped (and counted) — mirroring the flight recorder, a post-mortem
//! wants the end of the run.

use crate::json::JsonWriter;
use crate::registry::Snapshot;
use std::collections::VecDeque;

/// Schema identifier stamped into the JSONL header line of every
/// time-series artifact.
pub const TS_SCHEMA: &str = "mspastry-ts/1";

/// One sampling window: metric deltas over `[start_us, end_us)`.
///
/// Only metrics that *changed* during the window are listed (a quiet
/// counter would otherwise repeat `0` in every line of a long run); both
/// lists stay name-sorted, inherited from [`Snapshot`] ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsWindow {
    /// Window start (inclusive), microseconds.
    pub start_us: u64,
    /// Window end (exclusive), microseconds.
    pub end_us: u64,
    /// `(name, delta)` for every counter that moved, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, delta count, delta sum)` for every histogram that recorded
    /// samples, name-sorted.
    pub histograms: Vec<(String, u64, u64)>,
}

/// A bounded series of per-window metric deltas.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval_us: u64,
    max_windows: usize,
    prev: Snapshot,
    windows: VecDeque<TsWindow>,
    dropped: u64,
    window_start_us: u64,
}

impl TimeSeries {
    /// Creates an empty series sampling every `interval_us`, keeping at
    /// most `max_windows` windows (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `interval_us` is 0.
    pub fn new(interval_us: u64, max_windows: usize) -> Self {
        assert!(interval_us > 0, "sampling interval must be positive");
        TimeSeries {
            interval_us,
            max_windows: max_windows.max(1),
            prev: Snapshot::default(),
            windows: VecDeque::new(),
            dropped: 0,
            window_start_us: 0,
        }
    }

    /// The configured sampling cadence, microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Closes the current window at `end_us` against `snap`: records the
    /// delta of every metric since the previous sample and starts the next
    /// window. Empty-delta windows are still recorded (a flat line is
    /// data); windows are dropped oldest-first past the capacity.
    pub fn sample(&mut self, end_us: u64, snap: &Snapshot) {
        let counters = delta_counters(&self.prev, snap);
        let histograms = delta_histograms(&self.prev, snap);
        if self.windows.len() == self.max_windows {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(TsWindow {
            start_us: self.window_start_us,
            end_us,
            counters,
            histograms,
        });
        self.prev = snap.clone();
        self.window_start_us = end_us;
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &TsWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no window has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows lost to the capacity bound (0 = complete series).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Name-sorted counter deltas between two snapshots (both are name-sorted,
/// so this is one merge walk). Metrics registered after `prev` was taken
/// delta against 0.
fn delta_counters(prev: &Snapshot, cur: &Snapshot) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut p = prev.counters.iter().peekable();
    for (name, v) in &cur.counters {
        let mut base = 0;
        while let Some((pn, pv)) = p.peek() {
            match pn.as_str().cmp(name.as_str()) {
                std::cmp::Ordering::Less => {
                    p.next();
                }
                std::cmp::Ordering::Equal => {
                    base = *pv;
                    p.next();
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        let d = v.wrapping_sub(base);
        if d != 0 {
            out.push((name.clone(), d));
        }
    }
    out
}

/// Name-sorted `(count, sum)` histogram deltas between two snapshots.
fn delta_histograms(prev: &Snapshot, cur: &Snapshot) -> Vec<(String, u64, u64)> {
    let mut out = Vec::new();
    let mut p = prev.histograms.iter().peekable();
    for (name, h) in &cur.histograms {
        let (mut base_count, mut base_sum) = (0, 0);
        while let Some((pn, ph)) = p.peek() {
            match pn.as_str().cmp(name.as_str()) {
                std::cmp::Ordering::Less => {
                    p.next();
                }
                std::cmp::Ordering::Equal => {
                    base_count = ph.count;
                    base_sum = ph.sum;
                    p.next();
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        let d_count = h.count.wrapping_sub(base_count);
        if d_count != 0 {
            out.push((name.clone(), d_count, h.sum.wrapping_sub(base_sum)));
        }
    }
    out
}

/// Serialises a series as JSONL: a header line (schema tag, cadence, window
/// and drop counts), then one object per window in time order. Deterministic
/// byte-for-byte for identical series.
pub fn ts_jsonl(ts: &TimeSeries) -> String {
    let mut out = String::with_capacity(64 + ts.len() * 256);
    {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", TS_SCHEMA)
            .field_u64("interval_us", ts.interval_us())
            .field_u64("windows", ts.len() as u64)
            .field_u64("dropped", ts.dropped());
        w.end_object();
        out.push_str(&w.finish());
        out.push('\n');
    }
    for win in ts.windows() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("start_us", win.start_us)
            .field_u64("end_us", win.end_us);
        w.key("counters").begin_object();
        for (name, d) in &win.counters {
            w.field_u64(name, *d);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, d_count, d_sum) in &win.histograms {
            w.key(name)
                .begin_object()
                .field_u64("count", *d_count)
                .field_u64("sum", *d_sum)
                .end_object();
        }
        w.end_object();
        w.end_object();
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn windows_hold_deltas_not_totals() {
        let r = Registry::new();
        let c = r.counter("sends");
        let h = r.histogram("lat");
        let mut ts = TimeSeries::new(10, 64);

        r.add(c, 5);
        r.record(h, 100);
        ts.sample(10, &r.snapshot());

        r.add(c, 2);
        r.record(h, 50);
        r.record(h, 70);
        ts.sample(20, &r.snapshot());

        let w: Vec<&TsWindow> = ts.windows().collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start_us, 0);
        assert_eq!(w[0].end_us, 10);
        assert_eq!(w[0].counters, vec![("sends".to_string(), 5)]);
        assert_eq!(w[0].histograms, vec![("lat".to_string(), 1, 100)]);
        assert_eq!(w[1].start_us, 10);
        assert_eq!(w[1].counters, vec![("sends".to_string(), 2)]);
        assert_eq!(w[1].histograms, vec![("lat".to_string(), 2, 120)]);
    }

    #[test]
    fn deltas_sum_back_to_the_final_snapshot() {
        let r = Registry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        let mut ts = TimeSeries::new(1, 1024);
        let mut t = 0;
        for i in 0..50u64 {
            r.add(a, i % 3);
            if i % 7 == 0 {
                r.inc(b);
            }
            t += 1;
            ts.sample(t, &r.snapshot());
        }
        let snap = r.snapshot();
        for name in ["a", "b"] {
            let total: u64 = ts
                .windows()
                .flat_map(|w| w.counters.iter())
                .filter(|(n, _)| n == name)
                .map(|(_, d)| d)
                .sum();
            assert_eq!(total, snap.counter(name), "counter {name}");
        }
    }

    #[test]
    fn quiet_metrics_are_omitted_from_windows() {
        let r = Registry::new();
        let c = r.counter("busy");
        r.counter("idle");
        r.histogram("never");
        r.inc(c);
        let mut ts = TimeSeries::new(10, 4);
        ts.sample(10, &r.snapshot());
        ts.sample(20, &r.snapshot()); // nothing moved
        let w: Vec<&TsWindow> = ts.windows().collect();
        assert_eq!(w[0].counters.len(), 1);
        assert!(w[1].counters.is_empty() && w[1].histograms.is_empty());
    }

    #[test]
    fn late_registered_metrics_delta_against_zero() {
        let r = Registry::new();
        r.inc(r.counter("early"));
        let mut ts = TimeSeries::new(10, 4);
        ts.sample(10, &r.snapshot());
        // A metric that did not exist in the previous snapshot.
        r.add(r.counter("a-late"), 9);
        ts.sample(20, &r.snapshot());
        let w: Vec<&TsWindow> = ts.windows().collect();
        assert_eq!(w[1].counters, vec![("a-late".to_string(), 9)]);
    }

    #[test]
    fn capacity_drops_oldest_windows() {
        let r = Registry::new();
        let c = r.counter("n");
        let mut ts = TimeSeries::new(1, 3);
        for t in 1..=5u64 {
            r.add(c, t);
            ts.sample(t, &r.snapshot());
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 2);
        let starts: Vec<u64> = ts.windows().map(|w| w.start_us).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_window() {
        let r = Registry::new();
        r.inc(r.counter("c"));
        r.record(r.histogram("h"), 7);
        let mut ts = TimeSeries::new(10, 4);
        ts.sample(10, &r.snapshot());
        let text = ts_jsonl(&ts);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"schema\":\"mspastry-ts/1\",\"interval_us\":10,\"windows\":1,\"dropped\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"start_us\":0,\"end_us\":10,\"counters\":{\"c\":1},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":7}}}"
        );
        // Deterministic.
        assert_eq!(text, ts_jsonl(&ts.clone()));
    }
}
