//! The per-run metrics registry: named counters and histograms.
//!
//! Unlike the process-global atomics it replaces, a `Registry` belongs to
//! one simulation run; parallel runs (e.g. `cargo test`) each get their own
//! and cannot cross-contaminate. Names are interned once (at node/network
//! construction), so the hot path is an index into a flat vector.

use crate::hist::{HistSnapshot, Histogram};
use std::cell::RefCell;
use std::collections::HashMap;

/// Handle to a registered counter (an index; cheap to copy and store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

#[derive(Debug, Default)]
struct Inner {
    counter_index: HashMap<&'static str, u32>,
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    hist_index: HashMap<&'static str, u32>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

/// A per-run collection of named counters and histograms.
///
/// Interior-mutable (`RefCell`): the simulator is single-threaded and the
/// registry handle is shared between the runner, the network and every node.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RefCell<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-finds) a counter by name.
    pub fn counter(&self, name: &'static str) -> CounterId {
        let mut g = self.inner.borrow_mut();
        if let Some(&i) = g.counter_index.get(name) {
            return CounterId(i);
        }
        let i = g.counters.len() as u32;
        g.counter_index.insert(name, i);
        g.counter_names.push(name);
        g.counters.push(0);
        CounterId(i)
    }

    /// Registers (or re-finds) a histogram by name.
    pub fn histogram(&self, name: &'static str) -> HistId {
        let mut g = self.inner.borrow_mut();
        if let Some(&i) = g.hist_index.get(name) {
            return HistId(i);
        }
        let i = g.hists.len() as u32;
        g.hist_index.insert(name, i);
        g.hist_names.push(name);
        g.hists.push(Histogram::new());
        HistId(i)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.inner.borrow_mut().counters[id.0 as usize] += n;
    }

    /// Increments a counter.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        self.inner.borrow_mut().hists[id.0 as usize].record(v);
    }

    /// Current value of a counter by name (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        let g = self.inner.borrow();
        g.counter_index
            .get(name)
            .map(|&i| g.counters[i as usize])
            .unwrap_or(0)
    }

    /// Freezes all metrics into a name-sorted snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.borrow();
        let mut counters: Vec<(String, u64)> = g
            .counter_names
            .iter()
            .zip(&g.counters)
            .map(|(&n, &v)| (n.to_string(), v))
            .collect();
        counters.sort();
        let mut histograms: Vec<(String, HistSnapshot)> = g
            .hist_names
            .iter()
            .zip(&g.hists)
            .map(|(&n, h)| (n.to_string(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// A frozen, name-sorted view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| &self.histograms[i].1)
            .ok()
    }

    /// Folds another snapshot into this one: counters are summed by name and
    /// histograms merged by name ([`HistSnapshot::merge`]); metrics present
    /// in only one snapshot carry over unchanged. Both name orderings stay
    /// sorted, so merging is deterministic regardless of which runs of a
    /// sweep registered which metrics.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters = Vec::with_capacity(self.counters.len().max(other.counters.len()));
        let (mut a, mut b) = (
            self.counters.drain(..).peekable(),
            other.counters.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some((na, _)), Some((nb, _))) => {
                    if na < nb {
                        counters.push(a.next().unwrap());
                    } else if nb < na {
                        counters.push(b.next().unwrap().clone());
                    } else {
                        let (name, va) = a.next().unwrap();
                        let (_, vb) = b.next().unwrap();
                        counters.push((name, va + vb));
                    }
                }
                (Some(_), None) => counters.push(a.next().unwrap()),
                (None, Some(_)) => counters.push(b.next().unwrap().clone()),
                (None, None) => break,
            }
        }
        drop(a);
        self.counters = counters;

        let mut hists = Vec::with_capacity(self.histograms.len().max(other.histograms.len()));
        let (mut a, mut b) = (
            self.histograms.drain(..).peekable(),
            other.histograms.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some((na, _)), Some((nb, _))) => {
                    if na < nb {
                        hists.push(a.next().unwrap());
                    } else if nb < na {
                        hists.push(b.next().unwrap().clone());
                    } else {
                        let (name, mut ha) = a.next().unwrap();
                        let (_, hb) = b.next().unwrap();
                        ha.merge(hb);
                        hists.push((name, ha));
                    }
                }
                (Some(_), None) => hists.push(a.next().unwrap()),
                (None, Some(_)) => hists.push(b.next().unwrap().clone()),
                (None, None) => break,
            }
        }
        drop(a);
        self.histograms = hists;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_interned() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value("x"), 3);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.inc(r.counter("zeta"));
        r.add(r.counter("alpha"), 7);
        r.record(r.histogram("lat"), 100);
        r.record(r.histogram("lat"), 200);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("alpha".to_string(), 7), ("zeta".to_string(), 1)]
        );
        assert_eq!(s.counter("alpha"), 7);
        assert_eq!(s.counter("nope"), 0);
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, Some(100));
    }

    #[test]
    fn snapshots_merge_by_name() {
        let a = Registry::new();
        a.add(a.counter("shared"), 3);
        a.inc(a.counter("only_a"));
        a.record(a.histogram("lat"), 10);
        let b = Registry::new();
        b.add(b.counter("shared"), 4);
        b.inc(b.counter("only_b"));
        b.record(b.histogram("lat"), 30);
        b.record(b.histogram("hops"), 2);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("shared"), 7);
        assert_eq!(s.counter("only_a"), 1);
        assert_eq!(s.counter("only_b"), 1);
        let lat = s.histogram("lat").unwrap();
        assert_eq!((lat.count, lat.min, lat.max), (2, Some(10), Some(30)));
        assert_eq!(s.histogram("hops").unwrap().count, 1);
        // Name ordering stays sorted (the artifact writer relies on it).
        let names: Vec<_> = s.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn separate_registries_do_not_share_state() {
        let a = Registry::new();
        let b = Registry::new();
        a.inc(a.counter("c"));
        assert_eq!(b.counter_value("c"), 0);
    }
}
