//! Simulator self-profiling: where does wall time go at paper scale?
//!
//! A [`Profiler`] accumulates, per event *kind* (message delivery, protocol
//! timer, churn join/fail, workload tick, …), how many events were
//! dispatched and how much wall time their handlers consumed, plus gauges of
//! the event-queue depth over the run. The simulator is virtual-time
//! single-threaded, so the profiler is plain owned state — no atomics, no
//! sampling tricks; the runner wraps each dispatch in two `Instant` reads
//! only when profiling was requested, keeping the default path free.
//!
//! Wall-clock durations are inherently nondeterministic, which is why the
//! profile lives in its own `"prof"` artifact member: the determinism
//! guarantee (bit-identical run artifacts) covers everything *except* this
//! block, and the harness determinism test compares artifacts with it
//! stripped.

use crate::json::JsonWriter;

/// Handle to a registered event-kind slot (an index; cheap to copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindId(u32);

#[derive(Debug, Clone, Default)]
struct KindSlot {
    name: &'static str,
    count: u64,
    ns: u64,
}

/// Accumulates per-event-kind dispatch counts and wall time, plus queue
/// depth gauges. Owned by the run loop; see the module docs.
#[derive(Debug, Default)]
pub struct Profiler {
    kinds: Vec<KindSlot>,
    pop_ns: u64,
    depth_sum: u64,
    depth_max: u64,
    depth_samples: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an event-kind slot. Call once per kind at setup; the hot
    /// path only indexes.
    pub fn kind(&mut self, name: &'static str) -> KindId {
        if let Some(i) = self.kinds.iter().position(|k| k.name == name) {
            return KindId(i as u32);
        }
        let id = KindId(self.kinds.len() as u32);
        self.kinds.push(KindSlot {
            name,
            count: 0,
            ns: 0,
        });
        id
    }

    /// Records one dispatched event of `id` that took `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, id: KindId, ns: u64) {
        let k = &mut self.kinds[id.0 as usize];
        k.count += 1;
        k.ns += ns;
    }

    /// Adds `ns` nanoseconds of event-queue pop/schedule overhead (time the
    /// run loop spent outside any handler).
    #[inline]
    pub fn record_pop(&mut self, ns: u64) {
        self.pop_ns += ns;
    }

    /// Gauges the event-queue depth observed after a dispatch.
    #[inline]
    pub fn gauge_depth(&mut self, depth: usize) {
        let d = depth as u64;
        self.depth_sum += d;
        self.depth_max = self.depth_max.max(d);
        self.depth_samples += 1;
    }

    /// Freezes the profile. `wall_us` is the run's total wall time and
    /// `queue_high_water` the deepest the event queue ever got (both owned
    /// by the run loop, not the profiler).
    pub fn report(&self, wall_us: u64, queue_high_water: u64) -> ProfReport {
        let mut kinds: Vec<KindStat> = self
            .kinds
            .iter()
            .filter(|k| k.count > 0)
            .map(|k| KindStat {
                name: k.name.to_string(),
                count: k.count,
                ns: k.ns,
            })
            .collect();
        kinds.sort_by(|a, b| a.name.cmp(&b.name));
        ProfReport {
            wall_us,
            events: kinds.iter().map(|k| k.count).sum(),
            kinds,
            pop_ns: self.pop_ns,
            depth_mean: if self.depth_samples > 0 {
                self.depth_sum as f64 / self.depth_samples as f64
            } else {
                0.0
            },
            depth_max: self.depth_max.max(queue_high_water),
            depth_samples: self.depth_samples,
        }
    }
}

/// Dispatch count and handler wall time of one event kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStat {
    /// Event-kind name (e.g. `"msg"`, `"timer"`).
    pub name: String,
    /// Events dispatched.
    pub count: u64,
    /// Total handler wall time, nanoseconds.
    pub ns: u64,
}

/// A frozen self-profile of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    /// Total run wall time, microseconds.
    pub wall_us: u64,
    /// Total events dispatched (sum over kinds).
    pub events: u64,
    /// Per-kind stats, name-sorted; kinds that never fired are omitted.
    pub kinds: Vec<KindStat>,
    /// Event-queue pop/schedule overhead, nanoseconds.
    pub pop_ns: u64,
    /// Mean event-queue depth over the run.
    pub depth_mean: f64,
    /// Deepest the event queue ever got.
    pub depth_max: u64,
    /// Number of depth gauge samples.
    pub depth_samples: u64,
}

/// Serialises a [`ProfReport`] as one JSON object value (the run artifact's
/// `"prof"` member).
pub fn prof_json(w: &mut JsonWriter, p: &ProfReport) {
    w.begin_object();
    w.field_u64("wall_us", p.wall_us)
        .field_u64("events", p.events)
        .field_u64("pop_ns", p.pop_ns);
    w.key("queue")
        .begin_object()
        .field_f64("depth_mean", p.depth_mean)
        .field_u64("depth_max", p.depth_max)
        .field_u64("depth_samples", p.depth_samples)
        .end_object();
    w.key("kinds").begin_object();
    for k in &p.kinds {
        w.key(&k.name)
            .begin_object()
            .field_u64("count", k.count)
            .field_u64("ns", k.ns)
            .end_object();
    }
    w.end_object();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_kind() {
        let mut p = Profiler::new();
        let msg = p.kind("msg");
        let timer = p.kind("timer");
        p.kind("never");
        assert_eq!(p.kind("msg"), msg); // idempotent registration
        p.record(msg, 100);
        p.record(msg, 50);
        p.record(timer, 7);
        p.record_pop(3);
        p.gauge_depth(10);
        p.gauge_depth(4);
        let r = p.report(1_000, 12);
        assert_eq!(r.events, 3);
        assert_eq!(r.wall_us, 1_000);
        assert_eq!(r.pop_ns, 3);
        // Name-sorted, silent kinds omitted.
        let names: Vec<&str> = r.kinds.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["msg", "timer"]);
        assert_eq!((r.kinds[0].count, r.kinds[0].ns), (2, 150));
        assert_eq!(r.depth_mean, 7.0);
        assert_eq!(r.depth_max, 12); // high-water beats gauged max
        assert_eq!(r.depth_samples, 2);
    }

    #[test]
    fn empty_profiler_reports_zeroes() {
        let r = Profiler::new().report(0, 0);
        assert_eq!(r.events, 0);
        assert!(r.kinds.is_empty());
        assert_eq!(r.depth_mean, 0.0);
    }

    #[test]
    fn json_shape() {
        let mut p = Profiler::new();
        let m = p.kind("msg");
        p.record(m, 250);
        p.gauge_depth(2);
        let mut w = JsonWriter::new();
        prof_json(&mut w, &p.report(9, 5));
        assert_eq!(
            w.finish(),
            "{\"wall_us\":9,\"events\":1,\"pop_ns\":0,\
             \"queue\":{\"depth_mean\":2.0,\"depth_max\":5,\"depth_samples\":1},\
             \"kinds\":{\"msg\":{\"count\":1,\"ns\":250}}}"
        );
    }
}
