#![warn(missing_docs)]
//! Per-run observability for the MSPastry reproduction.
//!
//! Three pieces, shared through one cheap [`Obs`] handle that the harness
//! threads into the network simulator and every protocol node:
//!
//! * a [`registry::Registry`] of named counters and log-bucketed
//!   [`hist::Histogram`]s — per *run*, not per process, so parallel tests
//!   and repeated runs cannot cross-contaminate;
//! * a [`recorder::FlightRecorder`] — a bounded ring buffer of per-lookup
//!   hop events ([`HopEvent`]), sampled by a deterministic hash of the
//!   lookup identity so the complete path of a sampled lookup (every
//!   forward, ack, retransmission, exclusion and drop, with timestamps and
//!   RTO state) can be reconstructed from the dump;
//! * a hand-rolled [`json`] writer for machine-readable artifacts (the
//!   build environment is offline; no serde).
//!
//! Two live-telemetry layers sit on top: [`timeseries`] samples per-interval
//! metric *deltas* on a clock-driven cadence (the `mspastry-ts/1` artifact),
//! and [`prof`] accumulates the simulator's own per-event-kind dispatch
//! counts and wall time (the run artifact's `"prof"` member).
//!
//! A disabled handle ([`Obs::disabled`]) is a `None` — every operation is a
//! single branch, so instrumented code costs nothing in protocol unit tests
//! and library embeddings.

pub mod hist;
pub mod json;
pub mod prof;
pub mod recorder;
pub mod registry;
pub mod timeseries;

pub use hist::{HistSnapshot, Histogram};
pub use json::JsonWriter;
pub use prof::{prof_json, KindStat, ProfReport, Profiler};
pub use recorder::{FlightRecorder, HopEvent, HopKind, NO_PEER};
pub use registry::{CounterId, HistId, Registry, Snapshot};
pub use timeseries::{ts_jsonl, TimeSeries, TsWindow, TS_SCHEMA};

use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug)]
struct Core {
    registry: Registry,
    recorder: RefCell<FlightRecorder>,
    /// Copy of the recorder's sampling threshold, readable without a
    /// `RefCell` borrow: the sampled-check runs on every forwarded lookup.
    threshold: u64,
    /// Echo every drop event to stderr (the `MSPASTRY_DEBUG_DROPS` path).
    echo_drops: bool,
}

/// A cheap, cloneable handle to one run's observability state.
///
/// The simulator is single-threaded; the handle is an `Rc`, and a disabled
/// handle is a `None` so instrumentation is a single branch when off.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Rc<Core>>,
}

impl Obs {
    /// A no-op handle: every operation is a cheap branch.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Creates a live handle: a fresh registry plus a flight recorder
    /// sampling `trace_sample_rate` of lookups into a ring of
    /// `trace_capacity` events. `echo_drops` mirrors drop events to stderr.
    pub fn new(trace_sample_rate: f64, trace_capacity: usize, echo_drops: bool) -> Self {
        let recorder = FlightRecorder::new(trace_sample_rate, trace_capacity);
        let threshold = recorder.threshold();
        Obs {
            inner: Some(Rc::new(Core {
                registry: Registry::new(),
                recorder: RefCell::new(recorder),
                threshold,
                echo_drops,
            })),
        }
    }

    /// `true` unless this is a disabled handle.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-finds) a counter. Returns a dummy id when disabled.
    pub fn counter(&self, name: &'static str) -> CounterId {
        match &self.inner {
            Some(c) => c.registry.counter(name),
            None => CounterId(u32::MAX),
        }
    }

    /// Registers (or re-finds) a histogram. Returns a dummy id when disabled.
    pub fn histogram(&self, name: &'static str) -> HistId {
        match &self.inner {
            Some(c) => c.registry.histogram(name),
            None => HistId(u32::MAX),
        }
    }

    /// Increments a counter.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        if let Some(c) = &self.inner {
            c.registry.inc(id);
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(c) = &self.inner {
            c.registry.add(id, n);
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        if let Some(c) = &self.inner {
            c.registry.record(id, v);
        }
    }

    /// `true` if lookup `(src, seq)` is in the trace sample. `false` when
    /// disabled or tracing is off — callers guard event construction on it.
    #[inline]
    pub fn sampled(&self, src: u128, seq: u64) -> bool {
        match &self.inner {
            Some(c) => c.threshold != 0 && recorder::lookup_hash(src, seq) <= c.threshold,
            None => false,
        }
    }

    /// Records a hop event (call only after [`Self::sampled`] said yes; an
    /// unsampled event is recorded anyway — sampling is the caller's gate,
    /// not an invariant of the ring).
    pub fn hop(&self, ev: HopEvent) {
        if let Some(c) = &self.inner {
            c.recorder.borrow_mut().push(ev);
        }
    }

    /// Records a lookup drop: bumps the per-reason counter, mirrors to
    /// stderr when drop echoing is on, and traces the event if sampled.
    pub fn drop_event(&self, reason_counter: CounterId, ev: HopEvent) {
        let Some(c) = &self.inner else {
            return;
        };
        c.registry.inc(reason_counter);
        if c.echo_drops {
            eprintln!(
                "drop at t={} reason={} lookup={:x}#{} node={:x}",
                ev.at_us, ev.note, ev.src, ev.seq, ev.node
            );
        }
        if c.recorder.borrow().sampled(ev.src, ev.seq) {
            c.recorder.borrow_mut().push(ev);
        }
    }

    /// The configured trace sampling rate (0.0 when disabled).
    pub fn trace_sample_rate(&self) -> f64 {
        match &self.inner {
            Some(c) => c.recorder.borrow().sample_rate(),
            None => 0.0,
        }
    }

    /// Freezes all counters and histograms.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(c) => c.registry.snapshot(),
            None => Snapshot::default(),
        }
    }

    /// Drains the flight recorder: events in recording order plus the count
    /// of events lost to ring overwrite. The recorder restarts empty.
    pub fn take_trace(&self) -> (Vec<HopEvent>, u64) {
        match &self.inner {
            Some(c) => {
                let (rate, cap) = {
                    let r = c.recorder.borrow();
                    (r.sample_rate(), r.capacity())
                };
                let old = c.recorder.replace(FlightRecorder::new(rate, cap));
                old.into_events()
            }
            None => (Vec::new(), 0),
        }
    }
}

/// Serialises hop events as JSONL (one JSON object per line), in order.
///
/// Node identifiers are lower-case hex strings; the lookup identity is
/// `"<src-hex>#<seq>"` so one field groups a lookup's whole path.
pub fn trace_jsonl(events: &[HopEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        write_hop_jsonl(&mut out, ev);
    }
    out
}

fn write_hop_jsonl(out: &mut String, ev: &HopEvent) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"t\":{},\"kind\":\"{}\",\"lookup\":\"{:x}#{}\",\"node\":\"{:x}\"",
        ev.at_us,
        ev.kind.name(),
        ev.src,
        ev.seq,
        ev.node
    );
    if ev.peer != NO_PEER {
        let _ = write!(out, ",\"peer\":\"{:x}\"", ev.peer);
    }
    let _ = write!(out, ",\"hops\":{},\"attempt\":{}", ev.hops, ev.attempt);
    if ev.detail_us != 0 {
        let _ = write!(out, ",\"detail_us\":{}", ev.detail_us);
    }
    if !ev.note.is_empty() {
        let mut note = String::new();
        json::escape_into(&mut note, ev.note);
        let _ = write!(out, ",\"note\":\"{note}\"");
    }
    out.push_str("}\n");
}

/// Serialises a registry snapshot as a JSON object with `counters` and
/// `histograms` members (both keyed by metric name, sorted).
pub fn snapshot_json(w: &mut JsonWriter, s: &Snapshot) {
    w.begin_object();
    w.key("counters").begin_object();
    for (name, v) in &s.counters {
        w.key(name).u64(*v);
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (name, h) in &s.histograms {
        w.key(name).begin_object();
        w.field_u64("count", h.count)
            .field_u64("sum", h.sum)
            .field_opt_u64("min", h.min)
            .field_opt_u64("max", h.max)
            .field_opt_u64("p50", h.p50)
            .field_opt_u64("p90", h.p90)
            .field_opt_u64("p99", h.p99);
        w.key("buckets").begin_array();
        for &(lb, c) in &h.buckets {
            w.begin_array().u64(lb).u64(c).end_array();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let o = Obs::disabled();
        let c = o.counter("x");
        let h = o.histogram("y");
        o.inc(c);
        o.add(c, 5);
        o.record(h, 42);
        assert!(!o.sampled(1, 2));
        assert!(!o.is_enabled());
        let s = o.snapshot();
        assert!(s.counters.is_empty() && s.histograms.is_empty());
        assert_eq!(o.take_trace().0.len(), 0);
    }

    #[test]
    fn enabled_handle_collects_and_snapshots() {
        let o = Obs::new(1.0, 16, false);
        let c = o.counter("sends");
        o.inc(c);
        o.inc(c);
        let h = o.histogram("lat");
        o.record(h, 9);
        assert!(o.sampled(1, 2));
        o.hop(HopEvent {
            at_us: 5,
            node: 1,
            src: 1,
            seq: 2,
            kind: HopKind::Issue,
            peer: NO_PEER,
            hops: 0,
            attempt: 0,
            detail_us: 0,
            note: "",
        });
        let s = o.snapshot();
        assert_eq!(s.counter("sends"), 2);
        assert_eq!(s.histogram("lat").unwrap().count, 1);
        let (trace, lost) = o.take_trace();
        assert_eq!((trace.len(), lost), (1, 0));
        assert_eq!(trace[0].kind, HopKind::Issue);
    }

    #[test]
    fn clones_share_state() {
        let a = Obs::new(0.0, 16, false);
        let b = a.clone();
        let c = a.counter("n");
        b.inc(b.counter("n"));
        a.inc(c);
        assert_eq!(a.snapshot().counter("n"), 2);
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let ev = HopEvent {
            at_us: 100,
            node: 0xab,
            src: 0xcd,
            seq: 7,
            kind: HopKind::Drop,
            peer: 0xef,
            hops: 3,
            attempt: 1,
            detail_us: 250,
            note: "no-route",
        };
        let line = trace_jsonl(&[ev]);
        assert_eq!(
            line,
            "{\"t\":100,\"kind\":\"drop\",\"lookup\":\"cd#7\",\"node\":\"ab\",\"peer\":\"ef\",\"hops\":3,\"attempt\":1,\"detail_us\":250,\"note\":\"no-route\"}\n"
        );
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let o = Obs::new(0.0, 1, false);
        o.inc(o.counter("a"));
        o.record(o.histogram("h"), 3);
        let mut w = JsonWriter::new();
        snapshot_json(&mut w, &o.snapshot());
        let s = w.finish();
        assert!(s.starts_with("{\"counters\":{\"a\":1}"));
        assert!(s.contains("\"histograms\":{\"h\":{\"count\":1"));
        assert!(s.ends_with("}}"));
    }
}
