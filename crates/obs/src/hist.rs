//! Log-bucketed (HDR-style) histograms.
//!
//! Values are `u64` (the simulator measures everything in integer
//! microseconds or counts). Buckets are log-linear: exact below 16, then 8
//! sub-buckets per power of two, bounding the relative recording error at
//! 12.5 % while keeping the whole table a flat 500-slot array — recording is
//! a couple of shifts, no allocation, no floating point.

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Buckets `0..LINEAR` hold exactly one value each.
const LINEAR: u64 = SUB * 2;
/// Total bucket count needed to cover all of `u64` (the highest index is
/// produced by values with the top bit set: exponent 63).
const N_BUCKETS: usize = (63 - SUB_BITS as usize) * SUB as usize + LINEAR as usize;

/// Index of the bucket holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
        let mantissa = (v >> (exp - SUB_BITS)) - SUB; // 0..SUB
        ((exp - SUB_BITS) as usize - 1) * SUB as usize + mantissa as usize + LINEAR as usize
    }
}

/// Smallest value mapping to bucket `idx` (the bucket's lower bound).
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if (idx as u64) < LINEAR {
        idx as u64
    } else {
        let k = idx - LINEAR as usize;
        let exp = (k / SUB as usize) as u32 + SUB_BITS + 1;
        let mantissa = (k % SUB as usize) as u64;
        (SUB + mantissa) << (exp - SUB_BITS)
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; N_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket lower bound, clamped to the
    /// exactly-tracked `[min, max]` range. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample the quantile falls on (nearest-rank).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
            .collect()
    }

    /// Freezes the histogram into a serialisable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            buckets: self.nonzero_buckets(),
        }
    }
}

impl HistSnapshot {
    /// Nearest-rank `q`-quantile recomputed from the snapshot's buckets,
    /// clamped to the exact `[min, max]` range (mirrors
    /// [`Histogram::quantile`]).
    fn quantile_from_buckets(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lb, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(lb.clamp(min, max));
            }
        }
        Some(max)
    }

    /// Folds another snapshot into this one, as if every sample behind both
    /// had been recorded into a single [`Histogram`]: bucket counts are
    /// merged by lower bound and the quantiles are recomputed from the
    /// merged buckets. Used by the sweep executor to aggregate one metric
    /// across the runs of a multi-seed sweep.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        // Merge-join the two ascending bucket lists.
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(la, ca)), Some(&&(lb, cb))) => {
                    if la < lb {
                        merged.push((la, ca));
                        a.next();
                    } else if lb < la {
                        merged.push((lb, cb));
                        b.next();
                    } else {
                        merged.push((la, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        };
        self.max = match (self.max, other.max) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        };
        self.p50 = self.quantile_from_buckets(0.5);
        self.p90 = self.quantile_from_buckets(0.9);
        self.p99 = self.quantile_from_buckets(0.99);
    }
}

/// An immutable summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact minimum.
    pub min: Option<u64>,
    /// Exact maximum.
    pub max: Option<u64>,
    /// Median (bucket lower bound).
    pub p50: Option<u64>,
    /// 90th percentile (bucket lower bound).
    pub p90: Option<u64>,
    /// 99th percentile (bucket lower bound).
    pub p99: Option<u64>,
    /// Non-empty `(lower_bound, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must strictly increase.
        let mut prev = None;
        for idx in 0..N_BUCKETS {
            let lb = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lb), idx, "lb {lb} of bucket {idx}");
            if let Some(p) = prev {
                assert!(lb > p, "bounds not increasing at {idx}");
            }
            prev = Some(lb);
        }
    }

    #[test]
    fn edge_values_map_in_range() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            1023,
            1024,
            1025,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "{v} -> {idx}");
            let lb = bucket_lower_bound(idx);
            assert!(lb <= v, "{v} below its bucket bound {lb}");
            // Relative bucketing error is bounded by one sub-bucket (12.5 %).
            if v >= LINEAR {
                assert!((v - lb) as f64 / v as f64 <= 0.125 + 1e-9);
            }
        }
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        assert!((450..=560).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((875..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(
            h.quantile(1.0),
            Some(h.quantile(1.0).unwrap().clamp(1, 1000))
        );
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(777));
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.nonzero_buckets(), all.nonzero_buckets());
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.snapshot();
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), before);
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.snapshot(), before);
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..400u64 {
            if v % 3 == 0 {
                a.record(v * 17 % 5011);
            } else {
                b.record(v * 29 % 7919);
            }
        }
        let mut merged_snap = a.snapshot();
        merged_snap.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(merged_snap, a.snapshot());
    }

    #[test]
    fn snapshot_merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(123);
        let mut s = h.snapshot();
        let before = s.clone();
        s.merge(&Histogram::new().snapshot());
        assert_eq!(s, before);
        let mut e = Histogram::new().snapshot();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }
}
