//! Property-based tests for graph and topology invariants.

use proptest::prelude::*;
use topology::graph::Graph;
use topology::transit_stub::TransitStubParams;
use topology::{Topology, TopologyKind};

/// A random connected undirected graph where routing weight equals delay.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut g = Graph::with_routers(n);
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // Random spanning tree + a few chords.
        for i in 1..n {
            let j = (next() as usize) % i;
            let d = next() % 10_000 + 1;
            g.add_edge(i as u32, j as u32, d as f64, d);
        }
        for _ in 0..n / 2 {
            let i = (next() as usize) % n;
            let j = (next() as usize) % n;
            if i != j {
                let d = next() % 10_000 + 1;
                g.add_edge(i as u32, j as u32, d as f64, d);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shortest_path_delays_are_symmetric(g in arb_connected_graph()) {
        let m = g.all_pairs_delay();
        for a in 0..g.len() as u32 {
            for b in 0..g.len() as u32 {
                prop_assert_eq!(m.delay_us(a, b), m.delay_us(b, a));
            }
        }
    }

    #[test]
    fn shortest_path_delays_satisfy_triangle_inequality(g in arb_connected_graph()) {
        // Holds whenever routing weight == delay (true for this generator).
        let m = g.all_pairs_delay();
        let n = g.len() as u32;
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(m.delay_us(a, b) <= m.delay_us(a, c) + m.delay_us(c, b));
                }
            }
        }
    }

    #[test]
    fn self_delay_is_zero_and_others_positive(g in arb_connected_graph()) {
        let m = g.all_pairs_delay();
        for a in 0..g.len() as u32 {
            prop_assert_eq!(m.delay_us(a, a), 0);
        }
    }

    #[test]
    fn transit_stub_generator_is_connected_for_any_seed(seed in any::<u64>()) {
        let ts = topology::transit_stub::generate(&TransitStubParams {
            seed,
            ..TransitStubParams::tiny()
        });
        prop_assert!(ts.graph.is_connected());
        prop_assert!(!ts.stub_routers.is_empty());
    }

    #[test]
    fn end_to_end_delay_is_symmetric_for_attach_points(idx_a in 0usize..1000, idx_b in 0usize..1000) {
        // Built once per test case is wasteful but bounded by the case count.
        let t = Topology::build(TopologyKind::GaTechTiny);
        let pts = t.attach_points();
        let a = pts[idx_a % pts.len()];
        let b = pts[idx_b % pts.len()];
        prop_assert_eq!(t.end_to_end_delay_us(a, b), t.end_to_end_delay_us(b, a));
        prop_assert!(t.end_to_end_delay_us(a, b) >= 2 * t.lan_delay_us());
    }
}
