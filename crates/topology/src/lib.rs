#![warn(missing_docs)]
//! Network topologies for the MSPastry evaluation.
//!
//! The paper evaluates MSPastry on three router-level topologies — *GATech*
//! (transit-stub, 5050 routers), *Mercator* (AS-level, IP-hop metric) and
//! *CorpNet* (corporate network, 298 routers) — with end nodes attached to
//! routers through LAN links. This crate generates structurally equivalent
//! topologies (see DESIGN.md for the substitution rationale), computes their
//! all-pairs one-way delay matrices, and exposes a uniform [`Topology`] handle
//! that the simulator queries for end-to-end delays.
//!
//! # Example
//!
//! ```
//! use topology::{Topology, TopologyKind};
//!
//! let topo = Topology::build(TopologyKind::GaTechSmall);
//! let a = topo.attach_points()[0];
//! let b = *topo.attach_points().last().unwrap();
//! let delay = topo.router_delay_us(a, b);
//! assert!(delay > 0 || a == b);
//! ```

pub mod as_graph;
pub mod corpnet;
pub mod graph;
pub mod transit_stub;

pub use graph::{DelayMatrix, Edge, Graph, RouterId};

use as_graph::AsGraphParams;
use corpnet::CorpNetParams;
use transit_stub::TransitStubParams;

/// Which topology to build, and at what scale.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyKind {
    /// Transit-stub topology at the paper's scale (≈5050 routers).
    GaTech,
    /// Scaled-down transit-stub (≈510 routers) for quick runs.
    GaTechSmall,
    /// Tiny transit-stub (≈50 routers) for unit tests.
    GaTechTiny,
    /// Mercator-like AS topology (hop-count proximity metric).
    Mercator,
    /// Tiny Mercator preset for unit tests.
    MercatorTiny,
    /// CorpNet-like corporate network (≈298 routers).
    CorpNet,
    /// Tiny CorpNet preset for unit tests.
    CorpNetTiny,
    /// Custom transit-stub parameters.
    CustomTransitStub(TransitStubParams),
    /// Custom AS-graph parameters.
    CustomAsGraph(AsGraphParams),
    /// Custom CorpNet parameters.
    CustomCorpNet(CorpNetParams),
}

/// A frozen topology: a delay matrix plus the set of routers end nodes may
/// attach to.
///
/// End-node-to-end-node delays add a LAN attach delay on both sides (1 ms by
/// default, as in the paper).
#[derive(Debug, Clone)]
pub struct Topology {
    name: &'static str,
    matrix: DelayMatrix,
    attach: Vec<RouterId>,
    lan_delay_us: u64,
}

/// Router count above which `Topology::build` keeps the delay matrix lazy
/// instead of materialising the dense all-pairs form. At 1024 routers the
/// dense matrix is 4 MB and builds in well under a second on a few cores; at
/// the paper-scale GATech's 5050 routers it would be ~100 MB and thousands of
/// Dijkstra passes, almost all of which a simulation never reads.
pub const DENSE_APSP_LIMIT: usize = 1024;

impl Topology {
    /// Freezes a router graph into a delay matrix: dense (built in parallel)
    /// for small graphs, lazily materialised per row above
    /// [`DENSE_APSP_LIMIT`].
    fn freeze(graph: Graph) -> DelayMatrix {
        if graph.len() <= DENSE_APSP_LIMIT {
            graph.all_pairs_delay()
        } else {
            DelayMatrix::lazy(graph)
        }
    }

    /// Builds the requested topology and precomputes its delay matrix.
    pub fn build(kind: TopologyKind) -> Self {
        match kind {
            TopologyKind::GaTech => {
                Self::from_transit_stub("GATech", &TransitStubParams::default())
            }
            TopologyKind::GaTechSmall => {
                Self::from_transit_stub("GATech-small", &TransitStubParams::small())
            }
            TopologyKind::GaTechTiny => {
                Self::from_transit_stub("GATech-tiny", &TransitStubParams::tiny())
            }
            TopologyKind::Mercator => Self::from_as_graph("Mercator", &AsGraphParams::default()),
            TopologyKind::MercatorTiny => {
                Self::from_as_graph("Mercator-tiny", &AsGraphParams::tiny())
            }
            TopologyKind::CorpNet => Self::from_corpnet("CorpNet", &CorpNetParams::default()),
            TopologyKind::CorpNetTiny => Self::from_corpnet("CorpNet-tiny", &CorpNetParams::tiny()),
            TopologyKind::CustomTransitStub(p) => Self::from_transit_stub("transit-stub", &p),
            TopologyKind::CustomAsGraph(p) => Self::from_as_graph("as-graph", &p),
            TopologyKind::CustomCorpNet(p) => Self::from_corpnet("corpnet", &p),
        }
    }

    fn from_transit_stub(name: &'static str, p: &TransitStubParams) -> Self {
        let ts = transit_stub::generate(p);
        Topology {
            name,
            matrix: Self::freeze(ts.graph),
            attach: ts.stub_routers,
            lan_delay_us: 1_000,
        }
    }

    fn from_as_graph(name: &'static str, p: &AsGraphParams) -> Self {
        let a = as_graph::generate(p);
        Topology {
            name,
            matrix: Self::freeze(a.graph),
            attach: a.routers,
            // The paper attaches Mercator end nodes directly to routers; at
            // our scaled-down router count two overlay nodes regularly share
            // a router, which would make their direct distance zero and the
            // relative delay penalty unbounded. Charge one extra IP hop for
            // the attachment instead (half the paper's per-hop cost on each
            // side).
            lan_delay_us: p.hop_delay_us / 2,
        }
    }

    fn from_corpnet(name: &'static str, p: &CorpNetParams) -> Self {
        let c = corpnet::generate(p);
        Topology {
            name,
            matrix: Self::freeze(c.graph),
            attach: c.routers,
            lan_delay_us: 1_000,
        }
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of routers in the topology.
    pub fn router_count(&self) -> usize {
        self.matrix.len()
    }

    /// Routers that end nodes may attach to.
    pub fn attach_points(&self) -> &[RouterId] {
        &self.attach
    }

    /// LAN delay of the end-node attach link, microseconds.
    pub fn lan_delay_us(&self) -> u64 {
        self.lan_delay_us
    }

    /// Router-to-router one-way delay, microseconds.
    pub fn router_delay_us(&self, a: RouterId, b: RouterId) -> u64 {
        self.matrix.delay_us(a, b)
    }

    /// End-node-to-end-node one-way delay between nodes attached at routers
    /// `a` and `b`, microseconds. The two LAN attach links are always paid;
    /// nodes sharing a router are on the same LAN but are still distinct
    /// hosts.
    pub fn end_to_end_delay_us(&self, a: RouterId, b: RouterId) -> u64 {
        self.matrix.delay_us(a, b) + 2 * self.lan_delay_us
    }

    /// Mean router-to-router delay over all pairs, microseconds.
    ///
    /// On a lazily materialised matrix (router count above
    /// [`DENSE_APSP_LIMIT`]) this forces every row.
    pub fn mean_router_delay_us(&self) -> f64 {
        self.matrix.mean_delay_us()
    }

    /// Number of delay-matrix source rows currently materialised; equals
    /// [`Topology::router_count`] for densely built topologies.
    pub fn delay_rows_materialized(&self) -> usize {
        self.matrix.rows_materialized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_tiny_presets() {
        for kind in [
            TopologyKind::GaTechTiny,
            TopologyKind::MercatorTiny,
            TopologyKind::CorpNetTiny,
        ] {
            let t = Topology::build(kind);
            assert!(t.router_count() > 5);
            assert!(!t.attach_points().is_empty());
            let a = t.attach_points()[0];
            let b = *t.attach_points().last().unwrap();
            assert_eq!(t.router_delay_us(a, b), t.router_delay_us(b, a));
        }
    }

    #[test]
    fn end_to_end_adds_lan_delay() {
        let t = Topology::build(TopologyKind::GaTechTiny);
        let a = t.attach_points()[0];
        let b = *t.attach_points().last().unwrap();
        assert_eq!(
            t.end_to_end_delay_us(a, b),
            t.router_delay_us(a, b) + 2 * t.lan_delay_us()
        );
    }

    #[test]
    fn mercator_attach_charges_one_hop_total() {
        let t = Topology::build(TopologyKind::MercatorTiny);
        assert_eq!(
            2 * t.lan_delay_us(),
            crate::as_graph::AsGraphParams::tiny().hop_delay_us
        );
    }

    #[test]
    fn paper_scale_gatech_defers_apsp() {
        let t = Topology::build(TopologyKind::GaTech);
        assert!(t.router_count() > DENSE_APSP_LIMIT);
        assert_eq!(t.delay_rows_materialized(), 0, "no rows before first query");
        let a = t.attach_points()[0];
        let b = *t.attach_points().last().unwrap();
        // Repeated queries are deterministic and only materialise the two
        // source rows they touch. (Forward and reverse delays may differ:
        // equal-routing-weight ties resolve per source.)
        assert_eq!(t.router_delay_us(a, b), t.router_delay_us(a, b));
        assert_eq!(t.router_delay_us(b, a), t.router_delay_us(b, a));
        assert_eq!(t.delay_rows_materialized(), 2);
    }

    #[test]
    fn small_topologies_stay_dense() {
        let t = Topology::build(TopologyKind::GaTechSmall);
        assert!(t.router_count() <= DENSE_APSP_LIMIT);
        assert_eq!(t.delay_rows_materialized(), t.router_count());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Topology::build(TopologyKind::GaTechTiny).name(),
            "GATech-tiny"
        );
        assert_eq!(
            Topology::build(TopologyKind::CorpNetTiny).name(),
            "CorpNet-tiny"
        );
    }
}
