//! Weighted router-level graphs and shortest-path computation.
//!
//! Edges carry two weights: a *routing* weight (used to select paths, mirroring
//! the routing-policy weights of the Georgia Tech topology generator) and a
//! *delay* weight (accumulated along the selected path to obtain the one-way
//! network delay). Keeping the two separate lets transit-stub topologies route
//! traffic through transit domains even when a shortcut through a stub domain
//! would have lower delay, exactly as the paper's GATech setup does.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a router within a [`Graph`].
pub type RouterId = u32;

/// A single directed edge of the router graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination router.
    pub to: RouterId,
    /// Weight used by shortest-path routing (policy weight).
    pub routing_weight: f64,
    /// One-way delay accumulated when a packet traverses this edge, in
    /// microseconds.
    pub delay_us: u64,
}

/// An undirected weighted multigraph of routers.
///
/// The graph is built incrementally with [`Graph::add_edge`] and then frozen
/// into a [`DelayMatrix`] with [`Graph::all_pairs_delay`].
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// Creates an empty graph with `n` routers and no links.
    pub fn with_routers(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of routers in the graph.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no routers.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a new isolated router and returns its id.
    pub fn add_router(&mut self) -> RouterId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as RouterId
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range, or if the weights are not finite
    /// and positive.
    pub fn add_edge(&mut self, a: RouterId, b: RouterId, routing_weight: f64, delay_us: u64) {
        assert!(
            routing_weight.is_finite() && routing_weight > 0.0,
            "routing weight must be finite and positive"
        );
        assert!((a as usize) < self.adj.len(), "router {a} out of range");
        assert!((b as usize) < self.adj.len(), "router {b} out of range");
        self.adj[a as usize].push(Edge {
            to: b,
            routing_weight,
            delay_us,
        });
        self.adj[b as usize].push(Edge {
            to: a,
            routing_weight,
            delay_us,
        });
    }

    /// Neighbours of router `r`.
    pub fn edges(&self, r: RouterId) -> &[Edge] {
        &self.adj[r as usize]
    }

    /// Single-source shortest paths from `src` by routing weight; returns the
    /// *delay* accumulated along the selected path for every destination.
    ///
    /// Unreachable routers get `u64::MAX`.
    pub fn shortest_delays_from(&self, src: RouterId) -> Vec<u64> {
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut delay = vec![u64::MAX; n];
        // Heap keyed on routing weight; f64 is not Ord so store total ordering
        // through bit conversion (all values are non-negative finite).
        let mut heap: BinaryHeap<Reverse<(u64, RouterId)>> = BinaryHeap::new();
        dist[src as usize] = 0.0;
        delay[src as usize] = 0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u as usize] {
                continue;
            }
            for e in &self.adj[u as usize] {
                let nd = d + e.routing_weight;
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    delay[e.to as usize] = delay[u as usize].saturating_add(e.delay_us);
                    heap.push(Reverse((nd.to_bits(), e.to)));
                }
            }
        }
        delay
    }

    /// Computes one source row of the delay matrix, clamped to `u32`.
    fn delay_row(&self, src: RouterId) -> Box<[u32]> {
        self.shortest_delays_from(src)
            .into_iter()
            .map(|d| d.min(u32::MAX as u64) as u32)
            .collect()
    }

    /// Computes the all-pairs one-way delay matrix eagerly, running the
    /// per-source Dijkstra passes across all available cores (the shared
    /// [`pool`] utility; rows land in source order, so the matrix is
    /// identical to a sequential build). For large graphs where the dense
    /// matrix itself is the problem, use [`DelayMatrix::lazy`] instead.
    pub fn all_pairs_delay(&self) -> DelayMatrix {
        let n = self.adj.len();
        let rows = pool::map(0, n, |src| self.delay_row(src as RouterId));
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            data.extend_from_slice(&row);
        }
        DelayMatrix {
            n,
            table: Table::Dense(data),
        }
    }

    /// Returns `true` if every router can reach every other router.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u as usize] {
                if !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    count += 1;
                    stack.push(e.to);
                }
            }
        }
        count == self.adj.len()
    }
}

/// Backing storage of a [`DelayMatrix`].
#[derive(Debug, Clone)]
enum Table {
    /// Fully materialised `n*n` row-major matrix.
    Dense(Vec<u32>),
    /// Rows computed on first use. The paper-scale GATech topology has 5050
    /// routers — a dense matrix is ~100 MB and ~5000 Dijkstra passes — while
    /// a run only ever asks about the routers its overlay nodes attach to,
    /// so the lazy form stores the graph and fills rows on demand.
    Lazy {
        graph: Graph,
        rows: Vec<std::sync::OnceLock<Box<[u32]>>>,
    },
}

/// Matrix of one-way delays between all router pairs, in microseconds.
///
/// Either dense (precomputed, small graphs) or lazily materialised per source
/// row (large graphs); lookups are identical in result and deterministic in
/// either form.
#[derive(Debug, Clone)]
pub struct DelayMatrix {
    n: usize,
    table: Table,
}

impl DelayMatrix {
    /// Wraps `graph` as a lazily materialised delay matrix: no shortest-path
    /// work happens until a source router's row is first queried.
    pub fn lazy(graph: Graph) -> Self {
        let n = graph.len();
        DelayMatrix {
            n,
            table: Table::Lazy {
                graph,
                rows: (0..n).map(|_| std::sync::OnceLock::new()).collect(),
            },
        }
    }

    /// Number of routers covered by the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix covers no routers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of source rows currently materialised (== `len()` for dense
    /// matrices). Diagnostic for memory accounting.
    pub fn rows_materialized(&self) -> usize {
        match &self.table {
            Table::Dense(_) => self.n,
            Table::Lazy { rows, .. } => rows.iter().filter(|r| r.get().is_some()).count(),
        }
    }

    /// One-way delay from `a` to `b` in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if either router id is out of range.
    #[inline]
    pub fn delay_us(&self, a: RouterId, b: RouterId) -> u64 {
        assert!((a as usize) < self.n && (b as usize) < self.n);
        match &self.table {
            Table::Dense(data) => data[a as usize * self.n + b as usize] as u64,
            Table::Lazy { graph, rows } => {
                let row = rows[a as usize].get_or_init(|| graph.delay_row(a));
                row[b as usize] as u64
            }
        }
    }

    /// Mean delay over all ordered pairs of distinct routers, in microseconds.
    ///
    /// On a lazy matrix this materialises every row.
    pub fn mean_delay_us(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    sum += self.delay_us(a as RouterId, b as RouterId);
                }
            }
        }
        sum as f64 / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::with_routers(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1, 1.0, 1000);
        }
        g
    }

    #[test]
    fn line_graph_delays_accumulate() {
        let g = line_graph(5);
        let d = g.shortest_delays_from(0);
        assert_eq!(d, vec![0, 1000, 2000, 3000, 4000]);
    }

    #[test]
    fn routing_weight_overrides_delay() {
        // Two routes 0->2: direct edge with huge routing weight but tiny delay,
        // and a two-hop route with small routing weights but big delays. The
        // policy weight must win path selection.
        let mut g = Graph::with_routers(3);
        g.add_edge(0, 2, 100.0, 1);
        g.add_edge(0, 1, 1.0, 500);
        g.add_edge(1, 2, 1.0, 500);
        let d = g.shortest_delays_from(0);
        assert_eq!(d[2], 1000, "path via router 1 should be selected");
    }

    #[test]
    fn apsp_is_symmetric_for_undirected_graphs() {
        let g = line_graph(6);
        let m = g.all_pairs_delay();
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(m.delay_us(a, b), m.delay_us(b, a));
            }
        }
    }

    #[test]
    fn unreachable_is_max() {
        let mut g = Graph::with_routers(2);
        g.add_router();
        g.add_edge(0, 1, 1.0, 10);
        let d = g.shortest_delays_from(0);
        assert_eq!(d[2], u64::MAX);
        assert!(!g.is_connected());
    }

    #[test]
    fn connected_line_is_connected() {
        assert!(line_graph(10).is_connected());
    }

    #[test]
    fn mean_delay_of_pair() {
        let g = line_graph(2);
        let m = g.all_pairs_delay();
        assert_eq!(m.mean_delay_us(), 1000.0);
    }

    #[test]
    fn lazy_matrix_matches_dense() {
        let mut g = line_graph(8);
        g.add_edge(0, 7, 3.0, 2500);
        g.add_edge(2, 5, 1.5, 700);
        let dense = g.all_pairs_delay();
        let lazy = DelayMatrix::lazy(g);
        assert_eq!(lazy.rows_materialized(), 0);
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(dense.delay_us(a, b), lazy.delay_us(a, b));
            }
        }
        assert_eq!(lazy.rows_materialized(), 8);
        assert_eq!(dense.rows_materialized(), 8);
        assert_eq!(dense.mean_delay_us(), lazy.mean_delay_us());
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let mut g = Graph::with_routers(2);
        g.add_edge(0, 1, -1.0, 10);
    }

    #[test]
    fn triangle_inequality_holds_for_shortest_paths() {
        // Shortest-path *routing weights* obey the triangle inequality; the
        // accumulated delays do too when routing weight == delay.
        let mut g = Graph::with_routers(4);
        g.add_edge(0, 1, 2.0, 2000);
        g.add_edge(1, 2, 2.0, 2000);
        g.add_edge(0, 2, 5.0, 5000);
        g.add_edge(2, 3, 1.0, 1000);
        let m = g.all_pairs_delay();
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    assert!(m.delay_us(a, b) <= m.delay_us(a, c) + m.delay_us(c, b));
                }
            }
        }
    }
}
