//! Mercator-like AS-level topology.
//!
//! The paper's *Mercator* topology has 102,639 routers grouped into 2,662
//! autonomous systems (AS), with hierarchical AS-path routing and the number
//! of network-level (IP) hops as the proximity metric.
//!
//! We reproduce the *structure* at a configurable scale (the full router count
//! is far beyond what an all-pairs matrix needs for overlays of a few thousand
//! nodes; see DESIGN.md substitution #2): a power-law-ish AS overlay with a
//! small densely connected core, mid-tier ASes attached to the core, and stub
//! ASes attached to mid-tier ASes. Each AS contains a small connected router
//! graph; inter-AS links connect random border routers. Routing minimises the
//! AS-hop count first (hierarchical routing, as in the Internet) and the
//! proximity metric is the IP hop count, expressed as 1 ms per hop so the
//! simulator's timeout machinery keeps working in time units.

use crate::graph::{Graph, RouterId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the Mercator-like AS topology generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsGraphParams {
    /// Number of core (tier-1) ASes; they form a clique.
    pub core_ases: usize,
    /// Number of mid-tier ASes, each multi-homed to 2 upstream ASes.
    pub mid_ases: usize,
    /// Number of stub ASes, each homed to 1-2 mid-tier ASes.
    pub stub_ases: usize,
    /// Average routers per AS.
    pub routers_per_as: usize,
    /// Nominal one-way delay charged per IP hop, in microseconds. The paper
    /// uses raw hop counts; we scale by this constant so that "delay" remains
    /// a time. 1000 us = 1 ms per hop.
    pub hop_delay_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AsGraphParams {
    fn default() -> Self {
        AsGraphParams {
            core_ases: 12,
            mid_ases: 60,
            stub_ases: 180,
            routers_per_as: 8,
            hop_delay_us: 1_000,
            seed: 7,
        }
    }
}

impl AsGraphParams {
    /// A tiny preset for fast tests.
    pub fn tiny() -> Self {
        AsGraphParams {
            core_ases: 3,
            mid_ases: 6,
            stub_ases: 12,
            routers_per_as: 4,
            ..Self::default()
        }
    }
}

/// Output of the AS-graph generator.
#[derive(Debug, Clone)]
pub struct AsGraph {
    /// Router-level graph; edge delays encode "1 hop".
    pub graph: Graph,
    /// All routers (end nodes may attach anywhere, per the paper).
    pub routers: Vec<RouterId>,
}

/// Generates a Mercator-like hierarchical AS topology.
pub fn generate(params: &AsGraphParams) -> AsGraph {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = Graph::default();
    let hop = params.hop_delay_us.max(1);
    // Hierarchical routing: inter-AS hops are strongly discouraged relative to
    // intra-AS hops, so the selected path minimises AS hops first. Delay,
    // however, counts every link as exactly one IP hop.
    const W_INTRA: f64 = 1.0;
    const W_INTER: f64 = 1_000.0;

    let mut as_routers: Vec<Vec<RouterId>> = Vec::new();
    let total_ases = params.core_ases + params.mid_ases + params.stub_ases;
    for _ in 0..total_ases {
        let k = rng
            .gen_range(params.routers_per_as.saturating_sub(2).max(2)..=params.routers_per_as + 2);
        let routers: Vec<RouterId> = (0..k).map(|_| g.add_router()).collect();
        // Connected random intra-AS graph (random spanning tree + chords).
        for i in 1..k {
            let j = rng.gen_range(0..i);
            g.add_edge(routers[i], routers[j], W_INTRA, hop);
        }
        for _ in 0..k / 2 {
            let i = rng.gen_range(0..k);
            let j = rng.gen_range(0..k);
            if i != j {
                g.add_edge(routers[i], routers[j], W_INTRA, hop);
            }
        }
        as_routers.push(routers);
    }

    let core = 0..params.core_ases;
    let mid = params.core_ases..params.core_ases + params.mid_ases;
    let stub = params.core_ases + params.mid_ases..total_ases;

    let link_as = |rng: &mut SmallRng, g: &mut Graph, a: usize, b: usize| {
        let ra = as_routers[a][rng.gen_range(0..as_routers[a].len())];
        let rb = as_routers[b][rng.gen_range(0..as_routers[b].len())];
        g.add_edge(ra, rb, W_INTER, hop);
    };

    // Core clique.
    for a in core.clone() {
        for b in core.clone() {
            if a < b {
                link_as(&mut rng, &mut g, a, b);
            }
        }
    }
    // Mid-tier: two upstreams in the core (multi-homing).
    for m in mid.clone() {
        let u1 = rng.gen_range(core.clone());
        let mut u2 = rng.gen_range(core.clone());
        if u2 == u1 {
            u2 = (u2 + 1) % params.core_ases.max(1);
        }
        link_as(&mut rng, &mut g, m, u1);
        if params.core_ases > 1 {
            link_as(&mut rng, &mut g, m, u2);
        }
        // Occasional peering between mid-tier ASes.
        if rng.gen_bool(0.3) && params.mid_ases > 1 {
            let peer = rng.gen_range(mid.clone());
            if peer != m {
                link_as(&mut rng, &mut g, m, peer);
            }
        }
    }
    // Stubs: homed to 1-2 mid-tier ASes.
    for s in stub {
        let u1 = rng.gen_range(mid.clone());
        link_as(&mut rng, &mut g, s, u1);
        if rng.gen_bool(0.25) {
            let u2 = rng.gen_range(mid.clone());
            if u2 != u1 {
                link_as(&mut rng, &mut g, s, u2);
            }
        }
    }

    let routers = (0..g.len() as RouterId).collect();
    AsGraph { graph: g, routers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_connected() {
        let a = generate(&AsGraphParams::tiny());
        assert!(a.graph.is_connected());
    }

    #[test]
    fn delays_are_hop_multiples() {
        let a = generate(&AsGraphParams::tiny());
        let m = a.graph.all_pairs_delay();
        let hop = AsGraphParams::tiny().hop_delay_us;
        for x in 0..m.len().min(20) as u32 {
            for y in 0..m.len().min(20) as u32 {
                assert_eq!(m.delay_us(x, y) % hop, 0);
            }
        }
    }

    #[test]
    fn default_scale_is_hundreds_of_ases() {
        let p = AsGraphParams::default();
        let a = generate(&p);
        let expected = (p.core_ases + p.mid_ases + p.stub_ases) * p.routers_per_as;
        let n = a.graph.len();
        assert!(n as f64 > expected as f64 * 0.6 && (n as f64) < expected as f64 * 1.4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&AsGraphParams::tiny());
        let b = generate(&AsGraphParams::tiny());
        assert_eq!(a.graph.len(), b.graph.len());
    }

    #[test]
    fn hop_counts_exceed_intra_as_paths_for_remote_pairs() {
        // A pair in different stub ASes needs at least 2 inter-AS hops.
        let p = AsGraphParams::tiny();
        let a = generate(&p);
        let m = a.graph.all_pairs_delay();
        let first = 0u32;
        let last = (a.graph.len() - 1) as u32;
        assert!(m.delay_us(first, last) >= 2 * p.hop_delay_us);
    }
}
