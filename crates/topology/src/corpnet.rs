//! CorpNet-like topology: a 298-router graph modelled on the world-wide
//! Microsoft corporate network measurements used in the paper.
//!
//! We reproduce the structural character rather than the confidential
//! measurement data (DESIGN.md substitution #2): a small number of campuses
//! (two large — think Redmond and Cambridge — plus regional sites), each with
//! a hub-and-spoke router tree and fast intra-campus links, interconnected by
//! a handful of long-haul WAN links. The proximity metric is minimum RTT. The
//! resulting delay distribution is strongly bimodal (sub-millisecond on
//! campus, >100 ms across the ocean), which is what gives CorpNet the lowest
//! relative delay penalty of the paper's three topologies: PNS finds most
//! routing-table entries on the local campus.

use crate::graph::{Graph, RouterId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the CorpNet-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpNetParams {
    /// Number of large campuses.
    pub campuses: usize,
    /// Routers per large campus.
    pub routers_per_campus: usize,
    /// Number of small regional sites.
    pub regional_sites: usize,
    /// Routers per regional site.
    pub routers_per_site: usize,
    /// Intra-campus link delay, microseconds (sub-millisecond LAN backbone).
    pub campus_delay_us: u64,
    /// Long-haul WAN link delay between campuses, microseconds.
    pub wan_delay_us: u64,
    /// Delay from a regional site to its home campus, microseconds.
    pub regional_delay_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpNetParams {
    fn default() -> Self {
        // 2*60 + 22*8 = 296 ≈ 298 routers, matching the paper's scale.
        // Delays are calibrated so the min-RTT distribution is moderately
        // spread (a few ms on campus, tens of ms across the WAN) rather than
        // extreme: the measured corporate network's delay distribution is
        // what gives CorpNet the lowest RDP of the paper's topologies.
        CorpNetParams {
            campuses: 2,
            routers_per_campus: 60,
            regional_sites: 22,
            routers_per_site: 8,
            campus_delay_us: 2_000,
            wan_delay_us: 40_000,
            regional_delay_us: 8_000,
            seed: 11,
        }
    }
}

impl CorpNetParams {
    /// A tiny preset for fast tests.
    pub fn tiny() -> Self {
        CorpNetParams {
            campuses: 2,
            routers_per_campus: 6,
            regional_sites: 3,
            routers_per_site: 3,
            ..Self::default()
        }
    }
}

/// Output of the CorpNet generator.
#[derive(Debug, Clone)]
pub struct CorpNet {
    /// The router-level graph.
    pub graph: Graph,
    /// Attachment points, weighted like the measured population: most
    /// machines sit on the big campuses, so campus routers appear several
    /// times (end nodes attach via a 1 ms LAN link).
    pub routers: Vec<RouterId>,
}

/// Generates a CorpNet-like corporate network topology.
pub fn generate(params: &CorpNetParams) -> CorpNet {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = Graph::default();

    // Each campus: two redundant hubs plus spokes attached to both hubs.
    let mut campus_hubs: Vec<RouterId> = Vec::new();
    for _ in 0..params.campuses {
        let hub_a = g.add_router();
        let hub_b = g.add_router();
        g.add_edge(hub_a, hub_b, 1.0, params.campus_delay_us);
        for _ in 0..params.routers_per_campus.saturating_sub(2) {
            let r = g.add_router();
            let d = params.campus_delay_us + rng.gen_range(0..=params.campus_delay_us);
            g.add_edge(r, hub_a, 1.0, d);
            if rng.gen_bool(0.5) {
                g.add_edge(r, hub_b, 1.0, d);
            }
        }
        campus_hubs.push(hub_a);
    }
    // WAN mesh between campus hubs.
    for a in 0..campus_hubs.len() {
        for b in (a + 1)..campus_hubs.len() {
            let d = params.wan_delay_us + rng.gen_range(0..=params.wan_delay_us / 4);
            g.add_edge(campus_hubs[a], campus_hubs[b], 1.0, d);
        }
    }
    let campus_router_count = g.len() as RouterId;
    // Regional sites: a small star homed to one campus hub.
    for i in 0..params.regional_sites {
        let home = campus_hubs[i % campus_hubs.len()];
        let site_hub = g.add_router();
        let d = params.regional_delay_us + rng.gen_range(0..=params.regional_delay_us / 2);
        g.add_edge(site_hub, home, 1.0, d);
        for _ in 0..params.routers_per_site.saturating_sub(1) {
            let r = g.add_router();
            g.add_edge(r, site_hub, 1.0, params.campus_delay_us);
        }
    }

    // Most of the measured machine population sits on the big campuses;
    // weight attachment accordingly (4:1 campus vs regional site).
    let mut routers: Vec<RouterId> = Vec::new();
    for r in 0..g.len() as RouterId {
        routers.push(r);
        if r < campus_router_count {
            routers.extend([r; 3]);
        }
    }
    CorpNet { graph: g, routers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_near_298_routers() {
        let c = generate(&CorpNetParams::default());
        let n = c.graph.len();
        assert!((280..=320).contains(&n), "router count {n}");
    }

    #[test]
    fn generated_graph_is_connected() {
        let c = generate(&CorpNetParams::tiny());
        assert!(c.graph.is_connected());
    }

    #[test]
    fn delay_distribution_is_bimodal() {
        let c = generate(&CorpNetParams::default());
        let m = c.graph.all_pairs_delay();
        let p = CorpNetParams::default();
        let mut near = 0u64;
        let mut far = 0u64;
        let step = (m.len() / 64).max(1);
        for a in (0..m.len()).step_by(step) {
            for b in (0..m.len()).step_by(step) {
                if a == b {
                    continue;
                }
                let d = m.delay_us(a as u32, b as u32);
                if d < p.wan_delay_us / 2 {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        assert!(
            near > 0 && far > 0,
            "expected both campus-local and WAN pairs"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&CorpNetParams::tiny());
        let b = generate(&CorpNetParams::tiny());
        assert_eq!(a.graph.len(), b.graph.len());
        let ma = a.graph.all_pairs_delay();
        let mb = b.graph.all_pairs_delay();
        for x in 0..ma.len() as u32 {
            for y in 0..ma.len() as u32 {
                assert_eq!(ma.delay_us(x, y), mb.delay_us(x, y));
            }
        }
    }
}
