//! Transit-stub topology generator in the spirit of the Georgia Tech
//! topology generator (GT-ITM) used for the paper's *GATech* topology.
//!
//! The paper's instance has 5050 routers arranged hierarchically: 10 transit
//! domains at the top level with an average of 5 routers each; each transit
//! router has an average of 10 stub domains attached with an average of 10
//! routers each. End nodes attach to stub routers through a 1 ms LAN link.
//!
//! Routing uses policy weights so that traffic between stub domains always
//! climbs into the transit core rather than cutting through another stub
//! domain, which is how GT-ITM's routing-policy weights behave.

use crate::graph::{Graph, RouterId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the transit-stub generator.
///
/// The defaults reproduce the paper's GATech configuration (≈5050 routers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitStubParams {
    /// Number of top-level transit domains.
    pub transit_domains: usize,
    /// Average routers per transit domain.
    pub routers_per_transit: usize,
    /// Average stub domains attached to each transit router.
    pub stubs_per_transit_router: usize,
    /// Average routers per stub domain.
    pub routers_per_stub: usize,
    /// Mean one-way delay of a core (transit-transit) link, microseconds.
    pub core_delay_us: u64,
    /// Mean one-way delay of a transit-to-stub link, microseconds.
    pub transit_stub_delay_us: u64,
    /// Mean one-way delay of an intra-stub link, microseconds.
    pub stub_delay_us: u64,
    /// RNG seed; identical seeds generate identical topologies.
    pub seed: u64,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 10,
            routers_per_transit: 5,
            stubs_per_transit_router: 10,
            routers_per_stub: 10,
            core_delay_us: 20_000,
            transit_stub_delay_us: 5_000,
            stub_delay_us: 1_000,
            seed: 42,
        }
    }
}

impl TransitStubParams {
    /// A scaled-down preset (≈510 routers) suitable for unit tests and quick
    /// benchmark runs.
    pub fn small() -> Self {
        TransitStubParams {
            transit_domains: 4,
            routers_per_transit: 3,
            stubs_per_transit_router: 4,
            routers_per_stub: 5,
            ..Self::default()
        }
    }

    /// A tiny preset (≈50 routers) for fast tests.
    pub fn tiny() -> Self {
        TransitStubParams {
            transit_domains: 2,
            routers_per_transit: 2,
            stubs_per_transit_router: 3,
            routers_per_stub: 3,
            ..Self::default()
        }
    }
}

/// Output of the transit-stub generator: the router graph plus the list of
/// stub routers end nodes may attach to.
#[derive(Debug, Clone)]
pub struct TransitStub {
    /// The router-level graph.
    pub graph: Graph,
    /// Routers in stub domains; overlay nodes attach only to these.
    pub stub_routers: Vec<RouterId>,
}

/// Generates a transit-stub topology.
///
/// The construction is deterministic for a given `params.seed`.
pub fn generate(params: &TransitStubParams) -> TransitStub {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = Graph::default();
    let mut stub_routers = Vec::new();
    // Policy weights: intra-stub links are cheap inside a stub but a stub is
    // never a transit: we achieve this by giving stub links a high routing
    // weight relative to transit links, and by the topology itself (each stub
    // hangs off exactly one transit router, so there is no shortcut).
    const W_CORE: f64 = 1.0;
    const W_TRANSIT_STUB: f64 = 10.0;
    const W_STUB: f64 = 100.0;

    // 1. Transit domains: routers in each domain form a ring plus random
    //    chords; domains are interconnected pairwise by random representative
    //    links (every pair of domains gets at least one link, mirroring the
    //    dense GT-ITM core).
    let mut transit: Vec<Vec<RouterId>> = Vec::with_capacity(params.transit_domains);
    for _ in 0..params.transit_domains {
        let k = jitter_count(&mut rng, params.routers_per_transit);
        let routers: Vec<RouterId> = (0..k).map(|_| g.add_router()).collect();
        // Ring for k >= 3, a single link for k == 2, nothing for k == 1.
        if k == 2 {
            let d = delay_jitter(&mut rng, params.core_delay_us / 4);
            g.add_edge(routers[0], routers[1], W_CORE, d);
        } else if k >= 3 {
            for i in 0..k {
                let d = delay_jitter(&mut rng, params.core_delay_us / 4);
                g.add_edge(routers[i], routers[(i + 1) % k], W_CORE, d);
            }
        }
        transit.push(routers);
    }
    for a in 0..transit.len() {
        for b in (a + 1)..transit.len() {
            let ra = transit[a][rng.gen_range(0..transit[a].len())];
            let rb = transit[b][rng.gen_range(0..transit[b].len())];
            let d = delay_jitter(&mut rng, params.core_delay_us);
            g.add_edge(ra, rb, W_CORE, d);
        }
    }

    // 2. Stub domains: each transit router sponsors `stubs_per_transit_router`
    //    stub domains; each stub domain is a small connected random graph
    //    attached to its transit router through one (occasionally two) links.
    for domain in &transit {
        for &tr in domain {
            let n_stubs = jitter_count(&mut rng, params.stubs_per_transit_router);
            for _ in 0..n_stubs {
                let k = jitter_count(&mut rng, params.routers_per_stub);
                let routers: Vec<RouterId> = (0..k).map(|_| g.add_router()).collect();
                // Connected backbone: path plus random extra edges.
                for i in 1..k {
                    let j = rng.gen_range(0..i);
                    let d = delay_jitter(&mut rng, params.stub_delay_us);
                    g.add_edge(routers[i], routers[j], W_STUB, d);
                }
                let extra = k / 3;
                for _ in 0..extra {
                    let i = rng.gen_range(0..k);
                    let j = rng.gen_range(0..k);
                    if i != j {
                        let d = delay_jitter(&mut rng, params.stub_delay_us);
                        g.add_edge(routers[i], routers[j], W_STUB, d);
                    }
                }
                // Attach to the sponsoring transit router.
                let gw = routers[rng.gen_range(0..k)];
                let d = delay_jitter(&mut rng, params.transit_stub_delay_us);
                g.add_edge(gw, tr, W_TRANSIT_STUB, d);
                stub_routers.extend_from_slice(&routers);
            }
        }
    }

    TransitStub {
        graph: g,
        stub_routers,
    }
}

/// Draws a count around `mean` (uniform in `[max(1, mean-1), mean+1]`).
fn jitter_count(rng: &mut SmallRng, mean: usize) -> usize {
    let lo = mean.saturating_sub(1).max(1);
    let hi = mean + 1;
    rng.gen_range(lo..=hi)
}

/// Draws a delay uniformly in `[mean/2, 3*mean/2]`.
fn delay_jitter(rng: &mut SmallRng, mean_us: u64) -> u64 {
    let lo = (mean_us / 2).max(1);
    let hi = mean_us + mean_us / 2;
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_near_5050_routers() {
        let ts = generate(&TransitStubParams::default());
        let n = ts.graph.len();
        // 10*5 transit + 50 transit routers * 10 stubs * 10 routers ≈ 5050.
        assert!(
            (4000..=6500).contains(&n),
            "unexpected router count {n} for default params"
        );
    }

    #[test]
    fn generated_graph_is_connected() {
        let ts = generate(&TransitStubParams::small());
        assert!(ts.graph.is_connected());
    }

    #[test]
    fn stub_routers_are_valid_ids() {
        let ts = generate(&TransitStubParams::tiny());
        assert!(!ts.stub_routers.is_empty());
        for &r in &ts.stub_routers {
            assert!((r as usize) < ts.graph.len());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&TransitStubParams::tiny());
        let b = generate(&TransitStubParams::tiny());
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.stub_routers, b.stub_routers);
        let ma = a.graph.all_pairs_delay();
        let mb = b.graph.all_pairs_delay();
        for x in 0..ma.len() as u32 {
            for y in 0..ma.len() as u32 {
                assert_eq!(ma.delay_us(x, y), mb.delay_us(x, y));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TransitStubParams::tiny());
        let b = generate(&TransitStubParams {
            seed: 43,
            ..TransitStubParams::tiny()
        });
        // Router counts are random; either counts differ or some delay differs.
        if a.graph.len() == b.graph.len() {
            let ma = a.graph.all_pairs_delay();
            let mb = b.graph.all_pairs_delay();
            let mut any_diff = false;
            'outer: for x in 0..ma.len() as u32 {
                for y in 0..ma.len() as u32 {
                    if ma.delay_us(x, y) != mb.delay_us(x, y) {
                        any_diff = true;
                        break 'outer;
                    }
                }
            }
            assert!(any_diff);
        }
    }

    #[test]
    fn stub_to_stub_routes_have_core_scale_delay() {
        // Two routers in different stub domains must traverse the core: their
        // delay should be at least a transit-stub hop plus a fraction of a
        // core hop.
        let ts = generate(&TransitStubParams::small());
        let m = ts.graph.all_pairs_delay();
        let a = ts.stub_routers[0];
        let b = *ts.stub_routers.last().unwrap();
        assert!(m.delay_us(a, b) > TransitStubParams::small().transit_stub_delay_us);
    }
}
