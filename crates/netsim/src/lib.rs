#![warn(missing_docs)]
//! Packet-level discrete-event network simulator.
//!
//! This crate provides the protocol-agnostic substrate of the paper's
//! evaluation platform: a deterministic [`queue::EventQueue`] (events ordered
//! by time with stable tie-breaking) and a [`network::Network`] model that
//! attaches end hosts to a [`topology::Topology`] and delivers messages with
//! shortest-path delays, bounded jitter, and a configurable uniform loss
//! probability. Congestion delays and losses are not modelled, matching the
//! simulator described in §5.1.
//!
//! The MSPastry-specific simulation loop (node lifecycle driven by churn
//! traces, lookup workload, metrics, consistency oracle) lives in the
//! `harness` crate; this crate stays reusable for any message-passing
//! protocol.
//!
//! # Example
//!
//! ```
//! use netsim::{EventQueue, Network};
//! use topology::{Topology, TopologyKind};
//!
//! let mut net = Network::new(Topology::build(TopologyKind::GaTechTiny), 7);
//! let a = net.add_endpoint();
//! let b = net.add_endpoint();
//!
//! let mut queue = EventQueue::new();
//! if let Some(delay) = net.sample_delivery(a, b) {
//!     queue.schedule_in(delay, "hello");
//! }
//! let ev = queue.pop().unwrap();
//! assert_eq!(ev.payload, "hello");
//! assert_eq!(queue.now_us(), ev.at_us);
//! ```

pub mod network;
pub mod queue;

pub use network::{EndpointId, Network};
pub use queue::{EventQueue, Scheduled};
