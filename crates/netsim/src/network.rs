//! The packet-level network model.
//!
//! End hosts attach to topology routers; a message between two hosts takes
//! the router-level shortest-path delay plus the LAN attach links, with a
//! small random jitter, and is dropped with a configurable uniform loss
//! probability. Congestion is not modelled, matching the paper's simulator.

use obs::{CounterId, Obs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use topology::{RouterId, Topology};

/// Index of an end host within a [`Network`].
pub type EndpointId = usize;

/// The network model: a frozen topology plus end-host attachments.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    attach: Vec<RouterId>,
    loss_rate: f64,
    jitter_frac: f64,
    blackout: bool,
    rng: SmallRng,
    obs: Obs,
    c_delivered: CounterId,
    c_lost_random: CounterId,
    c_lost_blackout: CounterId,
}

impl Network {
    /// Wraps a topology with no end hosts, no loss and 5 % delay jitter.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let obs = Obs::disabled();
        Network {
            topo,
            attach: Vec::new(),
            loss_rate: 0.0,
            jitter_frac: 0.05,
            blackout: false,
            rng: SmallRng::seed_from_u64(seed),
            c_delivered: obs.counter("net.delivered"),
            c_lost_random: obs.counter("net.lost.random"),
            c_lost_blackout: obs.counter("net.lost.blackout"),
            obs,
        }
    }

    /// Routes the network's delivery/loss counters into a per-run registry.
    pub fn set_obs(&mut self, obs: Obs) {
        self.c_delivered = obs.counter("net.delivered");
        self.c_lost_random = obs.counter("net.lost.random");
        self.c_lost_blackout = obs.counter("net.lost.blackout");
        self.obs = obs;
    }

    /// Sets the uniform message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0, 1)");
        self.loss_rate = rate;
    }

    /// Current uniform loss probability.
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// Sets the relative delay jitter (0.05 = ±5 %).
    pub fn set_jitter(&mut self, frac: f64) {
        assert!((0.0..1.0).contains(&frac), "jitter must be in [0, 1)");
        self.jitter_frac = frac;
    }

    /// Starts or ends a total outage: while set, every message is lost.
    /// Models transient network-wide failures (a core-router blackout).
    pub fn set_blackout(&mut self, on: bool) {
        self.blackout = on;
    }

    /// `true` while a total outage is in effect.
    pub fn blackout(&self) -> bool {
        self.blackout
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Attaches a new end host to a random attachable router.
    pub fn add_endpoint(&mut self) -> EndpointId {
        let points = self.topo.attach_points();
        let router = points[self.rng.gen_range(0..points.len())];
        self.attach.push(router);
        self.attach.len() - 1
    }

    /// Attaches a new end host at a specific router.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of range for the topology.
    pub fn add_endpoint_at(&mut self, router: RouterId) -> EndpointId {
        assert!((router as usize) < self.topo.router_count());
        self.attach.push(router);
        self.attach.len() - 1
    }

    /// Number of attached end hosts.
    pub fn endpoint_count(&self) -> usize {
        self.attach.len()
    }

    /// The router an endpoint is attached to.
    pub fn router_of(&self, e: EndpointId) -> RouterId {
        self.attach[e]
    }

    /// Deterministic base one-way delay between two end hosts, microseconds.
    ///
    /// This is the "network delay" used as the RDP denominator.
    pub fn base_delay_us(&self, a: EndpointId, b: EndpointId) -> u64 {
        self.topo
            .end_to_end_delay_us(self.attach[a], self.attach[b])
            .max(1)
    }

    /// Samples the delivery of one message: `None` if the message is lost,
    /// otherwise the jittered one-way delay.
    pub fn sample_delivery(&mut self, a: EndpointId, b: EndpointId) -> Option<u64> {
        if self.blackout {
            self.obs.inc(self.c_lost_blackout);
            return None;
        }
        if self.loss_rate > 0.0 && self.rng.gen_bool(self.loss_rate) {
            self.obs.inc(self.c_lost_random);
            return None;
        }
        self.obs.inc(self.c_delivered);
        let base = self.base_delay_us(a, b);
        if self.jitter_frac == 0.0 {
            return Some(base);
        }
        let jitter = (base as f64 * self.jitter_frac) as u64;
        let d = if jitter == 0 {
            base
        } else {
            base + self.rng.gen_range(0..=2 * jitter) - jitter
        };
        Some(d.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::TopologyKind;

    fn net() -> Network {
        Network::new(Topology::build(TopologyKind::GaTechTiny), 1)
    }

    #[test]
    fn endpoints_attach_to_stub_routers() {
        let mut n = net();
        for _ in 0..10 {
            let e = n.add_endpoint();
            let r = n.router_of(e);
            assert!(n.topology().attach_points().contains(&r));
        }
        assert_eq!(n.endpoint_count(), 10);
    }

    #[test]
    fn base_delay_is_symmetric_and_includes_lan() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        assert_eq!(n.base_delay_us(a, b), n.base_delay_us(b, a));
        assert!(n.base_delay_us(a, b) >= 2 * n.topology().lan_delay_us());
    }

    #[test]
    fn zero_loss_always_delivers() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        for _ in 0..100 {
            assert!(n.sample_delivery(a, b).is_some());
        }
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut n = net();
        n.set_loss_rate(0.3);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let lost = (0..10_000)
            .filter(|_| n.sample_delivery(a, b).is_none())
            .count();
        let frac = lost as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "measured loss {frac}");
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut n = net();
        n.set_jitter(0.05);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let base = n.base_delay_us(a, b);
        for _ in 0..200 {
            let d = n.sample_delivery(a, b).unwrap();
            assert!(d as f64 >= base as f64 * 0.94 && d as f64 <= base as f64 * 1.06);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_loss_rate_rejected() {
        net().set_loss_rate(1.0);
    }

    #[test]
    fn delivery_counters_reach_the_run_registry() {
        let mut n = net();
        let run = Obs::new(0.0, 16, false);
        n.set_obs(run.clone());
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        for _ in 0..10 {
            n.sample_delivery(a, b);
        }
        n.set_blackout(true);
        for _ in 0..3 {
            n.sample_delivery(a, b);
        }
        let snap = run.snapshot();
        assert_eq!(snap.counter("net.delivered"), 10);
        assert_eq!(snap.counter("net.lost.blackout"), 3);
        assert_eq!(snap.counter("net.lost.random"), 0);
    }

    #[test]
    fn blackout_drops_everything_then_recovers() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.set_blackout(true);
        for _ in 0..50 {
            assert!(n.sample_delivery(a, b).is_none());
        }
        n.set_blackout(false);
        assert!(n.sample_delivery(a, b).is_some());
    }
}
