//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`, so two events at the
//! same instant always pop in insertion order and a simulation run is fully
//! reproducible for a given seed.
//!
//! Internally this is a hierarchical two-level structure instead of a single
//! binary heap: a timer wheel of fixed-width slots covers the near future
//! (where virtually all network delays and protocol timers land), and a
//! spill-over heap holds the far future (long maintenance periods, end-of-run
//! markers). Scheduling into the wheel is O(1) instead of O(log n); the heap
//! only sees the tiny far-future population. Slots are drained in time order:
//! a slot's events are sorted once when the wheel reaches it, and events
//! scheduled into the slot *while it drains* (e.g. zero-delay follow-ups) are
//! placed by binary insertion, preserving the exact global
//! `(at_us, seq)` order a single heap would produce.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Slot width: 2^12 us ≈ 4.1 ms.
const GRANULARITY_BITS: u32 = 12;
/// 2^14 slots ≈ 67 s of wheel span; anything later spills to the heap.
const WHEEL_BITS: u32 = 14;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;

/// An event scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Absolute firing time, microseconds.
    pub at_us: u64,
    seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest first.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

/// A priority queue of timed events with a monotonic clock.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Near-future slots, indexed by `slot & WHEEL_MASK`. A bucket only ever
    /// holds events of a single absolute slot: an event is admitted while its
    /// slot lies within `[base_slot, base_slot + WHEEL_SLOTS)`, and a slot's
    /// bucket is emptied before `base_slot` moves past it, so two admitted
    /// events can never alias the same bucket from different wheel laps.
    wheel: Box<[Vec<Scheduled<T>>]>,
    /// The slot currently being drained; never decreases.
    base_slot: u64,
    /// Events held in wheel buckets (excludes `cur` and `overflow`).
    wheel_len: usize,
    /// The slot being drained, sorted descending so `Vec::pop` yields the
    /// earliest `(at_us, seq)` next.
    cur: Vec<Scheduled<T>>,
    /// Far-future spill-over; min-ordered via the reversed `Scheduled` `Ord`.
    overflow: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now_us: u64,
    /// Deepest the queue has ever been (a self-profiling gauge; two adds and
    /// a compare per schedule, nothing the hot path notices).
    high_water: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            base_slot: 0,
            wheel_len: 0,
            cur: Vec::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
            high_water: 0,
        }
    }

    /// The current simulated time (the firing time of the last popped
    /// event).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.cur.len() + self.wheel_len + self.overflow.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been over its lifetime (a self-profiling
    /// gauge, surfaced in the run artifact's `"prof"` member).
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Schedules `payload` at absolute time `at_us`.
    ///
    /// Scheduling in the past is clamped to the current time (the event fires
    /// "immediately", after already-queued events at the same instant).
    pub fn schedule_at(&mut self, at_us: u64, payload: T) {
        let at_us = at_us.max(self.now_us);
        self.seq += 1;
        let ev = Scheduled {
            at_us,
            seq: self.seq,
            payload,
        };
        let slot = at_us >> GRANULARITY_BITS;
        if slot == self.base_slot && !self.cur.is_empty() {
            // The slot is mid-drain: place the event among its remaining
            // neighbours. The clamp above makes it sort after everything
            // already popped.
            let key = (ev.at_us, ev.seq);
            let pos = self.cur.partition_point(|e| (e.at_us, e.seq) > key);
            self.cur.insert(pos, ev);
        } else if slot < self.base_slot + WHEEL_SLOTS as u64 {
            self.wheel[(slot & WHEEL_MASK) as usize].push(ev);
            self.wheel_len += 1;
        } else {
            self.overflow.push(ev);
        }
        let len = self.cur.len() + self.wheel_len + self.overflow.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay_us: u64, payload: T) {
        self.schedule_at(self.now_us.saturating_add(delay_us), payload);
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.cur.is_empty() && !self.advance() {
            return None;
        }
        let ev = self.cur.pop().expect("advance() refills cur");
        debug_assert!(ev.at_us >= self.now_us, "time went backwards");
        self.now_us = ev.at_us;
        Some(ev)
    }

    /// Moves `base_slot` to the next non-empty slot and loads it into `cur`;
    /// `false` if the queue is empty.
    fn advance(&mut self) -> bool {
        loop {
            if self.wheel_len == 0 {
                // Nothing inside the wheel span: jump straight to the first
                // spill-over slot instead of stepping across the gap.
                match self.overflow.peek() {
                    None => return false,
                    Some(e) => {
                        self.base_slot = self.base_slot.max(e.at_us >> GRANULARITY_BITS);
                    }
                }
            }
            // Pull spill-over events that now fall inside the wheel window.
            let horizon = self.base_slot + WHEEL_SLOTS as u64;
            while self
                .overflow
                .peek()
                .is_some_and(|e| e.at_us >> GRANULARITY_BITS < horizon)
            {
                let ev = self.overflow.pop().expect("peeked above");
                let slot = ev.at_us >> GRANULARITY_BITS;
                self.wheel[(slot & WHEEL_MASK) as usize].push(ev);
                self.wheel_len += 1;
            }
            let bucket = &mut self.wheel[(self.base_slot & WHEEL_MASK) as usize];
            if !bucket.is_empty() {
                self.cur = std::mem::take(bucket);
                self.wheel_len -= self.cur.len();
                debug_assert!(
                    self.cur
                        .iter()
                        .all(|e| e.at_us >> GRANULARITY_BITS == self.base_slot),
                    "bucket aliased across wheel laps"
                );
                self.cur
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at_us, e.seq)));
                return true;
            }
            self.base_slot += 1;
        }
    }

    /// The firing time of the next event without popping it.
    ///
    /// Worst case this scans the wheel (it cannot advance state through
    /// `&self`); it is a convenience for tests and diagnostics, not part of
    /// the simulator hot path.
    pub fn peek_time_us(&self) -> Option<u64> {
        if let Some(e) = self.cur.last() {
            return Some(e.at_us);
        }
        if self.wheel_len > 0 {
            for i in 0..WHEEL_SLOTS as u64 {
                let bucket = &self.wheel[((self.base_slot + i) & WHEEL_MASK) as usize];
                if let Some(at) = bucket.iter().map(|e| e.at_us).min() {
                    return Some(at);
                }
            }
        }
        self.overflow.peek().map(|e| e.at_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        assert_eq!(q.now_us(), 0);
        q.pop();
        assert_eq!(q.now_us(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.peek_time_us(), Some(150));
    }

    #[test]
    fn past_schedules_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_at(10, "late");
        let e = q.pop().unwrap();
        assert_eq!(e.at_us, 100);
        assert_eq!(q.now_us(), 100);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_mark_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water_mark(), 0);
        q.schedule_at(10, ());
        q.schedule_at(20, ());
        q.schedule_at(30, ());
        q.pop();
        q.pop();
        q.schedule_at(40, ());
        // Peak was 3; the later schedule only brought it back to 2.
        assert_eq!(q.high_water_mark(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn far_future_events_spill_and_return() {
        let span = (WHEEL_SLOTS as u64) << GRANULARITY_BITS;
        let mut q = EventQueue::new();
        q.schedule_at(3 * span, "far");
        q.schedule_at(10, "near");
        q.schedule_at(span + 7, "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.now_us(), span + 7);
        assert_eq!(q.pop().unwrap().payload, "far");
        assert_eq!(q.now_us(), 3 * span);
        assert!(q.pop().is_none());
    }

    #[test]
    fn quiet_gaps_are_jumped_not_scanned() {
        let mut q = EventQueue::new();
        // A multi-hour gap between events (way beyond one wheel span).
        q.schedule_at(1, 1u64);
        q.schedule_at(7_200_000_000, 2u64);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.now_us(), 7_200_000_000);
    }

    #[test]
    fn same_instant_inserts_while_draining_fire_in_seq_order() {
        let mut q = EventQueue::new();
        q.schedule_at(50, 0);
        q.schedule_at(50, 1);
        assert_eq!(q.pop().unwrap().payload, 0);
        // Scheduled "in the past" mid-drain: clamps to now and fires after
        // the already-queued event at the same instant.
        q.schedule_at(0, 2);
        q.schedule_at(50, 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    /// Drives the wheel and a single binary heap (the reference semantics)
    /// through an identical deterministic schedule/pop workload and demands
    /// identical output — times, payloads, and tie-breaks.
    #[test]
    fn matches_reference_heap_on_mixed_workload() {
        #[derive(Debug)]
        struct Reference {
            heap: BinaryHeap<Scheduled<u32>>,
            seq: u64,
            now_us: u64,
        }
        impl Reference {
            fn schedule_at(&mut self, at_us: u64, payload: u32) {
                self.seq += 1;
                self.heap.push(Scheduled {
                    at_us: at_us.max(self.now_us),
                    seq: self.seq,
                    payload,
                });
            }
            fn pop(&mut self) -> Option<(u64, u32)> {
                let e = self.heap.pop()?;
                self.now_us = e.at_us;
                Some((e.at_us, e.payload))
            }
        }
        let mut wheel = EventQueue::new();
        let mut reference = Reference {
            heap: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
        };
        // SplitMix64: deterministic, dependency-free.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in 0..50_000u32 {
            let r = rng();
            if r % 3 == 0 {
                assert_eq!(
                    wheel.pop().map(|e| (e.at_us, e.payload)),
                    reference.pop(),
                    "divergence at step {i}"
                );
            } else {
                // Mix of same-instant, near, far, and very far times.
                let delay = match r % 7 {
                    0 => 0,
                    1..=3 => r % 10_000,
                    4 | 5 => r % 40_000_000,
                    _ => r % 3_000_000_000,
                };
                let at = wheel.now_us().saturating_add(delay);
                wheel.schedule_at(at, i);
                reference.schedule_at(at, i);
            }
            assert_eq!(wheel.len(), reference.heap.len());
        }
        loop {
            let (a, b) = (wheel.pop().map(|e| (e.at_us, e.payload)), reference.pop());
            assert_eq!(a, b, "divergence while draining");
            if a.is_none() {
                break;
            }
        }
    }
}
