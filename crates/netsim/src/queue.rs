//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`, so two events at the
//! same instant always pop in insertion order and a simulation run is fully
//! reproducible for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Absolute firing time, microseconds.
    pub at_us: u64,
    seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest first.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

/// A priority queue of timed events with a monotonic clock.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now_us: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
        }
    }

    /// The current simulated time (the firing time of the last popped
    /// event).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at_us`.
    ///
    /// Scheduling in the past is clamped to the current time (the event fires
    /// "immediately", after already-queued events at the same instant).
    pub fn schedule_at(&mut self, at_us: u64, payload: T) {
        let at_us = at_us.max(self.now_us);
        self.seq += 1;
        self.heap.push(Scheduled {
            at_us,
            seq: self.seq,
            payload,
        });
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay_us: u64, payload: T) {
        self.schedule_at(self.now_us.saturating_add(delay_us), payload);
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at_us >= self.now_us, "time went backwards");
        self.now_us = ev.at_us;
        Some(ev)
    }

    /// The firing time of the next event without popping it.
    pub fn peek_time_us(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        assert_eq!(q.now_us(), 0);
        q.pop();
        assert_eq!(q.now_us(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.peek_time_us(), Some(150));
    }

    #[test]
    fn past_schedules_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_at(10, "late");
        let e = q.pop().unwrap();
        assert_eq!(e.at_us, 100);
        assert_eq!(q.now_us(), 100);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
