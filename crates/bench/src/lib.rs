//! Shared machinery for the paper-reproduction benchmark targets.
//!
//! Every figure and table of the paper's §5 has a bench target under
//! `benches/` (all with `harness = false`, so `cargo bench` runs them as
//! plain binaries that print the same rows/series the paper reports). The
//! experiment *definitions* live in the scenario registry
//! ([`harness::scenario`]); the benches here are thin declarations that look
//! their scenario up in [`scenarios`], run its points, and pretty-print the
//! paper's tables. The `mspastry-sim` CLI executes the same registry
//! entries (`--scenario NAME`), optionally as a parallel multi-seed sweep.
//!
//! Two scales are supported, selected by the `MSPASTRY_SCALE` environment
//! variable:
//!
//! * `quick` (default) — scaled-down populations and durations so the whole
//!   suite finishes in minutes; the result *shape* (who wins, by what factor,
//!   where crossovers fall) matches the paper.
//! * `full` — the paper's populations and durations (hours of wall time).

use apps::kvstore;
use apps::squirrel::{self, SquirrelParams};
use apps::web_workload::WebWorkloadParams;
use churn::poisson::{self, PoissonParams};
use churn::synth::DAY_US;
use harness::scenario::{Registry, Scenario, ScenarioPoint, SEED_RUN_STRIDE, SEED_TRACE_STRIDE};
use harness::{RunConfig, RunResult, Workload};
use topology::TopologyKind;

pub use harness::scenario::{
    base_config, gatech, gnutella_sweep_trace, gnutella_trace, microsoft_trace, overnet_trace,
    scale, Scale, HOUR, MIN,
};

/// The full scenario registry: every harness-expressible experiment
/// ([`Registry::builtin`]) plus the application-backed scenarios that need
/// the `apps` layer (`fig8_squirrel`, `exp_replication`).
pub fn scenarios() -> Registry {
    let mut r = Registry::builtin();
    r.register(Scenario {
        name: "fig8_squirrel",
        title: "Squirrel web-cache deployment traffic, simulated",
        figure: "Fig. 8",
        points: fig8_points,
    });
    r.register(Scenario {
        name: "exp_replication",
        title: "KV availability vs leaf-set replication factor",
        figure: "extension",
        points: replication_points,
    });
    r
}

/// The Squirrel deployment parameters at a scale (52 machines over six days
/// in quick mode; the paper-shaped default workload in full mode).
pub fn fig8_params(s: Scale) -> SquirrelParams {
    match s {
        Scale::Full => SquirrelParams::default(),
        Scale::Quick => SquirrelParams {
            web: WebWorkloadParams {
                clients: 52,
                duration_us: 6 * DAY_US,
                objects: 8_000,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

fn fig8_points(s: Scale) -> Vec<ScenarioPoint> {
    vec![ScenarioPoint::new("squirrel", move |seed| {
        let mut params = fig8_params(s);
        params.seed += seed * SEED_TRACE_STRIDE;
        squirrel::build_run(&params).0
    })]
}

/// Builds the replication experiment: one churny 15-minute-session run with
/// a scripted PUT/GET workload whose deliveries are post-processed per
/// replication factor. Returns the run configuration and the op list (needed
/// for [`kvstore::evaluate_replicated`]).
pub fn replication_setup(seed: u64) -> (RunConfig, Vec<kvstore::TimedOp>) {
    let dur = 40 * MIN;
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 120.0,
        mean_session_us: 15.0 * 60e6,
        duration_us: dur,
        seed: 31 + seed * SEED_TRACE_STRIDE,
    });
    let n_sessions = trace.sessions().len();
    // GETs within 5 minutes of their PUT: the window where root changes are
    // failure-driven (replica takeover) rather than join-driven (which needs
    // value migration the home-store model does not perform).
    let ops = kvstore::generate_ops_with_gap(400, 3, n_sessions, dur, Some(5 * MIN), 32);
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechSmall;
    cfg.warmup_us = 10 * MIN;
    cfg.workload = Workload::Scripted(kvstore::to_script(&ops));
    cfg.record_deliveries = true;
    cfg.seed += seed * SEED_RUN_STRIDE;
    (cfg, ops)
}

fn replication_points(_s: Scale) -> Vec<ScenarioPoint> {
    vec![ScenarioPoint::new("kv-churn", |seed| {
        replication_setup(seed).0
    })]
}

/// Runs and reports wall-clock time on stderr.
pub fn timed_run(label: &str, cfg: RunConfig) -> RunResult {
    let t0 = std::time::Instant::now();
    let res = harness::run(cfg);
    eprintln!(
        "[{label}] {:.1}s wall, {} sim events, {} active at end",
        t0.elapsed().as_secs_f64(),
        res.sim_events,
        res.final_active
    );
    res
}

/// Formats a number in scientific notation like the paper's axes.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.1e}")
    }
}

/// File stem for a result artifact: `<name>.<scale>`, so quick and full
/// runs of the same experiment never clobber each other. Sweep artifacts
/// additionally tag the seed count (see the `mspastry-sim` CLI).
pub fn artifact_stem(name: &str, s: Scale) -> String {
    format!("{name}.{}", s.name())
}

/// CSV export of experiment results (written under `results/`).
pub mod csv {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    /// Writes rows to `results/<stem>.csv` with the given header, creating
    /// the directory if missing, and returns the written path. Errors are
    /// reported on stderr but never abort an experiment (`None`).
    pub fn write(stem: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("csv: cannot create {dir:?}: {e}");
            return None;
        }
        let path = dir.join(format!("{stem}.csv"));
        let mut out = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("csv: cannot create {path:?}: {e}");
                return None;
            }
        };
        let mut text = header.join(",");
        text.push('\n');
        for row in rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        if let Err(e) = out.write_all(text.as_bytes()) {
            eprintln!("csv: write to {path:?} failed: {e}");
            None
        } else {
            eprintln!("csv: wrote {path:?} ({} rows)", rows.len());
            Some(path)
        }
    }
}

/// JSON sidecar export of experiment results (written under `results/`,
/// next to the CSVs). Schema `mspastry-series/1`: a named table with typed
/// cells, so downstream tooling never re-parses CSV heuristically.
pub mod json {
    use obs::JsonWriter;
    use std::path::{Path, PathBuf};

    /// Serialises one cell: numbers stay numbers, everything else is a
    /// string. Integer parses are tried first so counts round-trip exactly.
    fn cell(w: &mut JsonWriter, v: &str) {
        if let Ok(n) = v.parse::<u64>() {
            w.u64(n);
        } else if let Ok(n) = v.parse::<i64>() {
            w.i64(n);
        } else if let Ok(f) = v.parse::<f64>() {
            w.f64(f);
        } else {
            w.string(v);
        }
    }

    /// Renders a table as a `mspastry-series/1` JSON document.
    pub fn render_table(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "mspastry-series/1")
            .field_str("name", name);
        w.key("columns").begin_array();
        for h in header {
            w.string(h);
        }
        w.end_array();
        w.key("rows").begin_array();
        for row in rows {
            w.begin_array();
            for v in row {
                cell(&mut w, v);
            }
            w.end_array();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes a table to `results/<stem>.json`, creating the directory if
    /// missing, and returns the written path. Errors are reported on stderr
    /// but never abort an experiment (`None`, mirroring
    /// [`super::csv::write`]).
    pub fn write_table(stem: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("json: cannot create {dir:?}: {e}");
            return None;
        }
        let path = dir.join(format!("{stem}.json"));
        match std::fs::write(&path, render_table(stem, header, rows)) {
            Ok(()) => {
                eprintln!("json: wrote {path:?} ({} rows)", rows.len());
                Some(path)
            }
            Err(e) => {
                eprintln!("json: write to {path:?} failed: {e}");
                None
            }
        }
    }
}

/// Prints a standard header for a bench target.
pub fn header(fig: &str, what: &str, s: Scale) {
    println!("==============================================================");
    println!("{fig}: {what}");
    println!(
        "scale: {:?} (set MSPASTRY_SCALE=full for paper-scale runs)",
        s
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.6e-5), "1.6e-5");
    }

    #[test]
    fn json_table_types_cells() {
        let rows = vec![vec![
            "gnutella".to_string(),
            "42".to_string(),
            "1.5".to_string(),
        ]];
        let s = json::render_table("t", &["trace", "n", "rdp"], &rows);
        assert_eq!(
            s,
            "{\"schema\":\"mspastry-series/1\",\"name\":\"t\",\
             \"columns\":[\"trace\",\"n\",\"rdp\"],\
             \"rows\":[[\"gnutella\",42,1.5]]}"
        );
    }

    #[test]
    fn artifact_stems_carry_the_scale() {
        assert_eq!(artifact_stem("fig6_loss", Scale::Quick), "fig6_loss.quick");
        assert_eq!(artifact_stem("fig6_loss", Scale::Full), "fig6_loss.full");
    }

    #[test]
    fn full_registry_includes_app_scenarios() {
        let r = scenarios();
        for name in ["fig8_squirrel", "exp_replication", "fig4_traces", "smoke"] {
            assert!(r.get(name).is_some(), "missing {name}");
        }
        assert_eq!(r.get("fig8_squirrel").unwrap().figure, "Fig. 8");
    }

    #[test]
    fn fig8_scenario_matches_build_run() {
        let pts = scenarios()
            .get("fig8_squirrel")
            .unwrap()
            .expand(Scale::Quick);
        let from_scenario = (pts[0].build)(0);
        let (direct, _) = squirrel::build_run(&fig8_params(Scale::Quick));
        assert_eq!(from_scenario.seed, direct.seed);
        assert_eq!(from_scenario.trace, direct.trace);
    }

    #[test]
    fn replication_setup_is_deterministic_and_seeded() {
        let (a, ops_a) = replication_setup(0);
        let (b, _) = replication_setup(0);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.seed, b.seed);
        assert!(!ops_a.is_empty());
        let (c, _) = replication_setup(1);
        assert_ne!(a.trace, c.trace);
    }
}
