//! Shared machinery for the paper-reproduction benchmark targets.
//!
//! Every figure and table of the paper's §5 has a bench target under
//! `benches/` (all with `harness = false`, so `cargo bench` runs them as
//! plain binaries that print the same rows/series the paper reports).
//!
//! Two scales are supported, selected by the `MSPASTRY_SCALE` environment
//! variable:
//!
//! * `quick` (default) — scaled-down populations and durations so the whole
//!   suite finishes in minutes; the result *shape* (who wins, by what factor,
//!   where crossovers fall) matches the paper.
//! * `full` — the paper's populations and durations (hours of wall time).

use churn::gnutella::GnutellaParams;
use churn::microsoft::MicrosoftParams;
use churn::overnet::OvernetParams;
use churn::Trace;
use harness::{RunConfig, RunResult};
use topology::TopologyKind;

/// One minute in microseconds.
pub const MIN: u64 = 60 * 1_000_000;
/// One hour in microseconds.
pub const HOUR: u64 = 60 * MIN;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down runs (default; minutes of wall time).
    Quick,
    /// Paper-scale runs (hours of wall time).
    Full,
}

/// Reads the scale from `MSPASTRY_SCALE` (`quick`/`full`).
pub fn scale() -> Scale {
    match std::env::var("MSPASTRY_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// The Gnutella-like trace at the given scale.
pub fn gnutella_trace(s: Scale) -> Trace {
    match s {
        Scale::Full => churn::gnutella::trace(&GnutellaParams::default()),
        Scale::Quick => churn::gnutella::trace(&GnutellaParams {
            population_scale: 0.1,
            duration_us: 24 * HOUR,
            ..Default::default()
        }),
    }
}

/// The OverNet-like trace at the given scale.
pub fn overnet_trace(s: Scale) -> Trace {
    match s {
        Scale::Full => churn::overnet::trace(&OvernetParams::default()),
        Scale::Quick => churn::overnet::trace(&OvernetParams {
            population_scale: 0.4,
            duration_us: 24 * HOUR,
            ..Default::default()
        }),
    }
}

/// The Microsoft-corporate-like trace at the given scale.
pub fn microsoft_trace(s: Scale) -> Trace {
    match s {
        Scale::Full => churn::microsoft::trace(&MicrosoftParams::default()),
        Scale::Quick => churn::microsoft::trace(&MicrosoftParams {
            population_scale: 0.012,
            duration_us: 48 * HOUR,
            ..Default::default()
        }),
    }
}

/// A short Gnutella-like trace for parameter sweeps (many runs).
pub fn gnutella_sweep_trace(s: Scale, seed: u64) -> Trace {
    match s {
        Scale::Full => churn::gnutella::trace(&GnutellaParams {
            seed: 101 + seed,
            ..Default::default()
        }),
        Scale::Quick => churn::gnutella::trace(&GnutellaParams {
            population_scale: 0.08,
            duration_us: 2 * HOUR,
            seed: 101 + seed,
        }),
    }
}

/// The GATech topology at the given scale.
pub fn gatech(s: Scale) -> TopologyKind {
    match s {
        Scale::Full => TopologyKind::GaTech,
        Scale::Quick => TopologyKind::GaTechSmall,
    }
}

/// The base configuration of §5.1 around a trace.
///
/// Quick mode shortens the routing-table maintenance period from the paper's
/// 20 minutes to 5: PNS converges through maintenance gossip *rounds*, and a
/// quick trace is ~25x shorter than the paper's 60-hour runs, so the round
/// count — not the wall-clock period — is what must be preserved.
pub fn base_config(s: Scale, trace: Trace) -> RunConfig {
    let mut cfg = RunConfig::new(trace);
    cfg.topology = gatech(s);
    if s == Scale::Quick {
        cfg.protocol.rt_maintenance_period_us = 5 * MIN;
    }
    cfg
}

/// Runs and reports wall-clock time on stderr.
pub fn timed_run(label: &str, cfg: RunConfig) -> RunResult {
    let t0 = std::time::Instant::now();
    let res = harness::run(cfg);
    eprintln!(
        "[{label}] {:.1}s wall, {} sim events, {} active at end",
        t0.elapsed().as_secs_f64(),
        res.sim_events,
        res.final_active
    );
    res
}

/// Formats a number in scientific notation like the paper's axes.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.1e}")
    }
}

/// CSV export of experiment results (written under `results/`).
pub mod csv {
    use std::io::Write;
    use std::path::Path;

    /// Writes rows to `results/<name>.csv` with the given header. Errors are
    /// reported on stderr but never abort an experiment.
    pub fn write(name: &str, header: &[&str], rows: &[Vec<String>]) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("csv: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut out = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("csv: cannot create {path:?}: {e}");
                return;
            }
        };
        let mut text = header.join(",");
        text.push('\n');
        for row in rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        if let Err(e) = out.write_all(text.as_bytes()) {
            eprintln!("csv: write to {path:?} failed: {e}");
        } else {
            eprintln!("csv: wrote {path:?} ({} rows)", rows.len());
        }
    }
}

/// JSON sidecar export of experiment results (written under `results/`,
/// next to the CSVs). Schema `mspastry-series/1`: a named table with typed
/// cells, so downstream tooling never re-parses CSV heuristically.
pub mod json {
    use obs::JsonWriter;
    use std::path::Path;

    /// Serialises one cell: numbers stay numbers, everything else is a
    /// string. Integer parses are tried first so counts round-trip exactly.
    fn cell(w: &mut JsonWriter, v: &str) {
        if let Ok(n) = v.parse::<u64>() {
            w.u64(n);
        } else if let Ok(n) = v.parse::<i64>() {
            w.i64(n);
        } else if let Ok(f) = v.parse::<f64>() {
            w.f64(f);
        } else {
            w.string(v);
        }
    }

    /// Renders a table as a `mspastry-series/1` JSON document.
    pub fn render_table(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "mspastry-series/1")
            .field_str("name", name);
        w.key("columns").begin_array();
        for h in header {
            w.string(h);
        }
        w.end_array();
        w.key("rows").begin_array();
        for row in rows {
            w.begin_array();
            for v in row {
                cell(&mut w, v);
            }
            w.end_array();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes a table to `results/<name>.json`. Errors are reported on
    /// stderr but never abort an experiment (mirrors [`super::csv::write`]).
    pub fn write_table(name: &str, header: &[&str], rows: &[Vec<String>]) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("json: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match std::fs::write(&path, render_table(name, header, rows)) {
            Ok(()) => eprintln!("json: wrote {path:?} ({} rows)", rows.len()),
            Err(e) => eprintln!("json: write to {path:?} failed: {e}"),
        }
    }
}

/// Prints a standard header for a bench target.
pub fn header(fig: &str, what: &str, s: Scale) {
    println!("==============================================================");
    println!("{fig}: {what}");
    println!(
        "scale: {:?} (set MSPASTRY_SCALE=full for paper-scale runs)",
        s
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The env var is unset in CI.
        if std::env::var("MSPASTRY_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }

    #[test]
    fn quick_traces_are_small() {
        let t = gnutella_trace(Scale::Quick);
        assert!(t.active_at(2 * HOUR) < 400);
        assert_eq!(t.duration_us(), 24 * HOUR);
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.6e-5), "1.6e-5");
    }

    #[test]
    fn json_table_types_cells() {
        let rows = vec![vec![
            "gnutella".to_string(),
            "42".to_string(),
            "1.5".to_string(),
        ]];
        let s = json::render_table("t", &["trace", "n", "rdp"], &rows);
        assert_eq!(
            s,
            "{\"schema\":\"mspastry-series/1\",\"name\":\"t\",\
             \"columns\":[\"trace\",\"n\",\"rdp\"],\
             \"rows\":[[\"gnutella\",42,1.5]]}"
        );
    }
}
