//! Command-line experiment runner: simulate an MSPastry overlay under a
//! configurable trace, topology, workload and protocol configuration, and
//! print the paper's metrics.
//!
//! ```text
//! USAGE: mspastry-sim [OPTIONS]
//!
//! Scenario mode (run a registered experiment, optionally multi-seed):
//!   --list-scenarios    list the registered scenarios and exit
//!   --scenario NAME     run a registered scenario as a sweep
//!   --seeds N           independent seeds per scenario point       [1]
//!   --jobs N            worker threads (0 = all cores)             [0]
//!   --progress          report sweep progress (runs done, ev/s, ETA)
//!   --json [PATH]       write the sweep artifact (and a CSV next to it)
//!                       [results/<scenario>.<scale>.s<seeds>.json]
//!
//! Ad-hoc mode (assemble a single run from flags):
//!   --churn NAME        gnutella | overnet | microsoft | poisson  [poisson]
//!   --nodes N           mean active nodes (poisson) / scale base  [200]
//!   --session MIN       mean session minutes (poisson)            [60]
//!   --hours H           trace duration, hours                     [2]
//!   --topology NAME     gatech | gatech-small | mercator | corpnet [gatech-small]
//!   --loss PCT          network loss rate, percent                [0]
//!   --lookups RATE      lookups per node per second               [0.01]
//!   --b N               digit width                               [4]
//!   --l N               leaf set size                             [32]
//!   --target-lr PCT     self-tuning raw-loss target, percent      [5]
//!   --seed N            RNG seed                                  [1]
//!   --no-acks           disable per-hop acks
//!   --no-probing        disable active routing-table probing
//!   --no-suppression    disable probe suppression
//!   --no-selftuning     disable self-tuning (fixed 30 s period)
//!   --windows           print the per-window time series
//!   --json PATH         write the run artifact (report + diagnostics) as JSON
//!   --trace RATE        hop-trace sampling rate in [0, 1]         [0]
//!   --trace-out PATH    hop-trace JSONL path  [<json path>.trace.jsonl]
//!   --trace-capacity N  hop-trace ring capacity, events           [65536]
//!   --timeseries PATH   write per-interval metric deltas (mspastry-ts/1
//!                       JSONL) to PATH
//!   --ts-interval SECS  time-series sampling interval, seconds    [60]
//!   --profile           self-profile the run loop (per-event-kind counts
//!                       and wall time; adds "prof" to the JSON artifact)
//! ```

use churn::poisson::PoissonParams;
use harness::{
    run, run_sweep, sweep_csv, sweep_json, RunConfig, SweepConfig, Workload, CATEGORY_NAMES,
};
use topology::TopologyKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let flag = |name: &str| args.iter().any(|a| a == name);
    let parse_or = |name: &str, default: f64| -> f64 {
        get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}")))
            })
            .unwrap_or(default)
    };

    if flag("--list-scenarios") {
        let s = bench::scale();
        println!("{:<22} {:<12} title", "name", "figure");
        for sc in bench::scenarios().iter() {
            println!(
                "{:<22} {:<12} {} ({} points at this scale)",
                sc.name,
                sc.figure,
                sc.title,
                sc.expand(s).len()
            );
        }
        return;
    }
    if let Some(name) = get("--scenario") {
        run_scenario(&name, &args);
        return;
    }
    if flag("--seeds") || flag("--jobs") || flag("--progress") {
        die("--seeds/--jobs/--progress only apply to scenario sweeps; add --scenario NAME");
    }

    let hours = parse_or("--hours", 2.0);
    let duration_us = (hours * 3600e6) as u64;
    let nodes = parse_or("--nodes", 200.0);
    let session_min = parse_or("--session", 60.0);
    let seed = parse_or("--seed", 1.0) as u64;

    let trace = match get("--churn").as_deref().unwrap_or("poisson") {
        "poisson" => churn::poisson::trace(&PoissonParams {
            mean_nodes: nodes,
            mean_session_us: session_min * 60e6,
            duration_us,
            seed: 404 + seed,
        }),
        "gnutella" => churn::gnutella::trace(&churn::gnutella::GnutellaParams {
            population_scale: nodes / 2000.0,
            duration_us,
            seed: 101 + seed,
        }),
        "overnet" => churn::overnet::trace(&churn::overnet::OvernetParams {
            population_scale: nodes / 450.0,
            duration_us,
            seed: 202 + seed,
        }),
        "microsoft" => churn::microsoft::trace(&churn::microsoft::MicrosoftParams {
            population_scale: nodes / 15_150.0,
            duration_us,
            seed: 303 + seed,
        }),
        other => die(&format!("unknown trace: {other}")),
    };

    let mut cfg = RunConfig::new(trace);
    cfg.topology = match get("--topology").as_deref().unwrap_or("gatech-small") {
        "gatech" => TopologyKind::GaTech,
        "gatech-small" => TopologyKind::GaTechSmall,
        "mercator" => TopologyKind::Mercator,
        "corpnet" => TopologyKind::CorpNet,
        other => die(&format!("unknown topology: {other}")),
    };
    cfg.network_loss_rate = parse_or("--loss", 0.0) / 100.0;
    let rate = parse_or("--lookups", 0.01);
    cfg.workload = if rate > 0.0 {
        Workload::Poisson {
            rate_per_node_per_sec: rate,
        }
    } else {
        Workload::None
    };
    cfg.seed = seed;
    cfg.protocol.b = parse_or("--b", 4.0) as u8;
    cfg.protocol.leaf_set_size = parse_or("--l", 32.0) as usize;
    cfg.protocol.target_raw_loss = parse_or("--target-lr", 5.0) / 100.0;
    cfg.protocol.per_hop_acks = !flag("--no-acks");
    cfg.protocol.active_rt_probing = !flag("--no-probing");
    cfg.protocol.probe_suppression = !flag("--no-suppression");
    cfg.protocol.self_tuning = !flag("--no-selftuning");

    let json_path = get("--json");
    let trace_rate = get("--trace")
        .map(|v| {
            v.parse::<f64>().ok().filter(|r| (0.0..=1.0).contains(r)).unwrap_or_else(|| {
                die(&format!(
                    "bad value for --trace: {v} (a sampling rate in [0, 1]; churn traces are selected with --churn)"
                ))
            })
        })
        .unwrap_or(0.0);
    cfg.trace_sample_rate = trace_rate;
    cfg.trace_capacity = parse_or("--trace-capacity", 65_536.0) as usize;
    let trace_out = get("--trace-out").or_else(|| {
        (trace_rate > 0.0)
            .then(|| json_path.as_deref().map(|p| format!("{p}.trace.jsonl")))
            .flatten()
    });
    let ts_path = get("--timeseries");
    if ts_path.is_some() {
        let secs = parse_or("--ts-interval", 60.0);
        if secs <= 0.0 {
            die(&format!(
                "bad value for --ts-interval: {secs} (seconds, > 0)"
            ));
        }
        cfg.ts_interval_us = (secs * 1e6) as u64;
    } else if flag("--ts-interval") {
        die("--ts-interval only applies with --timeseries PATH");
    }
    cfg.profile = flag("--profile");

    let trace_capacity = cfg.trace_capacity;
    eprintln!(
        "simulating {} on {:?} for {hours} h (seed {seed}) ...",
        cfg.trace.name(),
        cfg.topology
    );
    let t0 = std::time::Instant::now();
    let res = run(cfg);
    let r = &res.report;
    eprintln!(
        "done in {:.1}s ({} events)",
        t0.elapsed().as_secs_f64(),
        res.sim_events
    );

    println!("active nodes at end      : {}", res.final_active);
    println!("lookups issued           : {}", r.issued);
    println!("delivered / lost         : {} / {}", r.delivered, r.lost);
    println!("incorrect delivery rate  : {:.2e}", r.incorrect_rate);
    println!("lookup loss rate         : {:.2e}", r.loss_rate);
    println!("mean RDP                 : {:.2}", r.mean_rdp);
    println!("mean hops                : {:.2}", r.mean_hops);
    println!(
        "control traffic          : {:.3} msg/s/node",
        r.control_msgs_per_node_per_sec
    );
    for (i, name) in CATEGORY_NAMES.iter().enumerate() {
        println!("  {:>18}: {:.4}", name, r.totals_per_node_per_sec[i]);
    }
    println!(
        "wire bandwidth           : {:.1} bytes/s/node",
        r.bytes_per_node_per_sec
    );
    println!("mean adopted Trt         : {:.1} s", res.mean_t_rt_us / 1e6);
    println!("ring defects at end      : {}", res.ring_defects);
    if let (Some(p50), Some(p95)) = (r.join_latency_quantile(0.5), r.join_latency_quantile(0.95)) {
        println!(
            "join latency p50 / p95   : {:.1} s / {:.1} s",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6
        );
    }
    if flag("--windows") {
        println!();
        println!(
            "{:>10} | {:>6} | {:>9} | {:>8}",
            "t (min)", "RDP", "ctl/s/n", "active"
        );
        for w in &r.windows {
            println!(
                "{:>10} | {:>6.2} | {:>9.3} | {:>8.0}",
                w.start_us / 60_000_000,
                w.rdp,
                w.control_per_node_per_sec,
                w.mean_active_nodes
            );
        }
    }
    if let Some(path) = &json_path {
        match std::fs::write(path, harness::run_json(&res)) {
            Ok(()) => eprintln!("wrote run artifact to {path}"),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if let Some(path) = &trace_out {
        match std::fs::write(path, obs::trace_jsonl(&res.trace_events)) {
            Ok(()) => eprintln!(
                "wrote {} hop-trace events to {path}",
                res.trace_events.len()
            ),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if res.trace_overwritten > 0 {
        eprintln!(
            "warning: hop-trace ring overflowed; {} events were overwritten \
             (capacity {}). Rerun with a larger --trace-capacity or a lower \
             --trace rate for a complete trace.",
            res.trace_overwritten, trace_capacity,
        );
    }
    if let Some(path) = &ts_path {
        let ts = res
            .timeseries
            .as_ref()
            .expect("--timeseries sets ts_interval_us > 0");
        match std::fs::write(path, obs::ts_jsonl(ts)) {
            Ok(()) => eprintln!(
                "wrote {} time-series windows to {path} ({} dropped)",
                ts.len(),
                ts.dropped()
            ),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if let Some(p) = &res.prof {
        eprintln!(
            "profile: {} events in {:.2}s wall, queue depth mean {:.0} / max {}",
            p.events,
            p.wall_us as f64 / 1e6,
            p.depth_mean,
            p.depth_max
        );
        for k in &p.kinds {
            eprintln!(
                "  {:>12}: {:>10} events, {:>8.1} ms, {:>6.0} ns/event",
                k.name,
                k.count,
                k.ns as f64 / 1e6,
                k.ns as f64 / k.count.max(1) as f64
            );
        }
    }
}

/// Runs a registered scenario as a (possibly multi-seed, parallel) sweep and
/// prints per-point means; `--json [PATH]` also writes the
/// `mspastry-series/2` artifact plus a CSV next to it.
fn run_scenario(name: &str, args: &[String]) {
    let parse_or = |opt: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == opt)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("bad value for {opt}: {v}")))
            })
            .unwrap_or(default)
    };
    // `--json` takes an *optional* path in scenario mode: a following token
    // that looks like another option means "use the default path".
    let json = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).filter(|v| !v.starts_with("--")).cloned());

    let s = bench::scale();
    let registry = bench::scenarios();
    let Some(scenario) = registry.get(name) else {
        die(&format!("unknown scenario: {name} (see --list-scenarios)"));
    };
    let mut cfg = SweepConfig::new(s);
    cfg.seeds = parse_or("--seeds", 1);
    cfg.jobs = parse_or("--jobs", 0) as usize;
    cfg.progress = args.iter().any(|a| a == "--progress");

    eprintln!(
        "sweeping {} ({}): {} points x {} seeds at {} scale ...",
        scenario.name,
        scenario.figure,
        scenario.expand(s).len(),
        cfg.seeds,
        s.name()
    );
    let t0 = std::time::Instant::now();
    let sweep = run_sweep(scenario, &cfg);
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());

    println!(
        "{:<22} | {:>10} | {:>10} | {:>6} | {:>9}",
        "point", "loss", "incorrect", "RDP", "ctl/s/n"
    );
    for p in &sweep.points {
        let stat = |metric: &str| {
            p.stats
                .iter()
                .find(|m| m.name == metric)
                .map(|m| m.mean)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<22} | {:>10.2e} | {:>10.2e} | {:>6.2} | {:>9.3}",
            p.label,
            stat("loss_rate"),
            stat("incorrect_rate"),
            stat("mean_rdp"),
            stat("control_msgs_per_node_per_sec"),
        );
    }

    if let Some(path) = json {
        let stem = format!("results/{}.{}.s{}", scenario.name, s.name(), cfg.seeds);
        let json_path = path.unwrap_or_else(|| format!("{stem}.json"));
        let csv_path = json_path
            .strip_suffix(".json")
            .map(|p| format!("{p}.csv"))
            .unwrap_or_else(|| format!("{json_path}.csv"));
        if let Some(dir) = std::path::Path::new(&json_path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match std::fs::write(&json_path, sweep_json(&sweep)) {
            Ok(()) => eprintln!("wrote sweep artifact to {json_path}"),
            Err(e) => die(&format!("cannot write {json_path}: {e}")),
        }
        match std::fs::write(&csv_path, sweep_csv(&sweep)) {
            Ok(()) => eprintln!("wrote sweep table to {csv_path}"),
            Err(e) => die(&format!("cannot write {csv_path}: {e}")),
        }
    }
}

fn print_help() {
    // The doc comment at the top of this file is the help text.
    let src = include_str!("mspastry-sim.rs");
    for line in src.lines().skip(4) {
        if let Some(t) = line.strip_prefix("//! ") {
            if !t.starts_with("```") {
                println!("{t}");
            }
        } else if line == "//!" {
            println!();
        } else {
            break;
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}
