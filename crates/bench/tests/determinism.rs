//! Sweep determinism: the scenario engine must produce artifacts that are
//! byte-identical regardless of worker count, and a scenario-built run must
//! bit-match the same configuration assembled by hand (the legacy direct
//! `RunConfig` path the benches used before the registry existed).

use churn::gnutella::GnutellaParams;
use harness::scenario::{base_config, Scale, MIN};
use harness::{run, run_json, run_sweep, sweep_csv, sweep_json, SweepConfig};
use topology::TopologyKind;

/// A hand-assembled copy of the `smoke` scenario's only point at seed index
/// 0 — the recipe every bench used to spell out inline.
fn legacy_smoke_config() -> harness::RunConfig {
    let trace = churn::gnutella::trace(&GnutellaParams {
        population_scale: 0.03,
        duration_us: 30 * MIN,
        seed: 101,
    });
    let mut cfg = base_config(Scale::Quick, trace);
    cfg.topology = TopologyKind::GaTechSmall;
    // Seed index 0 leaves the run seed at its base value.
    cfg
}

#[test]
fn scenario_run_bit_matches_the_legacy_direct_path() {
    let registry = bench::scenarios();
    let points = registry
        .get("smoke")
        .expect("registered scenario")
        .expand(Scale::Quick);
    let from_scenario = run((points[0].build)(0));
    let from_legacy = run(legacy_smoke_config());
    assert_eq!(run_json(&from_scenario), run_json(&from_legacy));
}

#[test]
fn sweep_artifacts_are_byte_identical_across_worker_counts() {
    let registry = bench::scenarios();
    let scenario = registry.get("smoke").expect("registered scenario");
    let mut cfg = SweepConfig::new(Scale::Quick);
    cfg.seeds = 2;
    cfg.jobs = 1;
    let serial = run_sweep(scenario, &cfg);
    cfg.jobs = 3;
    let parallel = run_sweep(scenario, &cfg);
    assert_eq!(sweep_json(&serial), sweep_json(&parallel));
    assert_eq!(sweep_csv(&serial), sweep_csv(&parallel));
}
