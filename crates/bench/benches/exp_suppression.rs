//! §5.3 "suppression" (text): application traffic replaces failure-detection
//! traffic.
//!
//! The paper reports that raising application traffic from 0 to 1 lookup per
//! second per node suppresses over 70 % of the active probes and improves
//! RDP by 13 % (failures are detected sooner).

use bench::{header, scale};
use harness::category_index;
use harness::scenario::SUPPRESSION_RATES;
use mspastry::Category;

fn main() {
    let s = scale();
    header(
        "Suppression",
        "probe traffic vs application traffic (Gnutella trace)",
        s,
    );
    let points = bench::scenarios()
        .get("exp_suppression")
        .expect("registered scenario")
        .expand(s);
    println!();
    println!(
        "{:>12} | {:>12} | {:>12} | {:>6}",
        "lookups/s", "rt-probes/s", "leafset/s", "RDP"
    );
    let mut probes_at = Vec::new();
    for (rate, p) in SUPPRESSION_RATES.into_iter().zip(&points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        // Exact liveness-probe count (the category also contains
        // unsuppressed maintenance messages).
        let rt = res
            .report
            .fine_counts
            .iter()
            .find(|(k, _)| *k == "rt-probe")
            .map(|(_, c)| *c)
            .unwrap_or(0) as f64
            / res.report.node_seconds;
        let ls = res.report.totals_per_node_per_sec[category_index(Category::LeafSet)];
        println!(
            "{:>12} | {:>12.4} | {:>12.4} | {:>6.2}",
            rate, rt, ls, res.report.mean_rdp
        );
        probes_at.push((rate, rt));
    }
    let at0 = probes_at[0].1;
    let at1 = probes_at.last().unwrap().1;
    println!();
    println!(
        "probe suppression at 1 lookup/s/node: {:.0}% (paper: >70%)",
        (1.0 - at1 / at0.max(1e-12)) * 100.0
    );
    println!("expected (paper): probes mostly suppressed at high lookup rates");
    println!("and RDP improves slightly (~13%) because failures are detected");
    println!("sooner by the traffic itself.");
}
