//! Criterion micro-benchmarks of the performance-critical protocol data
//! structures and the simulator core: routing-table offers, leaf-set
//! updates, the routing function, the self-tuning solver, and event-queue
//! throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mspastry::id::Id;
use mspastry::leaf_set::LeafSet;
use mspastry::routing::{route, NextHop};
use mspastry::routing_table::RoutingTable;
use mspastry::tuning;
use mspastry::Config;
use netsim::EventQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_routing_table(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let own = Id::random(&mut rng);
    let ids: Vec<Id> = (0..1000).map(|_| Id::random(&mut rng)).collect();
    c.bench_function("routing_table_offer_1000", |b| {
        b.iter_batched(
            || RoutingTable::new(own, 4),
            |mut rt| {
                for (i, &id) in ids.iter().enumerate() {
                    rt.offer(id, i as u64);
                }
                rt
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_leaf_set(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let own = Id::random(&mut rng);
    let ids: Vec<Id> = (0..256).map(|_| Id::random(&mut rng)).collect();
    c.bench_function("leaf_set_add_256", |b| {
        b.iter_batched(
            || LeafSet::new(own, 16),
            |mut ls| {
                for &id in &ids {
                    ls.add(id);
                }
                ls
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_route(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let own = Id::random(&mut rng);
    let mut rt = RoutingTable::new(own, 4);
    let mut ls = LeafSet::new(own, 16);
    for _ in 0..2000 {
        let id = Id::random(&mut rng);
        rt.offer(id, rng.gen_range(1..100_000));
        ls.add(id);
    }
    let keys: Vec<Id> = (0..256).map(|_| Id::random(&mut rng)).collect();
    c.bench_function("route_256_keys", |b| {
        b.iter(|| {
            let mut local = 0;
            for &k in &keys {
                if route(&rt, &ls, k, &|_| false) == NextHop::Local {
                    local += 1;
                }
            }
            local
        })
    });
}

fn bench_tuning(c: &mut Criterion) {
    let cfg = Config::default();
    c.bench_function("solve_t_rt", |b| {
        b.iter(|| tuning::solve_t_rt(&cfg, std::hint::black_box(2e-10), 10_000.0))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_mixed", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..10_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.schedule_at(x % 1_000_000, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            sum
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let msg = mspastry::Message::LsProbe {
        leaf_set: (0..32).map(|_| Id::random(&mut rng)).collect(),
        failed: (0..4).map(|_| Id::random(&mut rng)).collect(),
        trt_hint: Some(30_000_000),
    };
    let bytes = mspastry::codec::encode(&msg);
    c.bench_function("codec_encode_ls_probe", |b| {
        b.iter(|| mspastry::codec::encode(std::hint::black_box(&msg)))
    });
    c.bench_function("codec_decode_ls_probe", |b| {
        b.iter(|| mspastry::codec::decode(std::hint::black_box(&bytes)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_routing_table,
    bench_leaf_set,
    bench_route,
    bench_tuning,
    bench_event_queue,
    bench_codec
);
criterion_main!(benches);
