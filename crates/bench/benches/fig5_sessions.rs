//! Figure 5: RDP and control traffic for Poisson traces with mean session
//! times of 5..600 minutes, plus the join-latency CDF for the 5- and
//! 30-minute traces.
//!
//! Expected shape: control traffic rises steeply as sessions shrink (the
//! paper reports ~22x from 600 to 15 minutes, with a dip at 5 minutes when
//! nodes die before activating); RDP roughly flat for sessions >= 60 min,
//! rising at 15 and especially 5 minutes; joins complete within seconds.

use bench::{header, scale, timed_run};
use harness::quantile_index;
use harness::scenario::FIG5_SESSION_MINUTES;

fn main() {
    let s = scale();
    header("Figure 5", "Poisson traces: session-time sweep", s);
    let points = bench::scenarios()
        .get("fig5_sessions")
        .expect("registered scenario")
        .expand(s);

    println!();
    println!(
        "{:>8} | {:>6} | {:>9} | {:>18} | {:>8} | {:>9}",
        "session", "RDP", "loss", "control msg/s/node", "active", "incorrect"
    );
    let mut cdf_sources = Vec::new();
    let mut rows = Vec::new();
    for (minutes, p) in FIG5_SESSION_MINUTES.into_iter().zip(&points) {
        let res = timed_run(&p.label, (p.build)(0));
        println!(
            "{:>6}mn | {:>6.2} | {:>9} | {:>18.3} | {:>8} | {:>9}",
            minutes,
            res.report.mean_rdp,
            bench::sci(res.report.loss_rate),
            res.report.control_msgs_per_node_per_sec,
            res.final_active,
            res.report.incorrect,
        );
        rows.push(vec![
            format!("{minutes}"),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.loss_rate),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.final_active),
        ]);
        if minutes == 5 || minutes == 30 {
            cdf_sources.push((minutes, res.report.join_latencies_us.clone()));
        }
    }
    let fig5_header = [
        "session_min",
        "rdp",
        "loss_rate",
        "control_per_node_per_sec",
        "active",
    ];
    let stem = bench::artifact_stem("fig5_sessions", s);
    bench::csv::write(&stem, &fig5_header, &rows);
    bench::json::write_table(&stem, &fig5_header, &rows);

    println!();
    println!("--- right: join-latency CDF (seconds) ---");
    println!(
        "{:>9} | {:>10} | {:>10}",
        "quantile", "5 minutes", "30 minutes"
    );
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        print!("{q:>9.2} |");
        for (_, lats) in &cdf_sources {
            if lats.is_empty() {
                print!(" {:>10} |", "-");
                continue;
            }
            print!(
                " {:>10.1} |",
                lats[quantile_index(lats.len(), q)] as f64 / 1e6
            );
        }
        println!();
    }
    println!();
    println!("expected (paper): control traffic ~22x higher at 15 min than at");
    println!("600 min, dipping at 5 min; RDP +~40% from 600 to 15 min, jumping");
    println!("at 5 min; most joins complete within 10-40 s.");
}
