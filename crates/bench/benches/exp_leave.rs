//! Extension experiment: graceful-leave announcements.
//!
//! The paper treats every departure as a crash: the overlay pays failure
//! detection (heartbeat silence, probe retries) and repair traffic for every
//! leaving node. This extension lets a departing node announce itself to its
//! routing state (`Leaving`), letting peers repair instantly.
//!
//! Expected shape: as the graceful fraction grows, leaf-set probe traffic
//! and lookup losses shrink (fewer undetected-dead windows); RDP improves
//! slightly. Consistency must remain perfect in every configuration.

use bench::{header, scale};
use harness::scenario::LEAVE_FRACTIONS;

fn main() {
    let s = scale();
    header(
        "Graceful leave (extension)",
        "announced departures vs silent crashes (Gnutella trace)",
        s,
    );
    let points = bench::scenarios()
        .get("exp_leave")
        .expect("registered scenario")
        .expand(s);
    println!();
    println!(
        "{:>9} | {:>10} | {:>6} | {:>11} | {:>18}",
        "graceful", "loss", "RDP", "leafset/s/n", "control msg/s/node"
    );
    for (frac, p) in LEAVE_FRACTIONS.into_iter().zip(&points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>8.0}% | {:>10} | {:>6.2} | {:>11.4} | {:>18.3}",
            frac * 100.0,
            bench::sci(res.report.loss_rate),
            res.report.mean_rdp,
            res.report.totals_per_node_per_sec[1],
            res.report.control_msgs_per_node_per_sec,
        );
        assert_eq!(res.report.incorrect, 0, "consistency must hold");
    }
    println!();
    println!("expected: announced departures cut leaf-set probe traffic and");
    println!("losses; the paper's all-crash model is the 0% row.");
}
