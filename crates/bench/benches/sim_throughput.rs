//! End-to-end simulator throughput on the Gnutella-trace reference workload.
//!
//! Runs the §5.1 base configuration (Gnutella-like churn on the GATech
//! topology) a few times and reports the best events/sec plus the process
//! peak RSS. Results land in `BENCH_throughput.json` at the repository root:
//!
//! * normal runs update the `current` entry and the derived `speedup`;
//! * `MSPASTRY_BENCH_BASELINE=1` (re)records the `baseline` entry instead —
//!   used once, on the pre-optimization tree, so later runs compare against
//!   a fixed reference measured by the same harness on the same machine.
//!
//! `MSPASTRY_SCALE=full` runs the paper-scale trace (hours of wall time).
//! `MSPASTRY_BENCH_RUNS=n` overrides the number of runs (default 3) — handy
//! for interleaved A/B comparisons on hosts with drifting clock speed.
//! `MSPASTRY_TRACE_RATE=r` enables hop-trace sampling at rate `r` to measure
//! the flight-recorder overhead; results are printed but *not* written to
//! `BENCH_throughput.json` (the reference file tracks the untraced path).

use bench::{header, scale, Scale};

fn runs() -> usize {
    std::env::var("MSPASTRY_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Peak resident set size of this process, in kB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Pulls `"key": { ... }` out of a flat hand-rolled JSON object.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": {{");
    let start = json.find(&needle)? + needle.len() - 1;
    let end = json[start..].find('}')? + start;
    Some(&json[start..=end])
}

fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Measurement {
    events_per_sec: f64,
    wall_s: f64,
    sim_events: u64,
    peak_rss_mb: f64,
}

fn entry_json(m: &Measurement) -> String {
    format!(
        "{{ \"events_per_sec\": {:.0}, \"wall_s\": {:.2}, \"sim_events\": {}, \"peak_rss_mb\": {:.1} }}",
        m.events_per_sec, m.wall_s, m.sim_events, m.peak_rss_mb
    )
}

fn main() {
    let s = scale();
    header(
        "sim_throughput",
        "simulator events/sec, Gnutella reference workload",
        s,
    );

    let trace_rate: f64 = std::env::var("MSPASTRY_TRACE_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if trace_rate > 0.0 {
        println!("hop-trace sampling at {trace_rate} (overhead measurement)");
    }

    // The §5.1 Gnutella/GATech reference configuration is the first point of
    // the fig4 scenario.
    let points = bench::scenarios()
        .get("fig4_traces")
        .expect("registered scenario")
        .expand(s);
    let mut best: Option<Measurement> = None;
    for run in 0..runs() {
        let mut cfg = (points[0].build)(0);
        cfg.trace_sample_rate = trace_rate;
        let t0 = std::time::Instant::now();
        let res = harness::run(cfg);
        let wall = t0.elapsed().as_secs_f64();
        let eps = res.sim_events as f64 / wall;
        println!(
            "run {}: {:.1}s wall, {} events, {:.0} events/sec",
            run + 1,
            wall,
            res.sim_events,
            eps
        );
        if best.as_ref().is_none_or(|b| eps > b.events_per_sec) {
            best = Some(Measurement {
                events_per_sec: eps,
                wall_s: wall,
                sim_events: res.sim_events,
                peak_rss_mb: peak_rss_kb() as f64 / 1024.0,
            });
        }
    }
    let mut m = best.expect("at least one run");
    // VmHWM only grows; attribute the final peak to the best run.
    m.peak_rss_mb = peak_rss_kb() as f64 / 1024.0;

    if trace_rate > 0.0 {
        println!(
            "best (traced at {trace_rate}): {:.0} events/sec, peak RSS {:.1} MB",
            m.events_per_sec, m.peak_rss_mb
        );
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let record_baseline = std::env::var("MSPASTRY_BENCH_BASELINE").is_ok();
    let baseline = if record_baseline {
        entry_json(&m)
    } else {
        extract_object(&existing, "baseline")
            .map(str::to_string)
            .unwrap_or_else(|| entry_json(&m))
    };
    let current = entry_json(&m);
    let baseline_eps = extract_number(&baseline, "events_per_sec").unwrap_or(m.events_per_sec);
    let speedup = m.events_per_sec / baseline_eps.max(1.0);

    let json = format!(
        "{{\n  \"workload\": \"gnutella {} / GATech ({:?} scale)\",\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup\": {:.2}\n}}\n",
        if s == Scale::Full { "full" } else { "quick" },
        s,
        baseline,
        current,
        speedup
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    }
    println!(
        "best: {:.0} events/sec, peak RSS {:.1} MB ({}x vs baseline {:.0})",
        m.events_per_sec,
        m.peak_rss_mb,
        format_args!("{speedup:.2}"),
        baseline_eps
    );
}
