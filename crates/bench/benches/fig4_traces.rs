//! Figure 4: RDP and control traffic over (normalized) time for the three
//! real-world traces, plus the control-traffic breakdown by message type for
//! Gnutella.
//!
//! Expected shape: RDP roughly constant per trace despite daily churn waves
//! (self-tuning at work), Microsoft's RDP lowest; control traffic fluctuates
//! with the daily pattern, with Microsoft ≈3x lower than Gnutella/OverNet;
//! the Gnutella breakdown is dominated by distance probes and leaf-set
//! heartbeats/probes.

use bench::{header, scale, timed_run, HOUR};
use harness::{series_index, CATEGORY_NAMES};

fn main() {
    let s = scale();
    header(
        "Figure 4",
        "RDP and control traffic vs normalized time (3 traces)",
        s,
    );
    // The Microsoft point widens its metrics window to an hour inside the
    // scenario definition, matching the paper's plots.
    let points = bench::scenarios()
        .get("fig4_traces")
        .expect("registered scenario")
        .expand(s);
    let mut results = Vec::new();
    for p in &points {
        results.push((p.label.clone(), timed_run(&p.label, (p.build)(0))));
    }

    println!();
    println!("--- left/centre: RDP and control traffic vs normalized time ---");
    println!(
        "{:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "t/T", "RDP:Gnu", "RDP:Ovr", "RDP:Msft", "ctl:Gnu", "ctl:Ovr", "ctl:Msft"
    );
    let samples = 10;
    for i in 0..samples {
        let frac = i as f64 / samples as f64;
        print!("{frac:>5.1} |");
        for (_, r) in &results {
            let w = &r.report.windows;
            print!(" {:>9.2}", w[series_index(w.len(), frac)].rdp);
        }
        print!(" |");
        for (_, r) in &results {
            let w = &r.report.windows;
            print!(
                " {:>9.3}",
                w[series_index(w.len(), frac)].control_per_node_per_sec
            );
        }
        println!();
    }

    let mut rows = Vec::new();
    for (name, r) in &results {
        for w in &r.report.windows {
            rows.push(vec![
                name.to_string(),
                format!("{}", w.start_us),
                format!("{}", w.rdp),
                format!("{}", w.control_per_node_per_sec),
                format!("{}", w.mean_active_nodes),
            ]);
        }
    }
    let fig4_header = [
        "trace",
        "start_us",
        "rdp",
        "control_per_node_per_sec",
        "active",
    ];
    let stem = bench::artifact_stem("fig4_windows", s);
    bench::csv::write(&stem, &fig4_header, &rows);
    bench::json::write_table(&stem, &fig4_header, &rows);

    println!();
    println!("--- whole-trace means ---");
    println!(
        "{:>10} | {:>6} | {:>18} | {:>9} | {:>9}",
        "trace", "RDP", "control msg/s/node", "loss", "incorrect"
    );
    for (name, r) in &results {
        println!(
            "{:>10} | {:>6.2} | {:>18.3} | {:>9} | {:>9}",
            name,
            r.report.mean_rdp,
            r.report.control_msgs_per_node_per_sec,
            bench::sci(r.report.loss_rate),
            bench::sci(r.report.incorrect_rate),
        );
    }

    println!();
    println!("--- right: Gnutella control-traffic breakdown (msg/s/node) ---");
    let gnu = &results[0].1.report;
    println!("{:>8} | {}", "hour", CATEGORY_NAMES[..5].join("  "));
    let t0 = gnu.windows.first().map(|w| w.start_us).unwrap_or(0);
    for (i, w) in gnu.windows.iter().enumerate() {
        if i % 6 == 0 {
            print!("{:>8} |", (w.start_us - t0) / HOUR);
            for c in 0..5 {
                print!(" {:>15.4}", w.per_category_per_node_per_sec[c]);
            }
            println!();
        }
    }
    println!();
    println!("--- Gnutella whole-trace breakdown ---");
    for (i, name) in CATEGORY_NAMES.iter().enumerate() {
        println!("  {:>18}: {:.4}", name, gnu.totals_per_node_per_sec[i]);
    }
    println!();
    println!("expected (paper): control traffic <0.5 msg/s/node; Microsoft ~3x");
    println!("lower than Gnutella/OverNet; RDP ~flat per trace, Microsoft lowest;");
    println!("distance probes dominate the fluctuating part of the breakdown.");
}
