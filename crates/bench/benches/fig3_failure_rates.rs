//! Figure 3: node failure rates over time for the Gnutella, OverNet and
//! Microsoft traces.
//!
//! The paper plots failures per node per second averaged over 10-minute
//! windows (1 hour for Microsoft). Expected shape: clear daily (and weekly)
//! patterns; Gnutella and OverNet fluctuate in the 1e-4..3.5e-4 band while
//! Microsoft sits an order of magnitude lower.

use bench::{header, scale, sci, Scale, HOUR, MIN};

fn main() {
    let s = scale();
    header("Figure 3", "node failure rate per trace over time", s);
    // Trace generation is cheap: always expand the scenario at full scale so
    // the daily/weekly pattern is visible even in quick mode. The traces are
    // pulled out of the registry's run configurations — this bench analyses
    // the churn itself and never simulates.
    let points = bench::scenarios()
        .get("fig3_failure_rates")
        .expect("registered scenario")
        .expand(Scale::Full);
    let labelled: Vec<(String, churn::Trace)> = points
        .iter()
        .map(|p| (p.label.clone(), (p.build)(0).trace))
        .collect();

    let mut json_rows = Vec::new();
    for (label, trace) in &labelled {
        // The paper uses hourly windows for the (much longer) Microsoft
        // trace and 10-minute windows otherwise.
        let window = if label == "Microsoft" { HOUR } else { 10 * MIN };
        println!();
        println!(
            "--- {label} ({:.0} h, {}-min windows) ---",
            trace.duration_us() as f64 / 3600e6,
            window / MIN
        );
        let series = trace.failure_rate_series(window);
        // Print hourly aggregates to keep the table readable.
        let per_line = (HOUR / window).max(1) as usize;
        println!("{:>8} | {:>12} | {:>7}", "hour", "fail/node/s", "active");
        let mut max_rate: f64 = 0.0;
        let mut min_rate = f64::MAX;
        for chunk in series.chunks(per_line) {
            let t0 = chunk[0].0;
            let mean = chunk.iter().map(|(_, r)| r).sum::<f64>() / chunk.len() as f64;
            max_rate = max_rate.max(mean);
            if t0 > 2 * HOUR {
                min_rate = min_rate.min(mean);
            }
            json_rows.push(vec![
                trace.name().to_string(),
                format!("{}", t0 / HOUR),
                format!("{mean}"),
                format!("{}", trace.active_at(t0 + window / 2)),
            ]);
            // Print every 6th hour to bound output size.
            if (t0 / HOUR).is_multiple_of(6) {
                println!(
                    "{:>8} | {:>12} | {:>7}",
                    t0 / HOUR,
                    sci(mean),
                    trace.active_at(t0 + window / 2)
                );
            }
        }
        println!(
            "mean session: {:.1} h, median: {:.1} h, rate band: {} .. {}",
            trace.mean_session_us() / 3600e6,
            trace.median_session_us() as f64 / 3600e6,
            sci(min_rate),
            sci(max_rate)
        );
    }
    bench::json::write_table(
        &bench::artifact_stem("fig3_failure_rates", s),
        &["trace", "hour", "failures_per_node_per_sec", "active"],
        &json_rows,
    );
    println!();
    println!("expected (paper): Gnutella/OverNet fluctuate daily in ~1e-4..3.5e-4;");
    println!("Microsoft is an order of magnitude lower with daily+weekly waves.");
}
