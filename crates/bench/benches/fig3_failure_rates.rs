//! Figure 3: node failure rates over time for the Gnutella, OverNet and
//! Microsoft traces.
//!
//! The paper plots failures per node per second averaged over 10-minute
//! windows (1 hour for Microsoft). Expected shape: clear daily (and weekly)
//! patterns; Gnutella and OverNet fluctuate in the 1e-4..3.5e-4 band while
//! Microsoft sits an order of magnitude lower.

use bench::{header, scale, sci, Scale, HOUR, MIN};

fn main() {
    let s = scale();
    header("Figure 3", "node failure rate per trace over time", s);
    // Trace generation is cheap: always use the paper-scale traces so the
    // daily/weekly pattern is visible even in quick mode.
    let gnutella = bench::gnutella_trace(Scale::Full);
    let overnet = bench::overnet_trace(Scale::Full);
    let microsoft = bench::microsoft_trace(Scale::Full);

    let mut json_rows = Vec::new();
    for (trace, window, label) in [
        (&gnutella, 10 * MIN, "Gnutella (60 h, 10-min windows)"),
        (&overnet, 10 * MIN, "OverNet (7 d, 10-min windows)"),
        (&microsoft, HOUR, "Microsoft (37 d, 1-h windows)"),
    ] {
        println!();
        println!("--- {label} ---");
        let series = trace.failure_rate_series(window);
        // Print hourly aggregates to keep the table readable.
        let per_line = (HOUR / window).max(1) as usize;
        println!("{:>8} | {:>12} | {:>7}", "hour", "fail/node/s", "active");
        let mut max_rate: f64 = 0.0;
        let mut min_rate = f64::MAX;
        for chunk in series.chunks(per_line) {
            let t0 = chunk[0].0;
            let mean = chunk.iter().map(|(_, r)| r).sum::<f64>() / chunk.len() as f64;
            max_rate = max_rate.max(mean);
            if t0 > 2 * HOUR {
                min_rate = min_rate.min(mean);
            }
            json_rows.push(vec![
                trace.name().to_string(),
                format!("{}", t0 / HOUR),
                format!("{mean}"),
                format!("{}", trace.active_at(t0 + window / 2)),
            ]);
            // Print every 6th hour to bound output size.
            if (t0 / HOUR).is_multiple_of(6) {
                println!(
                    "{:>8} | {:>12} | {:>7}",
                    t0 / HOUR,
                    sci(mean),
                    trace.active_at(t0 + window / 2)
                );
            }
        }
        println!(
            "mean session: {:.1} h, median: {:.1} h, rate band: {} .. {}",
            trace.mean_session_us() / 3600e6,
            trace.median_session_us() as f64 / 3600e6,
            sci(min_rate),
            sci(max_rate)
        );
    }
    bench::json::write_table(
        "fig3_failure_rates",
        &["trace", "hour", "failures_per_node_per_sec", "active"],
        &json_rows,
    );
    println!();
    println!("expected (paper): Gnutella/OverNet fluctuate daily in ~1e-4..3.5e-4;");
    println!("Microsoft is an order of magnitude lower with daily+weekly waves.");
}
