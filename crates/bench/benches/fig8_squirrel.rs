//! Figure 8: simulator validation against the Squirrel web-cache
//! deployment — total traffic per node over six days (four week days and a
//! weekend, "clearly visible").
//!
//! The real deployment logs are not public; we replay a synthetic workload
//! and machine schedule with the published character (52 machines, 6 days,
//! weekday-daytime request peaks) and print the simulated hourly traffic
//! series. The validation here is the *shape*: daily bumps on week days,
//! quiet weekend, and traffic levels a small corporate deployment would
//! produce.

use apps::squirrel;
use bench::{header, scale, HOUR};
use churn::synth::DAY_US;

fn main() {
    let s = scale();
    header("Figure 8", "Squirrel deployment traffic, simulated", s);
    let points = bench::scenarios()
        .get("fig8_squirrel")
        .expect("registered scenario")
        .expand(s);
    // The scenario point's build is `squirrel::build_run` on `fig8_params`;
    // rebuilding here recovers the offline-skipped request count the cache
    // statistics need (the registry only carries the `RunConfig`).
    let (cfg, skipped_offline) = squirrel::build_run(&bench::fig8_params(s));
    let res = bench::timed_run(&points[0].label, cfg);
    let cache = squirrel::cache_stats(&res, skipped_offline);

    println!();
    println!(
        "cache: served {} hits {} misses {} (hit rate {:.1}%), skipped {}",
        cache.served,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.skipped
    );
    println!(
        "routing: incorrect {} lost {} of {} lookups",
        res.report.incorrect, res.report.lost, res.report.issued
    );

    println!();
    println!("hourly total messages per node per second (trace starts Thursday):");
    let windows = &res.report.windows;
    for (h, w) in windows.iter().enumerate() {
        let total = w.control_per_node_per_sec + w.per_category_per_node_per_sec[5];
        if h % 3 == 0 {
            let day = h / 24;
            let bar = "#".repeat((total * 200.0).min(58.0) as usize);
            println!("  d{day} {:>2}h {total:>7.3} {bar}", h % 24);
        }
    }
    bench::json::write_table(
        &bench::artifact_stem("fig8_squirrel", s),
        &["hour", "msgs_per_node_per_sec"],
        &windows
            .iter()
            .enumerate()
            .map(|(h, w)| {
                let total = w.control_per_node_per_sec + w.per_category_per_node_per_sec[5];
                vec![format!("{h}"), format!("{total}")]
            })
            .collect::<Vec<_>>(),
    );
    // Aggregate by day for the weekday/weekend contrast.
    println!();
    println!("daily mean traffic (msg/s/node):");
    let per_day = (DAY_US / HOUR) as usize;
    for (d, chunk) in windows.chunks(per_day).enumerate() {
        let mean = chunk
            .iter()
            .map(|w| w.control_per_node_per_sec + w.per_category_per_node_per_sec[5])
            .sum::<f64>()
            / chunk.len().max(1) as f64;
        let weekday = ["Thu", "Fri", "Sat", "Sun", "Mon", "Tue"][d.min(5)];
        println!("  day {d} ({weekday}): {mean:.3}");
    }
    println!();
    println!("expected (paper): six days with four visible week-day bumps and a");
    println!("quiet weekend; simulator matches the deployment statistics.");
}
