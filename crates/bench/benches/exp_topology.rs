//! §5.3 "Network topology" (text table): lookup loss, control traffic and
//! RDP for the Gnutella trace on the CorpNet, GATech and Mercator
//! topologies.
//!
//! Expected shape: control traffic nearly identical across topologies
//! (paper: 0.239 / 0.245 / 0.256 msg/s/node); RDP strongly
//! topology-dependent and ordered CorpNet < GATech < Mercator (paper: 1.45 /
//! 1.80 / 2.12); losses ~1e-5 and zero inconsistencies everywhere.

use bench::{header, scale, Scale};
use topology::TopologyKind;

fn main() {
    let s = scale();
    header("Topology table", "Gnutella trace on three topologies", s);
    let topologies: [(&str, TopologyKind); 3] = match s {
        Scale::Full => [
            ("CorpNet", TopologyKind::CorpNet),
            ("GATech", TopologyKind::GaTech),
            ("Mercator", TopologyKind::Mercator),
        ],
        Scale::Quick => [
            ("CorpNet", TopologyKind::CorpNet),
            ("GATech", TopologyKind::GaTechSmall),
            ("Mercator", TopologyKind::Mercator),
        ],
    };
    println!();
    println!(
        "{:>9} | {:>6} | {:>18} | {:>10} | {:>10}",
        "topology", "RDP", "control msg/s/node", "loss", "incorrect"
    );
    for (i, (name, kind)) in topologies.into_iter().enumerate() {
        let trace = bench::gnutella_sweep_trace(s, 30 + i as u64);
        let mut cfg = bench::base_config(s, trace);
        cfg.topology = kind;
        cfg.seed = 4000 + i as u64;
        let res = bench::timed_run(name, cfg);
        println!(
            "{:>9} | {:>6.2} | {:>18.3} | {:>10} | {:>10}",
            name,
            res.report.mean_rdp,
            res.report.control_msgs_per_node_per_sec,
            bench::sci(res.report.loss_rate),
            bench::sci(res.report.incorrect_rate),
        );
    }
    println!();
    println!("expected (paper): loss <1.6e-5 on all; control ~0.24-0.26 on all;");
    println!("RDP 1.45 (CorpNet) / 1.80 (GATech) / 2.12 (Mercator).");
}
