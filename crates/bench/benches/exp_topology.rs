//! §5.3 "Network topology" (text table): lookup loss, control traffic and
//! RDP for the Gnutella trace on the CorpNet, GATech and Mercator
//! topologies.
//!
//! Expected shape: control traffic nearly identical across topologies
//! (paper: 0.239 / 0.245 / 0.256 msg/s/node); RDP strongly
//! topology-dependent and ordered CorpNet < GATech < Mercator (paper: 1.45 /
//! 1.80 / 2.12); losses ~1e-5 and zero inconsistencies everywhere.

use bench::{header, scale};

fn main() {
    let s = scale();
    header("Topology table", "Gnutella trace on three topologies", s);
    let points = bench::scenarios()
        .get("exp_topology")
        .expect("registered scenario")
        .expand(s);
    println!();
    println!(
        "{:>9} | {:>6} | {:>18} | {:>10} | {:>10}",
        "topology", "RDP", "control msg/s/node", "loss", "incorrect"
    );
    for p in &points {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>9} | {:>6.2} | {:>18.3} | {:>10} | {:>10}",
            p.label,
            res.report.mean_rdp,
            res.report.control_msgs_per_node_per_sec,
            bench::sci(res.report.loss_rate),
            bench::sci(res.report.incorrect_rate),
        );
    }
    println!();
    println!("expected (paper): loss <1.6e-5 on all; control ~0.24-0.26 on all;");
    println!("RDP 1.45 (CorpNet) / 1.80 (GATech) / 2.12 (Mercator).");
}
