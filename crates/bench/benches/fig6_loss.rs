//! Figure 6: RDP, control traffic, lookup loss rate, and incorrect delivery
//! rate as a function of the uniform network message loss rate (0..5 %),
//! with the Gnutella trace on GATech.
//!
//! Expected shape: RDP and control traffic rise slightly with loss (extra
//! timeouts/retransmissions and liveness probes); lookup losses stay in the
//! 1e-5..1e-4 band thanks to per-hop acks; incorrect deliveries appear only
//! at the higher loss rates and stay ~1e-5.

use bench::{header, scale};
use harness::scenario::FIG6_LOSS_RATES;

fn main() {
    let s = scale();
    header("Figure 6", "network-loss sweep (Gnutella trace)", s);
    let points = bench::scenarios()
        .get("fig6_loss")
        .expect("registered scenario")
        .expand(s);
    println!();
    println!(
        "{:>6} | {:>6} | {:>18} | {:>10} | {:>10}",
        "loss%", "RDP", "control msg/s/node", "lookup loss", "incorrect"
    );
    let mut rows = Vec::new();
    for (loss, p) in FIG6_LOSS_RATES.into_iter().zip(&points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>6.1} | {:>6.2} | {:>18.3} | {:>10} | {:>10}",
            loss * 100.0,
            res.report.mean_rdp,
            res.report.control_msgs_per_node_per_sec,
            bench::sci(res.report.loss_rate),
            bench::sci(res.report.incorrect_rate),
        );
        rows.push(vec![
            format!("{loss}"),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.report.loss_rate),
            format!("{}", res.report.incorrect_rate),
        ]);
    }
    let fig6_header = [
        "network_loss",
        "rdp",
        "control_per_node_per_sec",
        "lookup_loss",
        "incorrect_rate",
    ];
    let stem = bench::artifact_stem("fig6_loss", s);
    bench::csv::write(&stem, &fig6_header, &rows);
    bench::json::write_table(&stem, &fig6_header, &rows);
    println!();
    println!("expected (paper): lookup loss 1.5e-5 (0%) .. 3.3e-5 (5%);");
    println!("no inconsistencies at <=1% loss, ~1.6e-5 at 5%; RDP and control");
    println!("traffic increase only slightly.");
}
