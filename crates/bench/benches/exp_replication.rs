//! Extension experiment: storage availability under churn with PAST-style
//! leaf-set replication.
//!
//! The paper motivates consistent routing with storage systems (CFS, PAST):
//! a GET only finds a value if routing agrees on the key's root across time.
//! This experiment quantifies the other half of the story — replication on
//! the root's leaf-set neighbours keeps values available when the root
//! itself churns out.
//!
//! Expected shape: unreplicated hit rates degrade markedly under 15-minute
//! sessions; each added replica closes most of the remaining gap (the next
//! root after a failure is almost always the first replica).

use apps::kvstore;
use bench::{header, scale, MIN};
use churn::poisson::{self, PoissonParams};
use harness::{RunConfig, Workload};
use topology::TopologyKind;

fn main() {
    let s = scale();
    header(
        "Replication (extension)",
        "KV availability vs leaf-set replication factor",
        s,
    );
    // One churny run; replication factors are evaluated by post-processing
    // the same delivery log, so the comparison is exactly controlled.
    let dur = 40 * MIN;
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 120.0,
        mean_session_us: 15.0 * 60e6,
        duration_us: dur,
        seed: 31,
    });
    let n_sessions = trace.sessions().len();
    // GETs within 5 minutes of their PUT: the window where root changes are
    // failure-driven (replica takeover) rather than join-driven (which needs
    // value migration the home-store model does not perform).
    let ops = kvstore::generate_ops_with_gap(400, 3, n_sessions, dur, Some(5 * MIN), 32);
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechSmall;
    cfg.warmup_us = 10 * MIN;
    cfg.workload = Workload::Scripted(kvstore::to_script(&ops));
    cfg.record_deliveries = true;
    let res = bench::timed_run("kv-churn", cfg);

    println!();
    println!(
        "15-minute sessions, GETs within 5 min of their PUT, {} ops routed:",
        ops.len()
    );
    println!(
        "{:>9} | {:>9} | {:>9} | {:>9} | {:>8}",
        "replicas", "hits", "misses", "no-put", "hit rate"
    );
    for k in [0usize, 1, 2, 4, 8] {
        let stats = kvstore::evaluate_replicated(&ops, &res.deliveries, k);
        println!(
            "{:>9} | {:>9} | {:>9} | {:>9} | {:>7.1}%",
            k,
            stats.gets_hit,
            stats.gets_missed,
            stats.gets_no_put,
            stats.hit_rate() * 100.0
        );
    }
    println!();
    println!("expected: the first replica closes most of the failure-takeover");
    println!("gap (the new root after a crash is almost always replica #1);");
    println!("the residual misses are join-takeovers, which need the value");
    println!("migration a full PAST implementation performs on join.");
}
