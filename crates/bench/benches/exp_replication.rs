//! Extension experiment: storage availability under churn with PAST-style
//! leaf-set replication.
//!
//! The paper motivates consistent routing with storage systems (CFS, PAST):
//! a GET only finds a value if routing agrees on the key's root across time.
//! This experiment quantifies the other half of the story — replication on
//! the root's leaf-set neighbours keeps values available when the root
//! itself churns out.
//!
//! Expected shape: unreplicated hit rates degrade markedly under 15-minute
//! sessions; each added replica closes most of the remaining gap (the next
//! root after a failure is almost always the first replica).

use apps::kvstore;
use bench::{header, scale};

fn main() {
    let s = scale();
    header(
        "Replication (extension)",
        "KV availability vs leaf-set replication factor",
        s,
    );
    // One churny run; replication factors are evaluated by post-processing
    // the same delivery log, so the comparison is exactly controlled. The
    // op list is needed alongside the `RunConfig`, so this bench uses the
    // registry point's underlying builder directly.
    let (cfg, ops) = bench::replication_setup(0);
    let res = bench::timed_run("kv-churn", cfg);

    println!();
    println!(
        "15-minute sessions, GETs within 5 min of their PUT, {} ops routed:",
        ops.len()
    );
    println!(
        "{:>9} | {:>9} | {:>9} | {:>9} | {:>8}",
        "replicas", "hits", "misses", "no-put", "hit rate"
    );
    for k in [0usize, 1, 2, 4, 8] {
        let stats = kvstore::evaluate_replicated(&ops, &res.deliveries, k);
        println!(
            "{:>9} | {:>9} | {:>9} | {:>9} | {:>7.1}%",
            k,
            stats.gets_hit,
            stats.gets_missed,
            stats.gets_no_put,
            stats.hit_rate() * 100.0
        );
    }
    println!();
    println!("expected: the first replica closes most of the failure-takeover");
    println!("gap (the new root after a crash is almost always replica #1);");
    println!("the residual misses are join-takeovers, which need the value");
    println!("migration a full PAST implementation performs on join.");
}
