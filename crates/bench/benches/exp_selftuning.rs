//! §5.3 "self-tuning" (text): tuning the active-probing period to a target
//! raw loss rate.
//!
//! The paper measures, *without per-hop acks*, a lookup loss rate of 5.3 %
//! when tuning to Lr = 5 % and 1.2 % when tuning to 1 %, with control
//! traffic 2.6x higher at the tighter target.

use bench::{header, scale};
use harness::scenario::SELFTUNING_TARGETS;

fn main() {
    let s = scale();
    header(
        "Self-tuning",
        "achieved raw loss vs target (per-hop acks off)",
        s,
    );
    let points = bench::scenarios()
        .get("exp_selftuning")
        .expect("registered scenario")
        .expand(s);
    println!();
    println!(
        "{:>8} | {:>10} | {:>18} | {:>14}",
        "target", "loss", "control msg/s/node", "mean Trt (s)"
    );
    let mut controls = Vec::new();
    for (target, p) in SELFTUNING_TARGETS.into_iter().zip(&points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>7.0}% | {:>10} | {:>18.3} | {:>14.1}",
            target * 100.0,
            bench::sci(res.report.loss_rate),
            res.report.control_msgs_per_node_per_sec,
            res.mean_t_rt_us / 1e6,
        );
        controls.push(res.report.control_msgs_per_node_per_sec);
    }
    println!();
    println!(
        "control traffic ratio 1% / 5% target: {:.2}x (paper: 2.6x)",
        controls[1] / controls[0].max(1e-9)
    );
    println!("expected (paper): achieved loss ~5.3% at the 5% target and ~1.2%");
    println!("at the 1% target; the tighter target probes much faster.");
}
