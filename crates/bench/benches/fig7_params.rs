//! Figure 7: the effect of the leaf-set size `l` on control traffic and RDP
//! (left, centre) and of the digit width `b` on RDP (right), with the
//! Gnutella trace.
//!
//! Expected shape: control traffic is nearly flat in `l` (heartbeats go to
//! one neighbour regardless of `l`; the paper reports +7 % from l=16 to 32);
//! RDP decreases with `l`; RDP rises steeply as `b` shrinks (more hops)
//! while control traffic changes little (~0.05 msg/s/node from b=4 to b=1).

use bench::{header, scale};
use harness::scenario::{FIG7_DIGIT_WIDTHS, FIG7_LEAF_SET_SIZES};

fn main() {
    let s = scale();
    header(
        "Figure 7",
        "parameter sweeps: leaf-set size l and digit width b",
        s,
    );
    // The scenario's points are the l sweep followed by the b sweep.
    let points = bench::scenarios()
        .get("fig7_params")
        .expect("registered scenario")
        .expand(s);
    let (l_points, b_points) = points.split_at(FIG7_LEAF_SET_SIZES.len());

    let mut rows = Vec::new();
    println!();
    println!("--- left/centre: leaf-set size l ---");
    println!(
        "{:>4} | {:>18} | {:>6} | {:>6}",
        "l", "control msg/s/node", "RDP", "hops"
    );
    for (l, p) in FIG7_LEAF_SET_SIZES.into_iter().zip(l_points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>4} | {:>18.3} | {:>6.2} | {:>6.2}",
            l, res.report.control_msgs_per_node_per_sec, res.report.mean_rdp, res.report.mean_hops
        );
        rows.push(vec![
            "l".to_string(),
            format!("{l}"),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.mean_hops),
        ]);
    }

    println!();
    println!("--- right: digit width b ---");
    println!(
        "{:>4} | {:>6} | {:>6} | {:>18}",
        "b", "RDP", "hops", "control msg/s/node"
    );
    for (b, p) in FIG7_DIGIT_WIDTHS.into_iter().zip(b_points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!(
            "{:>4} | {:>6.2} | {:>6.2} | {:>18.3}",
            b, res.report.mean_rdp, res.report.mean_hops, res.report.control_msgs_per_node_per_sec
        );
        rows.push(vec![
            "b".to_string(),
            format!("{b}"),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.mean_hops),
        ]);
    }
    bench::json::write_table(
        &bench::artifact_stem("fig7_params", s),
        &["sweep", "value", "control_per_node_per_sec", "rdp", "hops"],
        &rows,
    );
    println!();
    println!("expected (paper): control traffic +7% from l=16 to l=32; RDP");
    println!("decreasing in l; RDP rising sharply as b decreases; control");
    println!("traffic only ~0.05 msg/s/node lower at b=1 than b=4.");
}
