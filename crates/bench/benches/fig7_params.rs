//! Figure 7: the effect of the leaf-set size `l` on control traffic and RDP
//! (left, centre) and of the digit width `b` on RDP (right), with the
//! Gnutella trace.
//!
//! Expected shape: control traffic is nearly flat in `l` (heartbeats go to
//! one neighbour regardless of `l`; the paper reports +7 % from l=16 to 32);
//! RDP decreases with `l`; RDP rises steeply as `b` shrinks (more hops)
//! while control traffic changes little (~0.05 msg/s/node from b=4 to b=1).

use bench::{header, scale};

fn main() {
    let s = scale();
    header(
        "Figure 7",
        "parameter sweeps: leaf-set size l and digit width b",
        s,
    );

    let mut rows = Vec::new();
    println!();
    println!("--- left/centre: leaf-set size l ---");
    println!(
        "{:>4} | {:>18} | {:>6} | {:>6}",
        "l", "control msg/s/node", "RDP", "hops"
    );
    for (i, l) in [8usize, 16, 32, 48, 64].iter().enumerate() {
        let trace = bench::gnutella_sweep_trace(s, 10 + i as u64);
        let mut cfg = bench::base_config(s, trace);
        cfg.protocol.leaf_set_size = *l;
        cfg.seed = 2000 + i as u64;
        let res = bench::timed_run(&format!("l={l}"), cfg);
        println!(
            "{:>4} | {:>18.3} | {:>6.2} | {:>6.2}",
            l, res.report.control_msgs_per_node_per_sec, res.report.mean_rdp, res.report.mean_hops
        );
        rows.push(vec![
            "l".to_string(),
            format!("{l}"),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.mean_hops),
        ]);
    }

    println!();
    println!("--- right: digit width b ---");
    println!(
        "{:>4} | {:>6} | {:>6} | {:>18}",
        "b", "RDP", "hops", "control msg/s/node"
    );
    for (i, b) in [1u8, 2, 3, 4, 5].iter().enumerate() {
        let trace = bench::gnutella_sweep_trace(s, 20 + i as u64);
        let mut cfg = bench::base_config(s, trace);
        cfg.protocol.b = *b;
        cfg.seed = 3000 + i as u64;
        let res = bench::timed_run(&format!("b={b}"), cfg);
        println!(
            "{:>4} | {:>6.2} | {:>6.2} | {:>18.3}",
            b, res.report.mean_rdp, res.report.mean_hops, res.report.control_msgs_per_node_per_sec
        );
        rows.push(vec![
            "b".to_string(),
            format!("{b}"),
            format!("{}", res.report.control_msgs_per_node_per_sec),
            format!("{}", res.report.mean_rdp),
            format!("{}", res.report.mean_hops),
        ]);
    }
    bench::json::write_table(
        "fig7_params",
        &["sweep", "value", "control_per_node_per_sec", "rdp", "hops"],
        &rows,
    );
    println!();
    println!("expected (paper): control traffic +7% from l=16 to l=32; RDP");
    println!("decreasing in l; RDP rising sharply as b decreases; control");
    println!("traffic only ~0.05 msg/s/node lower at b=1 than b=4.");
}
