//! §5.3 "Active probing and per-hop acks" (text): the reliability/delay
//! contribution of each technique.
//!
//! Expected shape (paper): 32 % of lookups lost with neither technique;
//! ~2.8e-5 loss with acks only; ~1.6e-5 with both; acks-only RDP is 17 %
//! higher than both at 0.01 lookups/s/node and 61 % higher at 0.001;
//! probing-only cannot reach 1e-5 losses.

use bench::{header, scale};
use harness::Workload;

fn main() {
    let s = scale();
    header(
        "Ablation",
        "per-hop acks and active probing on/off (Gnutella trace)",
        s,
    );

    println!();
    println!(
        "{:>22} | {:>10} | {:>6} | {:>18}",
        "configuration", "loss", "RDP", "control msg/s/node"
    );
    let combos = [
        ("neither", false, false),
        ("probing only", false, true),
        ("acks only", true, false),
        ("both (base)", true, true),
    ];
    for (i, (name, acks, probing)) in combos.into_iter().enumerate() {
        let trace = bench::gnutella_sweep_trace(s, 40 + i as u64);
        let mut cfg = bench::base_config(s, trace);
        cfg.protocol.per_hop_acks = acks;
        cfg.protocol.active_rt_probing = probing;
        cfg.seed = 5000 + i as u64;
        let res = bench::timed_run(name, cfg);
        println!(
            "{:>22} | {:>10} | {:>6.2} | {:>18.3}",
            name,
            bench::sci(res.report.loss_rate),
            res.report.mean_rdp,
            res.report.control_msgs_per_node_per_sec,
        );
    }

    println!();
    println!("--- delay contribution of probing at low application traffic ---");
    println!(
        "{:>22} | {:>10} | {:>6}",
        "configuration", "lookups/s", "RDP"
    );
    for (i, (name, probing, rate)) in [
        ("acks only", false, 0.01),
        ("both", true, 0.01),
        ("acks only", false, 0.001),
        ("both", true, 0.001),
    ]
    .into_iter()
    .enumerate()
    {
        let trace = bench::gnutella_sweep_trace(s, 50 + i as u64);
        let mut cfg = bench::base_config(s, trace);
        cfg.protocol.active_rt_probing = probing;
        cfg.workload = Workload::Poisson {
            rate_per_node_per_sec: rate,
        };
        cfg.seed = 6000 + i as u64;
        let res = bench::timed_run(&format!("{name}@{rate}"), cfg);
        println!("{:>22} | {:>10} | {:>6.2}", name, rate, res.report.mean_rdp);
    }
    println!();
    println!("expected (paper): neither -> ~32% loss; acks-only ~2.8e-5; both");
    println!("~1.6e-5; acks-only RDP +17% at 0.01 lookups/s and +61% at 0.001.");
}
