//! §5.3 "Active probing and per-hop acks" (text): the reliability/delay
//! contribution of each technique.
//!
//! Expected shape (paper): 32 % of lookups lost with neither technique;
//! ~2.8e-5 loss with acks only; ~1.6e-5 with both; acks-only RDP is 17 %
//! higher than both at 0.01 lookups/s/node and 61 % higher at 0.001;
//! probing-only cannot reach 1e-5 losses.

use bench::{header, scale};
use harness::scenario::{ABLATION_COMBOS, ABLATION_RATES};

fn main() {
    let s = scale();
    header(
        "Ablation",
        "per-hop acks and active probing on/off (Gnutella trace)",
        s,
    );
    // The scenario's points are the four on/off combinations followed by the
    // four low-traffic delay-contribution runs.
    let points = bench::scenarios()
        .get("exp_ablation")
        .expect("registered scenario")
        .expand(s);
    let (combo_points, rate_points) = points.split_at(ABLATION_COMBOS.len());

    println!();
    println!(
        "{:>22} | {:>10} | {:>6} | {:>18}",
        "configuration", "loss", "RDP", "control msg/s/node"
    );
    for ((name, _, _), p) in ABLATION_COMBOS.into_iter().zip(combo_points) {
        let res = bench::timed_run(name, (p.build)(0));
        println!(
            "{:>22} | {:>10} | {:>6.2} | {:>18.3}",
            name,
            bench::sci(res.report.loss_rate),
            res.report.mean_rdp,
            res.report.control_msgs_per_node_per_sec,
        );
    }

    println!();
    println!("--- delay contribution of probing at low application traffic ---");
    println!(
        "{:>22} | {:>10} | {:>6}",
        "configuration", "lookups/s", "RDP"
    );
    for ((name, _, rate), p) in ABLATION_RATES.into_iter().zip(rate_points) {
        let res = bench::timed_run(&p.label, (p.build)(0));
        println!("{:>22} | {:>10} | {:>6.2}", name, rate, res.report.mean_rdp);
    }
    println!();
    println!("expected (paper): neither -> ~32% loss; acks-only ~2.8e-5; both");
    println!("~1.6e-5; acks-only RDP +17% at 0.01 lookups/s and +61% at 0.001.");
}
