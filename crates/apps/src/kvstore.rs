//! A distributed hash table (key-value store) on the MSPastry lookup
//! primitive.
//!
//! PUT routes the value to the key's root, which stores it; GET routes to
//! the root and succeeds when the root holds the value. This is the
//! storage model of CFS/PAST-style systems the paper cites as motivation:
//! consistent routing is what makes a GET find the node the PUT stored at.
//! Without replication, a value is lost when its home node fails or a closer
//! node joins; the evaluation quantifies exactly that, which is why real
//! systems replicate across the leaf set.

use crate::hash::object_key;
use harness::{DeliveryRecord, ScriptedLookup};
use mspastry::Key;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Store `name`'s value at its root.
    Put {
        /// Application-level key name.
        name: u64,
    },
    /// Retrieve `name`'s value from its root.
    Get {
        /// Application-level key name.
        name: u64,
    },
}

impl KvOp {
    /// The application key name.
    pub fn name(&self) -> u64 {
        match *self {
            KvOp::Put { name } | KvOp::Get { name } => name,
        }
    }

    /// The overlay key the operation routes to.
    pub fn key(&self) -> Key {
        object_key(self.name())
    }
}

/// A timed, client-attributed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// Issue time, trace-relative microseconds.
    pub at_us: u64,
    /// Issuing session index.
    pub session: usize,
    /// The operation.
    pub op: KvOp,
}

/// Generates a PUT-then-GET workload: every name is PUT once, then GET
/// repeatedly at random later times by random clients.
pub fn generate_ops(
    names: u64,
    gets_per_name: u64,
    sessions: usize,
    duration_us: u64,
    seed: u64,
) -> Vec<TimedOp> {
    generate_ops_with_gap(names, gets_per_name, sessions, duration_us, None, seed)
}

/// Like [`generate_ops`], bounding how long after its PUT a GET may fire.
///
/// Unbounded gaps measure long-term durability, where root churn from
/// *joins* dominates and only value migration (which the home-store model
/// does not perform) would help; bounded gaps isolate the failure-takeover
/// behaviour that leaf-set replication addresses.
pub fn generate_ops_with_gap(
    names: u64,
    gets_per_name: u64,
    sessions: usize,
    duration_us: u64,
    max_get_delay_us: Option<u64>,
    seed: u64,
) -> Vec<TimedOp> {
    assert!(sessions > 0 && duration_us > 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for name in 0..names {
        let put_at = rng.gen_range(0..duration_us / 2);
        ops.push(TimedOp {
            at_us: put_at,
            session: rng.gen_range(0..sessions),
            op: KvOp::Put { name },
        });
        let get_horizon = match max_get_delay_us {
            Some(gap) => (put_at + gap).min(duration_us),
            None => duration_us,
        };
        for _ in 0..gets_per_name {
            ops.push(TimedOp {
                at_us: rng.gen_range(put_at + 1..get_horizon.max(put_at + 2)),
                session: rng.gen_range(0..sessions),
                op: KvOp::Get { name },
            });
        }
    }
    ops.sort_by_key(|o| o.at_us);
    ops
}

/// Encodes operations as scripted lookups. The payload encodes
/// `op_index * 2 + is_get` so results can be correlated.
pub fn to_script(ops: &[TimedOp]) -> Vec<ScriptedLookup> {
    ops.iter()
        .enumerate()
        .map(|(i, o)| ScriptedLookup {
            at_us: o.at_us,
            session: o.session,
            key: o.op.key(),
            payload: (i as u64) * 2 + matches!(o.op, KvOp::Get { .. }) as u64,
        })
        .collect()
}

/// Outcome statistics of a key-value run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// PUTs that reached a home node.
    pub puts_stored: u64,
    /// GETs that reached a node.
    pub gets_routed: u64,
    /// GETs that found the value (same node the PUT stored at).
    pub gets_hit: u64,
    /// GETs that reached a node without the value (home changed or failed).
    pub gets_missed: u64,
    /// GETs for names whose PUT never reached the overlay (the putting
    /// client was down); excluded from the availability rate.
    pub gets_no_put: u64,
}

impl KvStats {
    /// Fraction of routed GETs that found their value, among names that were
    /// actually stored.
    pub fn hit_rate(&self) -> f64 {
        let eligible = self.gets_hit + self.gets_missed;
        if eligible == 0 {
            0.0
        } else {
            self.gets_hit as f64 / eligible as f64
        }
    }
}

/// Evaluates deliveries against the operation list with no replication:
/// each value lives only on the session its PUT was delivered at.
pub fn evaluate(ops: &[TimedOp], deliveries: &[DeliveryRecord]) -> KvStats {
    evaluate_replicated(ops, deliveries, 0)
}

/// Evaluates deliveries with PAST-style leaf-set replication: a PUT stores
/// the value on the root *and* on its `replicas` closest leaf-set members
/// (the `replica_sessions` the root reported at delivery time). A GET hits
/// when it is delivered at any current holder — which is exactly what makes
/// the value survive the root's failure: the new root is one of the
/// replicas.
pub fn evaluate_replicated(
    ops: &[TimedOp],
    deliveries: &[DeliveryRecord],
    replicas: usize,
) -> KvStats {
    // Deliveries are time-ordered by construction of the simulation.
    let mut store: HashMap<u64, Vec<usize>> = HashMap::new(); // name -> holder sessions
    let mut stats = KvStats {
        puts_stored: 0,
        gets_routed: 0,
        gets_hit: 0,
        gets_missed: 0,
        gets_no_put: 0,
    };
    for d in deliveries {
        let idx = (d.payload / 2) as usize;
        let is_get = d.payload % 2 == 1;
        let Some(op) = ops.get(idx) else {
            continue;
        };
        let name = op.op.name();
        if is_get {
            stats.gets_routed += 1;
            match store.get(&name) {
                Some(h) if h.contains(&d.session) => stats.gets_hit += 1,
                Some(_) => stats.gets_missed += 1,
                None => stats.gets_no_put += 1,
            }
        } else {
            stats.puts_stored += 1;
            let mut holders = vec![d.session];
            holders.extend(d.replica_sessions.iter().copied().take(replicas));
            store.insert(name, holders);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspastry::Id;

    #[test]
    fn ops_are_sorted_and_puts_precede_their_gets() {
        let ops = generate_ops(50, 3, 10, 1_000_000, 1);
        assert_eq!(ops.len(), 200);
        for w in ops.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        let mut put_time = HashMap::new();
        for o in &ops {
            match o.op {
                KvOp::Put { name } => {
                    put_time.insert(name, o.at_us);
                }
                KvOp::Get { name } => {
                    assert!(o.at_us > put_time[&name]);
                }
            }
        }
    }

    #[test]
    fn evaluate_matches_home_nodes() {
        let ops = vec![
            TimedOp {
                at_us: 10,
                session: 0,
                op: KvOp::Put { name: 7 },
            },
            TimedOp {
                at_us: 20,
                session: 1,
                op: KvOp::Get { name: 7 },
            },
            TimedOp {
                at_us: 30,
                session: 1,
                op: KvOp::Get { name: 7 },
            },
        ];
        let key = object_key(7);
        let deliveries = vec![
            DeliveryRecord {
                at_us: 11,
                session: 5,
                key,
                payload: 0, // put, op 0
                correct: true,
                issued_at_us: 10,
                hops: 1,
                replica_sessions: vec![6, 7],
            },
            DeliveryRecord {
                at_us: 21,
                session: 5,
                key,
                payload: 3, // get, op 1 → same home: hit
                correct: true,
                issued_at_us: 20,
                hops: 1,
                replica_sessions: vec![],
            },
            DeliveryRecord {
                at_us: 31,
                session: 6,
                key,
                payload: 5, // get, op 2 → different node: miss
                correct: true,
                issued_at_us: 30,
                hops: 1,
                replica_sessions: vec![],
            },
        ];
        let stats = evaluate(&ops, &deliveries);
        assert_eq!(stats.puts_stored, 1);
        assert_eq!(stats.gets_hit, 1);
        assert_eq!(stats.gets_missed, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        // With one replica the second GET (delivered at session 6, the first
        // replica) becomes a hit.
        let stats = evaluate_replicated(&ops, &deliveries, 1);
        assert_eq!(stats.gets_hit, 2);
        assert_eq!(stats.gets_missed, 0);
    }

    #[test]
    fn script_payload_encoding_round_trips() {
        let ops = generate_ops(5, 1, 2, 1000, 2);
        let script = to_script(&ops);
        for (i, s) in script.iter().enumerate() {
            assert_eq!((s.payload / 2) as usize, i);
            assert_eq!(s.payload % 2 == 1, matches!(ops[i].op, KvOp::Get { .. }));
            assert_ne!(s.key, Id(0));
        }
    }
}
