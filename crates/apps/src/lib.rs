#![warn(missing_docs)]
//! Applications built on the MSPastry lookup primitive.
//!
//! * [`squirrel`] — the decentralized cooperative web cache used by the
//!   paper's simulator-validation experiment (Figure 8), with a synthetic
//!   web workload ([`web_workload`]) exhibiting the weekday/weekend pattern
//!   of the real deployment.
//! * [`kvstore`] — a CFS/PAST-style distributed hash table demonstrating why
//!   consistent routing matters for storage applications.
//! * [`hash`] — 128-bit object-to-key hashing (the simulation stand-in for
//!   Squirrel's SHA-1 of the URL).
//!
//! # Example
//!
//! ```no_run
//! use apps::squirrel::{run_squirrel, SquirrelParams};
//!
//! let result = run_squirrel(&SquirrelParams::quick());
//! println!(
//!     "hit rate {:.2}, incorrect deliveries {}",
//!     result.cache.hit_rate(),
//!     result.run.report.incorrect
//! );
//! ```

pub mod hash;
pub mod kvstore;
pub mod squirrel;
pub mod web_workload;
