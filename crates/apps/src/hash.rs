//! 128-bit object-key hashing.
//!
//! Squirrel hashes object URLs with SHA-1 to obtain keys. A cryptographic
//! hash is overkill for the simulation (we only need uniform dispersion into
//! the identifier space), so we use two rounds of the SplitMix64 finaliser —
//! a well-known statistically strong mixer — over the object identifier.
//! DESIGN.md records this substitution.

use mspastry::{Id, Key};

/// SplitMix64 finaliser.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes an object identifier to a 128-bit overlay key.
pub fn object_key(object_id: u64) -> Key {
    let hi = mix64(object_id);
    let lo = mix64(object_id ^ 0xdead_beef_cafe_f00d);
    Id(((hi as u128) << 64) | lo as u128)
}

/// Hashes an arbitrary byte string (e.g. a URL) to a 128-bit overlay key.
pub fn url_key(url: &str) -> Key {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in url.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV-1a step
    }
    object_key(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        assert_eq!(object_key(1), object_key(1));
        assert_ne!(object_key(1), object_key(2));
        assert_eq!(url_key("http://a/"), url_key("http://a/"));
        assert_ne!(url_key("http://a/"), url_key("http://b/"));
    }

    #[test]
    fn keys_disperse_across_the_ring() {
        // Bucket the top 4 bits of 4096 consecutive object ids; every bucket
        // should be populated roughly evenly.
        let mut buckets = [0u32; 16];
        for i in 0..4096u64 {
            let k = object_key(i);
            buckets[(k.0 >> 124) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((150..=370).contains(&c), "bucket {i} has {c}");
        }
    }
}
