//! Synthetic web-request workload for the Squirrel validation experiment.
//!
//! The paper validates its simulator against logs of a real Squirrel
//! deployment: 52 machines at Microsoft Research Cambridge over six days (4
//! week days and a weekend, "clearly visible" in the traffic). The real logs
//! are not public (DESIGN.md substitution #3), so this module generates a
//! workload with the same character: a fixed client population, Zipf-like
//! object popularity, and a strong weekday-daytime request-rate profile that
//! goes quiet on the weekend.

use crate::hash::object_key;
use churn::synth::DAY_US;
use harness::ScriptedLookup;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the web workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebWorkloadParams {
    /// Number of client machines (paper deployment: 52).
    pub clients: usize,
    /// Workload horizon, microseconds (paper: 6 days starting Thursday
    /// morning: 4 week days + a weekend).
    pub duration_us: u64,
    /// Day-of-week of day 0 (0 = Monday ... 6 = Sunday). The paper's log
    /// starts on a Thursday.
    pub start_weekday: usize,
    /// Mean requests per client per second at the weekday daytime peak.
    pub peak_rate_per_client: f64,
    /// Number of distinct web objects.
    pub objects: usize,
    /// Zipf exponent of object popularity (~0.8 for web traffic).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebWorkloadParams {
    fn default() -> Self {
        WebWorkloadParams {
            clients: 52,
            duration_us: 6 * DAY_US,
            start_weekday: 3, // Thursday
            peak_rate_per_client: 0.05,
            objects: 20_000,
            zipf_s: 0.8,
            seed: 777,
        }
    }
}

/// One generated web request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebRequest {
    /// Request time, microseconds from workload start.
    pub at_us: u64,
    /// Requesting client index (`0..clients`).
    pub client: usize,
    /// Requested object identifier.
    pub object: u64,
}

/// The weekday/daytime activity profile in `[0, 1]`.
pub fn activity(params: &WebWorkloadParams, t_us: u64) -> f64 {
    let day_idx = (t_us / DAY_US) as usize;
    let weekday = (params.start_weekday + day_idx) % 7;
    let weekend = weekday >= 5;
    let tod = (t_us % DAY_US) as f64 / DAY_US as f64;
    // Office-hours bump centred at 14:00 with a wide plateau.
    let hours = (-((tod - 0.58) * (tod - 0.58)) / 0.018).exp();
    let base = if weekend { 0.06 } else { 0.15 };
    let peak = if weekend { 0.12 } else { 1.0 };
    base + (peak - base) * hours
}

/// Generates the request list, sorted by time.
pub fn generate(params: &WebWorkloadParams) -> Vec<WebRequest> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    // Zipf sampling by inverse-CDF over precomputed cumulative weights.
    let mut cum = Vec::with_capacity(params.objects);
    let mut total = 0.0;
    for rank in 1..=params.objects {
        total += 1.0 / (rank as f64).powf(params.zipf_s);
        cum.push(total);
    }
    let mut requests = Vec::new();
    let step = 60_000_000u64; // 1 minute
    let mut t = 0;
    while t < params.duration_us {
        let rate = params.peak_rate_per_client * activity(params, t) * params.clients as f64;
        let expected = rate * step as f64 / 1e6;
        let n = churn::synth::poisson(&mut rng, expected);
        for _ in 0..n {
            let at_us = t + rng.gen_range(0..step);
            let client = rng.gen_range(0..params.clients);
            let u: f64 = rng.gen_range(0.0..total);
            let object = cum.partition_point(|&c| c < u) as u64;
            requests.push(WebRequest {
                at_us,
                client,
                object,
            });
        }
        t += step;
    }
    requests.sort_by_key(|r| r.at_us);
    requests
}

/// Converts requests into the harness's scripted-lookup workload. The lookup
/// payload carries the object id so cache statistics can be computed from the
/// delivery records.
pub fn to_script(requests: &[WebRequest]) -> Vec<ScriptedLookup> {
    requests
        .iter()
        .map(|r| ScriptedLookup {
            at_us: r.at_us,
            session: r.client,
            key: object_key(r.object),
            payload: r.object,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> WebWorkloadParams {
        WebWorkloadParams {
            clients: 10,
            duration_us: 2 * DAY_US,
            objects: 500,
            ..Default::default()
        }
    }

    #[test]
    fn requests_are_sorted_and_in_range() {
        let p = quick();
        let reqs = generate(&p);
        assert!(!reqs.is_empty());
        for w in reqs.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        for r in &reqs {
            assert!(r.client < p.clients);
            assert!((r.object as usize) < p.objects);
            assert!(r.at_us < p.duration_us);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let reqs = generate(&quick());
        let top: usize = reqs.iter().filter(|r| r.object < 10).count();
        // With Zipf(0.8) over 500 objects, the top-10 objects draw far more
        // than the uniform 2 % share.
        assert!(
            top as f64 / reqs.len() as f64 > 0.08,
            "top-10 share {}",
            top as f64 / reqs.len() as f64
        );
    }

    #[test]
    fn weekday_peaks_dominate_weekends() {
        let p = WebWorkloadParams {
            start_weekday: 3, // Thu; days 2,3 (Sat, Sun) are the weekend
            ..quick()
        };
        let p6 = WebWorkloadParams {
            duration_us: 4 * DAY_US,
            ..p
        };
        let reqs = generate(&p6);
        let day = |i: u64| reqs.iter().filter(|r| r.at_us / DAY_US == i).count() as f64;
        let thursday = day(0);
        let saturday = day(2);
        assert!(
            thursday > 3.0 * saturday,
            "thursday {thursday} vs saturday {saturday}"
        );
    }

    #[test]
    fn activity_profile_bounds() {
        let p = quick();
        for t in (0..p.duration_us).step_by(3_600_000_000) {
            let a = activity(&p, t);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn script_round_trips_object_ids() {
        let reqs = generate(&quick());
        let script = to_script(&reqs);
        assert_eq!(script.len(), reqs.len());
        for (s, r) in script.iter().zip(&reqs) {
            assert_eq!(s.payload, r.object);
            assert_eq!(s.key, object_key(r.object));
            assert_eq!(s.session, r.client);
        }
    }
}
