//! Squirrel: a decentralized peer-to-peer web cache on MSPastry (§5.3.1).
//!
//! Each participating desktop runs a proxy; web requests are redirected to
//! the proxy, which hashes the object URL to a key and routes a lookup
//! through MSPastry. The key's root node is responsible for caching the
//! object (the paper's *home-store* model): the first request for an object
//! is a miss (fetched from the origin server), subsequent requests hit the
//! home node's cache while the same node remains the key's root.
//!
//! The paper validates its simulator by replaying six days of deployment
//! logs (52 machines). We reproduce the experiment with a synthetic workload
//! and machine up/down schedule of the same shape (DESIGN.md substitution
//! #3) and compare the simulated traffic time series.

use crate::web_workload::{self, WebWorkloadParams};
use churn::synth::DAY_US;
use churn::{Session, Trace};
use harness::{run, RunConfig, RunResult, ScriptedLookup, Workload};
use mspastry::Config;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use topology::TopologyKind;

/// Parameters of a Squirrel deployment simulation.
#[derive(Debug, Clone)]
pub struct SquirrelParams {
    /// The web workload.
    pub web: WebWorkloadParams,
    /// Mean machine uptime, microseconds (corporate desktops: ~37.7 h).
    pub mean_up_us: f64,
    /// Mean machine downtime between sessions, microseconds.
    pub mean_down_us: f64,
    /// Protocol configuration.
    pub protocol: Config,
    /// Topology (the deployment ran on a corporate network).
    pub topology: TopologyKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SquirrelParams {
    fn default() -> Self {
        SquirrelParams {
            web: WebWorkloadParams::default(),
            mean_up_us: 37.7 * 3600.0 * 1e6,
            mean_down_us: 2.0 * 3600.0 * 1e6,
            protocol: Config::default(),
            topology: TopologyKind::CorpNetTiny,
            seed: 4242,
        }
    }
}

impl SquirrelParams {
    /// A fast preset: 20 machines, 1 day.
    pub fn quick() -> Self {
        SquirrelParams {
            web: WebWorkloadParams {
                clients: 20,
                duration_us: DAY_US,
                objects: 2_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Cache statistics of a Squirrel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Requests that reached a home node.
    pub served: u64,
    /// Requests served from a warm home-node cache.
    pub hits: u64,
    /// Requests that had to fetch from the origin server.
    pub misses: u64,
    /// Requests skipped because the client machine was down.
    pub skipped: u64,
}

impl CacheStats {
    /// Cache hit rate among served requests.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hits as f64 / self.served as f64
        }
    }
}

/// Result of a Squirrel simulation.
#[derive(Debug)]
pub struct SquirrelResult {
    /// The underlying overlay run (metrics, traffic series, …).
    pub run: RunResult,
    /// Web-cache statistics.
    pub cache: CacheStats,
}

/// Per-machine `(up_start, up_end, session_index)` uptime intervals.
pub type MachineIntervals = Vec<Vec<(u64, u64, usize)>>;

/// Builds the machine up/down schedule: each client machine alternates
/// exponential up and down periods; every up period is one overlay session.
/// Returns the churn trace plus, per machine, its `(up_start, up_end,
/// session_index)` intervals.
pub fn machine_schedule(
    machines: usize,
    duration_us: u64,
    mean_up_us: f64,
    mean_down_us: f64,
    seed: u64,
) -> (Trace, MachineIntervals) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sessions = Vec::new();
    let mut schedule = vec![Vec::new(); machines];
    let exp = |rng: &mut SmallRng, mean: f64| {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (-mean * u.ln()).max(1.0) as u64
    };
    for (m, sched) in schedule.iter_mut().enumerate() {
        let mut t = 0u64;
        // Start machines mid-uptime so the overlay exists on day one.
        let mut up = t + exp(&mut rng, mean_up_us / 2.0);
        loop {
            let idx = sessions.len();
            sessions.push(Session {
                arrive_us: t,
                depart_us: up,
            });
            sched.push((t, up, idx));
            if up >= duration_us {
                break;
            }
            t = up + exp(&mut rng, mean_down_us);
            if t >= duration_us {
                break;
            }
            up = t + exp(&mut rng, mean_up_us);
        }
        let _ = m;
    }
    // `Trace::new` sorts its sessions; remap the schedule's indices to the
    // post-sort positions so scripted requests address the right session.
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    order.sort_by_key(|&i| sessions[i]);
    let mut post_sort_index = vec![0usize; sessions.len()];
    for (new_idx, &orig_idx) in order.iter().enumerate() {
        post_sort_index[orig_idx] = new_idx;
    }
    for sched in &mut schedule {
        for entry in sched {
            entry.2 = post_sort_index[entry.2];
        }
    }
    (
        Trace::new("squirrel-machines", duration_us, sessions),
        schedule,
    )
}

/// Builds the complete run configuration of a Squirrel simulation — machine
/// schedule, web workload mapped onto machine sessions, protocol and
/// topology — plus the count of requests that never reach the overlay
/// because their machine is down at request time.
///
/// Fully deterministic in `params`; running the returned configuration with
/// [`harness::run`] and post-processing with [`cache_stats`] is exactly
/// [`run_squirrel`].
pub fn build_run(params: &SquirrelParams) -> (RunConfig, u64) {
    let requests = web_workload::generate(&params.web);
    let (trace, schedule) = machine_schedule(
        params.web.clients,
        params.web.duration_us,
        params.mean_up_us,
        params.mean_down_us,
        params.seed ^ 0x51,
    );
    // Map each request to the session of its machine that is up at request
    // time; requests while the machine is down never reach the overlay.
    let mut script: Vec<ScriptedLookup> = Vec::with_capacity(requests.len());
    let mut skipped = 0u64;
    let raw = web_workload::to_script(&requests);
    for (req, s) in requests.iter().zip(raw) {
        let session = schedule[req.client]
            .iter()
            .find(|&&(a, d, _)| a <= req.at_us && req.at_us < d)
            .map(|&(_, _, idx)| idx);
        match session {
            Some(idx) => script.push(ScriptedLookup { session: idx, ..s }),
            None => skipped += 1,
        }
    }

    let mut cfg = RunConfig::new(trace);
    cfg.protocol = params.protocol.clone();
    cfg.topology = params.topology.clone();
    cfg.workload = Workload::Scripted(script);
    cfg.record_deliveries = true;
    cfg.seed = params.seed;
    cfg.metrics_window_us = 3600 * 1_000_000; // hourly series, as in Fig. 8
    (cfg, skipped)
}

/// Computes home-store cache statistics from a finished run:
/// (home session, object) pairs that have been fetched once are warm; a
/// session's cache dies with the session, and a root change moves requests
/// to a cold home node. `skipped_offline` is the second member of
/// [`build_run`]'s result.
pub fn cache_stats(run_result: &RunResult, skipped_offline: u64) -> CacheStats {
    let mut warm: HashSet<(usize, u64)> = HashSet::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for d in &run_result.deliveries {
        if warm.insert((d.session, d.payload)) {
            misses += 1;
        } else {
            hits += 1;
        }
    }
    CacheStats {
        served: hits + misses,
        hits,
        misses,
        skipped: skipped_offline + run_result.skipped_scripted,
    }
}

/// Runs the Squirrel deployment simulation.
pub fn run_squirrel(params: &SquirrelParams) -> SquirrelResult {
    let (cfg, skipped) = build_run(params);
    let run_result = run(cfg);
    SquirrelResult {
        cache: cache_stats(&run_result, skipped),
        run: run_result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sessions_alternate_and_cover() {
        let (trace, schedule) = machine_schedule(5, 3 * DAY_US, 30.0 * 3600e6, 3600e6, 1);
        assert_eq!(schedule.len(), 5);
        for sched in &schedule {
            assert!(!sched.is_empty());
            for w in sched.windows(2) {
                assert!(w[0].1 <= w[1].0, "up periods must not overlap");
            }
        }
        assert!(trace.sessions().len() >= 5);
    }

    #[test]
    fn squirrel_serves_requests_with_reasonable_hit_rate() {
        let mut p = SquirrelParams::quick();
        p.web.duration_us = DAY_US / 2;
        let res = run_squirrel(&p);
        assert!(res.cache.served > 50, "served {}", res.cache.served);
        // Zipf popularity means repeated objects: a visibly warm cache.
        assert!(
            res.cache.hit_rate() > 0.2,
            "hit rate {}",
            res.cache.hit_rate()
        );
        // Every delivery must be consistent in a small stable overlay.
        assert_eq!(res.run.report.incorrect, 0);
    }

    #[test]
    fn traffic_series_follows_the_daily_pattern() {
        let mut p = SquirrelParams::quick();
        p.web.duration_us = DAY_US;
        let res = run_squirrel(&p);
        let lookups: Vec<f64> = res
            .run
            .report
            .windows
            .iter()
            .map(|w| {
                w.per_category_per_node_per_sec[harness::category_index(mspastry::Category::Lookup)]
            })
            .collect();
        assert!(lookups.len() >= 20);
        let peak = lookups.iter().cloned().fold(0.0, f64::max);
        let night = lookups[..4].iter().cloned().fold(0.0, f64::max);
        assert!(peak > 2.0 * night.max(1e-6), "peak {peak} night {night}");
    }
}
