//! Loopback UDP smoke tests: real sockets, real threads, bounded waits.
//!
//! These exercise the full deployment stack — envelope codec, address-book
//! hints, the shared `mspastry::Driver`, and the wall-clock timer heap — on
//! 127.0.0.1, so they are CI-runnable without network setup.

use mspastry::Id;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use transport::{lan_config, Telemetry, UdpNode};

/// Polls every node's delivery channel until `expected` lookups arrive (each
/// must surface at the node whose id equals the key) or the deadline passes.
fn collect_deliveries(nodes: &[UdpNode], ids: &[Id], expected: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    let mut received = 0;
    while received < expected && Instant::now() < deadline {
        for (i, node) in nodes.iter().enumerate() {
            while let Ok(d) = node.deliveries().try_recv() {
                assert_eq!(d.key, ids[i], "delivered at the key's root");
                received += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    received
}

#[test]
fn three_node_overlay_joins_and_routes_within_bound() {
    // The minimal non-trivial overlay: a bootstrap plus two joiners, with
    // every wait bounded so a hang fails the test instead of wedging CI.
    let ids = [Id(10 << 100), Id(200 << 100), Id(300 << 100)];
    let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None).unwrap();
    assert!(boot.is_active(), "bootstrap is active immediately");
    let contact = (boot.id(), boot.local_addr());
    let mut nodes = vec![boot];
    for &id in &ids[1..] {
        let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(contact)).unwrap();
        assert!(
            node.wait_active(Duration::from_secs(20)),
            "node {id} failed to join within bound"
        );
        nodes.push(node);
    }

    // Each node looks up every *other* node's id; the root is unambiguous.
    let mut expected = 0;
    for (i, issuer) in nodes.iter().enumerate() {
        for (j, &key) in ids.iter().enumerate() {
            if i != j {
                issuer.lookup(key, (i * 10 + j) as u64);
                expected += 1;
            }
        }
    }
    let received = collect_deliveries(&nodes, &ids, expected, Duration::from_secs(20));
    assert_eq!(received, expected, "all lookups delivered at their roots");
    for node in nodes {
        node.shutdown();
    }
}

/// One blocking HTTP GET against the metrics listener; returns
/// (status-line, headers, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_serves_wellformed_exposition_and_healthz() {
    // Two-node overlay with telemetry on: joining generates real UDP
    // traffic, so the scraped counters are non-trivially populated.
    let telemetry = Telemetry {
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        stat_interval: None,
    };
    let ids = [Id(5 << 100), Id(400 << 100)];
    let boot = UdpNode::spawn_with(ids[0], lan_config(), "127.0.0.1:0", None, telemetry).unwrap();
    let contact = (boot.id(), boot.local_addr());
    let joiner = UdpNode::spawn_with(
        ids[1],
        lan_config(),
        "127.0.0.1:0",
        Some(contact),
        telemetry,
    )
    .unwrap();
    assert!(joiner.wait_active(Duration::from_secs(20)), "joiner active");
    let addr = boot.metrics_addr().expect("telemetry on => metrics addr");

    // The first snapshot is published up to one publish period after spawn;
    // poll until the listener stops answering 503.
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        let (status, headers, body) = http_get(addr, "/metrics");
        if status.contains("200") {
            assert!(
                headers.contains("text/plain; version=0.0.4"),
                "exposition content type, got: {headers}"
            );
            break body;
        }
        assert!(status.contains("503"), "only 503 before first publish");
        assert!(Instant::now() < deadline, "no snapshot published in time");
        std::thread::sleep(Duration::from_millis(25));
    };

    // Well-formedness: every non-comment line is `name[{labels}] value` with
    // a parseable f64 value and a `mspastry_`-prefixed metric name.
    let mut samples = 0;
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.starts_with("mspastry_")
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in line: {line}"));
        samples += 1;
    }
    assert!(samples > 0, "exposition has at least one sample");
    assert!(
        body.contains("mspastry_udp_datagrams_rx_total"),
        "io counters exported"
    );
    assert!(body.contains("mspastry_active 1"), "health gauges exported");

    // /healthz answers JSON with the same liveness view.
    let (status, headers, health) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "healthz ok, got: {status}");
    assert!(headers.contains("application/json"), "json content type");
    assert!(
        health.contains("\"active\":true"),
        "bootstrap is active: {health}"
    );

    // Unknown paths 404 instead of wedging the listener.
    let (status, _, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "unknown path 404s, got: {status}");

    joiner.shutdown();
    boot.shutdown();
}

#[test]
fn udp_overlay_forms_and_routes_lookups() {
    let mut rng = SmallRng::seed_from_u64(77);
    let n = 5;
    let ids: Vec<Id> = (0..n).map(|_| Id::random(&mut rng)).collect();
    let mut nodes = Vec::new();
    let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None).unwrap();
    let boot_contact = (boot.id(), boot.local_addr());
    nodes.push(boot);
    for &id in &ids[1..] {
        let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(boot_contact)).unwrap();
        assert!(
            node.wait_active(Duration::from_secs(20)),
            "node {id} failed to join"
        );
        nodes.push(node);
    }
    assert!(nodes.iter().all(|n| n.is_active()));

    // Route lookups for keys equal to each node's id (the root is then
    // unambiguous) from every other node.
    for (i, target) in ids.iter().enumerate() {
        let issuer = &nodes[(i + 1) % n];
        issuer.lookup(*target, i as u64);
    }
    let received = collect_deliveries(&nodes, &ids, n, Duration::from_secs(20));
    assert_eq!(received, n, "all lookups delivered at their roots");
    for node in nodes {
        node.shutdown();
    }
}
