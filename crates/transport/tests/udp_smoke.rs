//! Loopback UDP smoke tests: real sockets, real threads, bounded waits.
//!
//! These exercise the full deployment stack — envelope codec, address-book
//! hints, the shared `mspastry::Driver`, and the wall-clock timer heap — on
//! 127.0.0.1, so they are CI-runnable without network setup.

use mspastry::Id;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use transport::{lan_config, UdpNode};

/// Polls every node's delivery channel until `expected` lookups arrive (each
/// must surface at the node whose id equals the key) or the deadline passes.
fn collect_deliveries(nodes: &[UdpNode], ids: &[Id], expected: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    let mut received = 0;
    while received < expected && Instant::now() < deadline {
        for (i, node) in nodes.iter().enumerate() {
            while let Ok(d) = node.deliveries().try_recv() {
                assert_eq!(d.key, ids[i], "delivered at the key's root");
                received += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    received
}

#[test]
fn three_node_overlay_joins_and_routes_within_bound() {
    // The minimal non-trivial overlay: a bootstrap plus two joiners, with
    // every wait bounded so a hang fails the test instead of wedging CI.
    let ids = [Id(10 << 100), Id(200 << 100), Id(300 << 100)];
    let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None).unwrap();
    assert!(boot.is_active(), "bootstrap is active immediately");
    let contact = (boot.id(), boot.local_addr());
    let mut nodes = vec![boot];
    for &id in &ids[1..] {
        let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(contact)).unwrap();
        assert!(
            node.wait_active(Duration::from_secs(20)),
            "node {id} failed to join within bound"
        );
        nodes.push(node);
    }

    // Each node looks up every *other* node's id; the root is unambiguous.
    let mut expected = 0;
    for (i, issuer) in nodes.iter().enumerate() {
        for (j, &key) in ids.iter().enumerate() {
            if i != j {
                issuer.lookup(key, (i * 10 + j) as u64);
                expected += 1;
            }
        }
    }
    let received = collect_deliveries(&nodes, &ids, expected, Duration::from_secs(20));
    assert_eq!(received, expected, "all lookups delivered at their roots");
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn udp_overlay_forms_and_routes_lookups() {
    let mut rng = SmallRng::seed_from_u64(77);
    let n = 5;
    let ids: Vec<Id> = (0..n).map(|_| Id::random(&mut rng)).collect();
    let mut nodes = Vec::new();
    let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None).unwrap();
    let boot_contact = (boot.id(), boot.local_addr());
    nodes.push(boot);
    for &id in &ids[1..] {
        let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(boot_contact)).unwrap();
        assert!(
            node.wait_active(Duration::from_secs(20)),
            "node {id} failed to join"
        );
        nodes.push(node);
    }
    assert!(nodes.iter().all(|n| n.is_active()));

    // Route lookups for keys equal to each node's id (the root is then
    // unambiguous) from every other node.
    for (i, target) in ids.iter().enumerate() {
        let issuer = &nodes[(i + 1) % n];
        issuer.lookup(*target, i as u64);
    }
    let received = collect_deliveries(&nodes, &ids, n, Duration::from_secs(20));
    assert_eq!(received, n, "all lookups delivered at their roots");
    for node in nodes {
        node.shutdown();
    }
}
