#![warn(missing_docs)]
//! Real UDP transport for the MSPastry protocol.
//!
//! The [`mspastry::Node`] state machine performs no I/O; this crate binds it
//! to an actual `UdpSocket`: a per-node thread drives the event loop (socket
//! receive, timer wheel, local commands), executes the emitted actions, and
//! resolves node identifiers to socket addresses through an address book
//! fed by the [`envelope::Envelope`] hint mechanism.
//!
//! This is the deployment path the paper alludes to ("the code that runs in
//! the simulator and in the real deployment is the same with the exception
//! of low level messaging"): the protocol crate is shared verbatim between
//! `netsim` and this transport.
//!
//! # Example
//!
//! ```no_run
//! use mspastry::{Config, Id};
//! use transport::UdpNode;
//!
//! let bootstrap = UdpNode::spawn(Id(1), Config::default(), "127.0.0.1:0", None)?;
//! let other = UdpNode::spawn(
//!     Id(2),
//!     Config::default(),
//!     "127.0.0.1:0",
//!     Some((bootstrap.id(), bootstrap.local_addr())),
//! )?;
//! other.wait_active(std::time::Duration::from_secs(10));
//! other.lookup(Id(3), 42);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod envelope;

pub use envelope::Envelope;

use mspastry::{Action, Config, Effects, Event, Key, Node, NodeId, Payload, TimerKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A lookup delivered at this node (it is the key's root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The destination key.
    pub key: Key,
    /// The application payload.
    pub payload: Payload,
    /// Overlay hops taken.
    pub hops: u32,
}

enum Cmd {
    Lookup(Key, Payload),
    Shutdown,
}

/// A running MSPastry node bound to a UDP socket.
///
/// Dropping the handle shuts the node down.
#[derive(Debug)]
pub struct UdpNode {
    id: NodeId,
    local_addr: SocketAddr,
    cmd_tx: Sender<Cmd>,
    deliveries: Receiver<Delivery>,
    active: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl UdpNode {
    /// Binds a UDP socket and spawns the node's event loop.
    ///
    /// `seed` is an existing overlay node (identifier + address); `None`
    /// bootstraps a new overlay.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn spawn<A: ToSocketAddrs>(
        id: NodeId,
        cfg: Config,
        bind: A,
        seed: Option<(NodeId, SocketAddr)>,
    ) -> io::Result<UdpNode> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let local_addr = socket.local_addr()?;
        let (cmd_tx, cmd_rx) = channel();
        let (delivery_tx, deliveries) = channel();
        let active = Arc::new(AtomicBool::new(false));
        let active2 = active.clone();
        let thread = std::thread::Builder::new()
            .name(format!("mspastry-{id}"))
            .spawn(move || {
                EventLoop {
                    node: Node::new(id, cfg),
                    socket,
                    epoch: Instant::now(),
                    timers: BinaryHeap::new(),
                    addrs: HashMap::new(),
                    cmd_rx,
                    delivery_tx,
                    active: active2,
                    buf: vec![0u8; 64 * 1024],
                }
                .run(seed)
            })?;
        Ok(UdpNode {
            id,
            local_addr,
            cmd_tx,
            deliveries,
            active,
            thread: Some(thread),
        })
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once the node has completed its join.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Blocks until the node is active or the timeout elapses; returns
    /// whether it is active.
    pub fn wait_active(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_active() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.is_active()
    }

    /// Routes a lookup through the overlay.
    pub fn lookup(&self, key: Key, payload: Payload) {
        let _ = self.cmd_tx.send(Cmd::Lookup(key, payload));
    }

    /// Receiver of lookups delivered at this node.
    pub fn deliveries(&self) -> &Receiver<Delivery> {
        &self.deliveries
    }

    /// Stops the event loop and joins the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

struct EventLoop {
    node: Node,
    socket: UdpSocket,
    epoch: Instant,
    timers: BinaryHeap<Reverse<(u64, u64, TimerKind)>>,
    addrs: HashMap<u128, SocketAddr>,
    cmd_rx: Receiver<Cmd>,
    delivery_tx: Sender<Delivery>,
    active: Arc<AtomicBool>,
    buf: Vec<u8>,
}

impl EventLoop {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn run(mut self, seed: Option<(NodeId, SocketAddr)>) {
        let mut fx = Effects::new();
        let mut timer_seq = 0u64;
        if let Some((seed_id, seed_addr)) = seed {
            self.addrs.insert(seed_id.0, seed_addr);
        }
        let now = self.now_us();
        self.node.handle(
            now,
            Event::Join {
                seed: seed.map(|(id, _)| id),
            },
            &mut fx,
        );
        self.execute(fx.drain(), &mut timer_seq);

        loop {
            // Local commands.
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(Cmd::Lookup(key, payload)) => {
                        let now = self.now_us();
                        self.node
                            .handle(now, Event::Lookup { key, payload }, &mut fx);
                        let actions = fx.drain();
                        self.execute(actions, &mut timer_seq);
                    }
                    Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                    Err(TryRecvError::Empty) => break,
                }
            }
            // Due timers.
            let now = self.now_us();
            while let Some(Reverse((at, _, _))) = self.timers.peek() {
                if *at > now {
                    break;
                }
                let Reverse((_, _, kind)) = self.timers.pop().unwrap();
                self.node.handle(now, Event::Timer(kind), &mut fx);
                let actions = fx.drain();
                self.execute(actions, &mut timer_seq);
            }
            // Incoming datagrams (the socket read timeout paces the loop).
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, from_addr)) => {
                    let bytes = self.buf[..n].to_vec();
                    if let Ok(env) = Envelope::decode(&bytes) {
                        self.addrs.insert(env.sender.0, from_addr);
                        for (id, addr) in &env.hints {
                            self.addrs.entry(id.0).or_insert(*addr);
                        }
                        let now = self.now_us();
                        self.node.handle(
                            now,
                            Event::Receive {
                                from: env.sender,
                                msg: env.msg,
                            },
                            &mut fx,
                        );
                        let actions = fx.drain();
                        self.execute(actions, &mut timer_seq);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => {}
            }
        }
    }

    fn execute(&mut self, actions: Vec<Action>, timer_seq: &mut u64) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let Some(&addr) = self.addrs.get(&to.0) else {
                        continue; // no address yet; the protocol will retry
                    };
                    let hints = mspastry::codec::referenced_node_ids(&msg)
                        .into_iter()
                        .filter_map(|id| self.addrs.get(&id.0).map(|&a| (id, a)))
                        .take(envelope::MAX_HINTS)
                        .collect();
                    let env = Envelope {
                        sender: self.node.id(),
                        hints,
                        msg,
                    };
                    let _ = self.socket.send_to(&env.encode(), addr);
                }
                Action::SetTimer { delay_us, kind } => {
                    *timer_seq += 1;
                    self.timers
                        .push(Reverse((self.now_us() + delay_us, *timer_seq, kind)));
                }
                Action::Deliver {
                    key, payload, hops, ..
                } => {
                    let _ = self.delivery_tx.send(Delivery { key, payload, hops });
                }
                Action::BecameActive => self.active.store(true, Ordering::Release),
                Action::LookupDropped { .. } => {}
            }
        }
    }
}

/// A configuration with timeouts scaled down for LAN/localhost deployments
/// and tests (the paper's defaults assume wide-area round trips).
pub fn lan_config() -> Config {
    Config {
        t_ls_us: 500_000,
        t_o_us: 200_000,
        self_tune_period_us: 1_000_000,
        distance_probe_spacing_us: 20_000,
        nn_probe_timeout_us: 100_000,
        rt_maintenance_period_us: 2_000_000,
        ack_rto_initial_us: 100_000,
        ack_rto_min_us: 2_000,
        join_retry_us: 1_000_000,
        ..Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspastry::Id;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn udp_overlay_forms_and_routes_lookups() {
        let mut rng = SmallRng::seed_from_u64(77);
        let n = 5;
        let ids: Vec<Id> = (0..n).map(|_| Id::random(&mut rng)).collect();
        let mut nodes = Vec::new();
        let boot = UdpNode::spawn(ids[0], lan_config(), "127.0.0.1:0", None).unwrap();
        let boot_contact = (boot.id(), boot.local_addr());
        nodes.push(boot);
        for &id in &ids[1..] {
            let node = UdpNode::spawn(id, lan_config(), "127.0.0.1:0", Some(boot_contact)).unwrap();
            assert!(
                node.wait_active(Duration::from_secs(20)),
                "node {id} failed to join"
            );
            nodes.push(node);
        }
        assert!(nodes.iter().all(|n| n.is_active()));

        // Route lookups for keys equal to each node's id (the root is then
        // unambiguous) from every other node.
        for (i, target) in ids.iter().enumerate() {
            let issuer = &nodes[(i + 1) % n];
            issuer.lookup(*target, i as u64);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut received = 0;
        while received < n && Instant::now() < deadline {
            for (i, node) in nodes.iter().enumerate() {
                while let Ok(d) = node.deliveries().try_recv() {
                    assert_eq!(d.key, ids[i], "delivered at the key's root");
                    received += 1;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(received, n, "all lookups delivered at their roots");
        for node in nodes {
            node.shutdown();
        }
    }
}
