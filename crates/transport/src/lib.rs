#![warn(missing_docs)]
//! Real UDP transport for the MSPastry protocol.
//!
//! The [`mspastry::Node`] state machine performs no I/O; this crate binds it
//! to an actual `UdpSocket`: a per-node thread runs the event loop (socket
//! receive, timer heap, local commands) and resolves node identifiers to
//! socket addresses through an address book fed by the
//! [`envelope::Envelope`] hint mechanism.
//!
//! Protocol actions are not interpreted here: the node is wrapped in the
//! shared [`mspastry::Driver`], and the private `UdpHost` maps its
//! [`mspastry::Host`] calls onto the socket, timer heap, and delivery channel. The
//! simulator implements the same trait, so this is the deployment path the
//! paper alludes to ("the code that runs in the simulator and in the real
//! deployment is the same with the exception of low level messaging") —
//! including the action-execution loop itself.
//!
//! # Example
//!
//! ```no_run
//! use mspastry::{Config, Id};
//! use transport::UdpNode;
//!
//! let bootstrap = UdpNode::spawn(Id(1), Config::default(), "127.0.0.1:0", None)?;
//! let other = UdpNode::spawn(
//!     Id(2),
//!     Config::default(),
//!     "127.0.0.1:0",
//!     Some((bootstrap.id(), bootstrap.local_addr())),
//! )?;
//! other.wait_active(std::time::Duration::from_secs(10));
//! other.lookup(Id(3), 42);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod envelope;
pub mod metrics;

pub use envelope::Envelope;
pub use metrics::{Health, MetricsServer, Published};

use mspastry::{
    Clock, Config, Driver, DropReason, Event, Host, Key, LookupId, Message, Node, NodeId, Payload,
    TimerKind, WallClock,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A lookup delivered at this node (it is the key's root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The destination key.
    pub key: Key,
    /// The application payload.
    pub payload: Payload,
    /// Overlay hops taken.
    pub hops: u32,
}

enum Cmd {
    Lookup(Key, Payload),
    Shutdown,
}

/// Live-telemetry options for a UDP node. The default (both fields `None`)
/// disables telemetry entirely: the node runs with a disabled observability
/// handle, exactly as before.
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry {
    /// Serve `GET /metrics` (Prometheus exposition format) and
    /// `GET /healthz` (JSON) on this address; use port 0 for an ephemeral
    /// port (read it back with [`UdpNode::metrics_addr`]).
    pub metrics_addr: Option<SocketAddr>,
    /// Print a one-line stat heartbeat on stderr at this cadence.
    pub stat_interval: Option<Duration>,
}

impl Telemetry {
    /// `true` if any telemetry output is requested.
    fn enabled(&self) -> bool {
        self.metrics_addr.is_some() || self.stat_interval.is_some()
    }
}

/// A running MSPastry node bound to a UDP socket.
///
/// Dropping the handle shuts the node down.
#[derive(Debug)]
pub struct UdpNode {
    id: NodeId,
    local_addr: SocketAddr,
    cmd_tx: Sender<Cmd>,
    deliveries: Receiver<Delivery>,
    active: Arc<AtomicBool>,
    metrics: Option<MetricsServer>,
    thread: Option<JoinHandle<()>>,
}

impl UdpNode {
    /// Binds a UDP socket and spawns the node's event loop, telemetry off.
    ///
    /// `seed` is an existing overlay node (identifier + address); `None`
    /// bootstraps a new overlay.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn spawn<A: ToSocketAddrs>(
        id: NodeId,
        cfg: Config,
        bind: A,
        seed: Option<(NodeId, SocketAddr)>,
    ) -> io::Result<UdpNode> {
        Self::spawn_with(id, cfg, bind, seed, Telemetry::default())
    }

    /// [`Self::spawn`] with live telemetry: an optional `/metrics` +
    /// `/healthz` HTTP endpoint and an optional stderr stat heartbeat.
    ///
    /// Telemetry is an observer: the node's protocol behaviour is identical
    /// with it on or off; the exporter thread only ever reads snapshots the
    /// event loop publishes.
    ///
    /// # Errors
    ///
    /// Returns any socket or metrics-listener bind error.
    pub fn spawn_with<A: ToSocketAddrs>(
        id: NodeId,
        cfg: Config,
        bind: A,
        seed: Option<(NodeId, SocketAddr)>,
        telemetry: Telemetry,
    ) -> io::Result<UdpNode> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let local_addr = socket.local_addr()?;
        let (cmd_tx, cmd_rx) = channel();
        let (delivery_tx, deliveries) = channel();
        let active = Arc::new(AtomicBool::new(false));
        let active2 = active.clone();
        let shared: metrics::Shared = Arc::new(Mutex::new(None));
        let metrics_server = match telemetry.metrics_addr {
            Some(addr) => Some(MetricsServer::start(addr, shared.clone())?),
            None => None,
        };
        let telemetry_on = telemetry.enabled();
        let stat_interval = telemetry.stat_interval;
        let thread = std::thread::Builder::new()
            .name(format!("mspastry-{id}"))
            .spawn(move || {
                // The obs handle is Rc-based (the protocol core is
                // single-threaded by design), so it is created inside the
                // node's own thread; only published `Snapshot` clones cross
                // to the exporter.
                let obs = if telemetry_on {
                    obs::Obs::new(0.0, 1, false)
                } else {
                    obs::Obs::disabled()
                };
                let telem = telemetry_on.then(|| Telem::new(shared, stat_interval));
                EventLoop {
                    driver: Driver::new(Node::with_obs(id, cfg, obs.clone())),
                    clock: WallClock::new(),
                    cmd_rx,
                    buf: vec![0u8; 64 * 1024],
                    telem,
                    io: Io {
                        id,
                        socket,
                        timers: BinaryHeap::new(),
                        timer_seq: 0,
                        addrs: HashMap::new(),
                        delivery_tx,
                        active: active2,
                        c_tx: obs.counter("udp.datagrams_tx"),
                        c_bytes_tx: obs.counter("udp.bytes_tx"),
                        c_rx: obs.counter("udp.datagrams_rx"),
                        c_bytes_rx: obs.counter("udp.bytes_rx"),
                        c_decode_errors: obs.counter("udp.decode_errors"),
                        obs,
                    },
                }
                .run(seed)
            })?;
        Ok(UdpNode {
            id,
            local_addr,
            cmd_tx,
            deliveries,
            active,
            metrics: metrics_server,
            thread: Some(thread),
        })
    }

    /// The bound `/metrics` listener address (`None` when telemetry is off);
    /// with port 0 this is where the ephemeral port shows up.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.local_addr())
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once the node has completed its join.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Blocks until the node is active or the timeout elapses; returns
    /// whether it is active.
    pub fn wait_active(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_active() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.is_active()
    }

    /// Routes a lookup through the overlay.
    pub fn lookup(&self, key: Key, payload: Payload) {
        let _ = self.cmd_tx.send(Cmd::Lookup(key, payload));
    }

    /// Receiver of lookups delivered at this node.
    pub fn deliveries(&self) -> &Receiver<Delivery> {
        &self.deliveries
    }

    /// Stops the event loop and joins the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The socket-facing state the [`UdpHost`] mutates while the node's driver
/// is borrowed for a step.
struct Io {
    id: NodeId,
    socket: UdpSocket,
    timers: BinaryHeap<Reverse<(u64, u64, TimerKind)>>,
    timer_seq: u64,
    addrs: HashMap<u128, SocketAddr>,
    delivery_tx: Sender<Delivery>,
    active: Arc<AtomicBool>,
    /// Shared with the protocol node; disabled (a single branch per op)
    /// unless telemetry was requested.
    obs: obs::Obs,
    c_tx: obs::CounterId,
    c_bytes_tx: obs::CounterId,
    c_rx: obs::CounterId,
    c_bytes_rx: obs::CounterId,
    c_decode_errors: obs::CounterId,
}

/// The UDP deployment's implementation of the protocol [`Host`] surface,
/// scoped to one event.
struct UdpHost<'a> {
    now: u64,
    io: &'a mut Io,
}

impl Host for UdpHost<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let Some(&addr) = self.io.addrs.get(&to.0) else {
            return; // no address yet; the protocol will retry
        };
        let hints = mspastry::codec::referenced_node_ids(&msg)
            .into_iter()
            .filter_map(|id| self.io.addrs.get(&id.0).map(|&a| (id, a)))
            .take(envelope::MAX_HINTS)
            .collect();
        let env = Envelope {
            sender: self.io.id,
            hints,
            msg,
        };
        let bytes = env.encode();
        self.io.obs.inc(self.io.c_tx);
        self.io.obs.add(self.io.c_bytes_tx, bytes.len() as u64);
        let _ = self.io.socket.send_to(&bytes, addr);
    }

    fn set_timer(&mut self, delay_us: u64, kind: TimerKind) {
        self.io.timer_seq += 1;
        self.io
            .timers
            .push(Reverse((self.now + delay_us, self.io.timer_seq, kind)));
    }

    fn deliver(&mut self, d: mspastry::Delivery) {
        let _ = self.io.delivery_tx.send(Delivery {
            key: d.key,
            payload: d.payload,
            hops: d.hops,
        });
    }

    fn became_active(&mut self) {
        self.io.active.store(true, Ordering::Release);
    }

    fn lookup_dropped(&mut self, _id: LookupId, _reason: DropReason) {}
}

/// How often the event loop refreshes the exporter's published slot.
const PUBLISH_PERIOD: Duration = Duration::from_millis(250);

/// Per-loop telemetry state (publish cadence, heartbeat cadence, liveness
/// timestamps). Only present when telemetry was requested.
struct Telem {
    shared: metrics::Shared,
    stat_interval: Option<Duration>,
    start: Instant,
    last_publish: Instant,
    last_stat: Instant,
    last_rx: Option<Instant>,
}

impl Telem {
    fn new(shared: metrics::Shared, stat_interval: Option<Duration>) -> Self {
        let now = Instant::now();
        Telem {
            shared,
            stat_interval,
            start: now,
            last_publish: now,
            last_stat: now,
            last_rx: None,
        }
    }
}

struct EventLoop {
    driver: Driver,
    clock: WallClock,
    cmd_rx: Receiver<Cmd>,
    buf: Vec<u8>,
    telem: Option<Telem>,
    io: Io,
}

impl EventLoop {
    /// Feeds one event through the shared driver at the current wall time.
    fn step(&mut self, event: Event) {
        let now = self.clock.now_us();
        let mut host = UdpHost {
            now,
            io: &mut self.io,
        };
        self.driver.step(now, event, &mut host);
    }

    fn run(mut self, seed: Option<(NodeId, SocketAddr)>) {
        if let Some((seed_id, seed_addr)) = seed {
            self.io.addrs.insert(seed_id.0, seed_addr);
        }
        self.step(Event::Join {
            seed: seed.map(|(id, _)| id),
        });

        loop {
            // Local commands.
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(Cmd::Lookup(key, payload)) => {
                        self.step(Event::Lookup { key, payload });
                    }
                    Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                    Err(TryRecvError::Empty) => break,
                }
            }
            // Due timers.
            let now = self.clock.now_us();
            while let Some(Reverse((at, _, _))) = self.io.timers.peek() {
                if *at > now {
                    break;
                }
                let Reverse((_, _, kind)) = self.io.timers.pop().unwrap();
                self.step(Event::Timer(kind));
            }
            // Incoming datagrams (the socket read timeout paces the loop).
            match self.io.socket.recv_from(&mut self.buf) {
                Ok((n, from_addr)) => {
                    let bytes = self.buf[..n].to_vec();
                    self.io.obs.inc(self.io.c_rx);
                    self.io.obs.add(self.io.c_bytes_rx, n as u64);
                    if let Some(t) = self.telem.as_mut() {
                        t.last_rx = Some(Instant::now());
                    }
                    if let Ok(env) = Envelope::decode(&bytes) {
                        self.io.addrs.insert(env.sender.0, from_addr);
                        for (id, addr) in &env.hints {
                            self.io.addrs.entry(id.0).or_insert(*addr);
                        }
                        self.step(Event::Receive {
                            from: env.sender,
                            msg: env.msg,
                        });
                    } else {
                        self.io.obs.inc(self.io.c_decode_errors);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => {}
            }
            self.telemetry_tick();
        }
    }

    /// Publishes a fresh snapshot for the exporter and emits the stderr
    /// heartbeat when due. Pure observation: reads the node, never steps it.
    fn telemetry_tick(&mut self) {
        let Some(t) = self.telem.as_mut() else {
            return;
        };
        let health = || {
            let node = self.driver.node();
            let ls = node.leaf_set();
            metrics::Health {
                active: node.is_active(),
                leaf_set_members: ls.members().len(),
                leaf_set_capacity: 2 * ls.half(),
                leaf_set_complete: ls.is_complete(),
                suspected: node.suspected_count(),
                last_rx_age_us: t.last_rx.map(|at| at.elapsed().as_micros() as u64),
                uptime_us: t.start.elapsed().as_micros() as u64,
            }
        };
        if t.last_publish.elapsed() >= PUBLISH_PERIOD {
            t.last_publish = Instant::now();
            let published = metrics::Published {
                snapshot: self.io.obs.snapshot(),
                health: health(),
            };
            *t.shared.lock().unwrap_or_else(|e| e.into_inner()) = Some(published);
        }
        if let Some(interval) = t.stat_interval {
            if t.last_stat.elapsed() >= interval {
                t.last_stat = Instant::now();
                let h = health();
                let s = self.io.obs.snapshot();
                eprintln!(
                    "[mspastry {}] up {:.0}s active={} leaf={}/{} suspect={} \
                     rx={} tx={} last_rx={}",
                    self.io.id,
                    h.uptime_us as f64 / 1e6,
                    h.active,
                    h.leaf_set_members,
                    h.leaf_set_capacity,
                    h.suspected,
                    s.counter("udp.datagrams_rx"),
                    s.counter("udp.datagrams_tx"),
                    match h.last_rx_age_us {
                        Some(age) => format!("{:.1}s ago", age as f64 / 1e6),
                        None => "never".to_string(),
                    },
                );
            }
        }
    }
}

/// A configuration with timeouts scaled down for LAN/localhost deployments
/// and tests (the paper's defaults assume wide-area round trips).
pub fn lan_config() -> Config {
    Config {
        t_ls_us: 500_000,
        t_o_us: 200_000,
        self_tune_period_us: 1_000_000,
        distance_probe_spacing_us: 20_000,
        nn_probe_timeout_us: 100_000,
        rt_maintenance_period_us: 2_000_000,
        ack_rto_initial_us: 100_000,
        ack_rto_min_us: 2_000,
        join_retry_us: 1_000_000,
        ..Config::default()
    }
}
