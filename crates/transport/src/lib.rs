#![warn(missing_docs)]
//! Real UDP transport for the MSPastry protocol.
//!
//! The [`mspastry::Node`] state machine performs no I/O; this crate binds it
//! to an actual `UdpSocket`: a per-node thread runs the event loop (socket
//! receive, timer heap, local commands) and resolves node identifiers to
//! socket addresses through an address book fed by the
//! [`envelope::Envelope`] hint mechanism.
//!
//! Protocol actions are not interpreted here: the node is wrapped in the
//! shared [`mspastry::Driver`], and the private `UdpHost` maps its
//! [`mspastry::Host`] calls onto the socket, timer heap, and delivery channel. The
//! simulator implements the same trait, so this is the deployment path the
//! paper alludes to ("the code that runs in the simulator and in the real
//! deployment is the same with the exception of low level messaging") —
//! including the action-execution loop itself.
//!
//! # Example
//!
//! ```no_run
//! use mspastry::{Config, Id};
//! use transport::UdpNode;
//!
//! let bootstrap = UdpNode::spawn(Id(1), Config::default(), "127.0.0.1:0", None)?;
//! let other = UdpNode::spawn(
//!     Id(2),
//!     Config::default(),
//!     "127.0.0.1:0",
//!     Some((bootstrap.id(), bootstrap.local_addr())),
//! )?;
//! other.wait_active(std::time::Duration::from_secs(10));
//! other.lookup(Id(3), 42);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod envelope;

pub use envelope::Envelope;

use mspastry::{
    Clock, Config, Driver, DropReason, Event, Host, Key, LookupId, Message, Node, NodeId, Payload,
    TimerKind, WallClock,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A lookup delivered at this node (it is the key's root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The destination key.
    pub key: Key,
    /// The application payload.
    pub payload: Payload,
    /// Overlay hops taken.
    pub hops: u32,
}

enum Cmd {
    Lookup(Key, Payload),
    Shutdown,
}

/// A running MSPastry node bound to a UDP socket.
///
/// Dropping the handle shuts the node down.
#[derive(Debug)]
pub struct UdpNode {
    id: NodeId,
    local_addr: SocketAddr,
    cmd_tx: Sender<Cmd>,
    deliveries: Receiver<Delivery>,
    active: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl UdpNode {
    /// Binds a UDP socket and spawns the node's event loop.
    ///
    /// `seed` is an existing overlay node (identifier + address); `None`
    /// bootstraps a new overlay.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn spawn<A: ToSocketAddrs>(
        id: NodeId,
        cfg: Config,
        bind: A,
        seed: Option<(NodeId, SocketAddr)>,
    ) -> io::Result<UdpNode> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let local_addr = socket.local_addr()?;
        let (cmd_tx, cmd_rx) = channel();
        let (delivery_tx, deliveries) = channel();
        let active = Arc::new(AtomicBool::new(false));
        let active2 = active.clone();
        let thread = std::thread::Builder::new()
            .name(format!("mspastry-{id}"))
            .spawn(move || {
                EventLoop {
                    driver: Driver::new(Node::new(id, cfg)),
                    clock: WallClock::new(),
                    cmd_rx,
                    buf: vec![0u8; 64 * 1024],
                    io: Io {
                        id,
                        socket,
                        timers: BinaryHeap::new(),
                        timer_seq: 0,
                        addrs: HashMap::new(),
                        delivery_tx,
                        active: active2,
                    },
                }
                .run(seed)
            })?;
        Ok(UdpNode {
            id,
            local_addr,
            cmd_tx,
            deliveries,
            active,
            thread: Some(thread),
        })
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once the node has completed its join.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Blocks until the node is active or the timeout elapses; returns
    /// whether it is active.
    pub fn wait_active(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_active() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.is_active()
    }

    /// Routes a lookup through the overlay.
    pub fn lookup(&self, key: Key, payload: Payload) {
        let _ = self.cmd_tx.send(Cmd::Lookup(key, payload));
    }

    /// Receiver of lookups delivered at this node.
    pub fn deliveries(&self) -> &Receiver<Delivery> {
        &self.deliveries
    }

    /// Stops the event loop and joins the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The socket-facing state the [`UdpHost`] mutates while the node's driver
/// is borrowed for a step.
struct Io {
    id: NodeId,
    socket: UdpSocket,
    timers: BinaryHeap<Reverse<(u64, u64, TimerKind)>>,
    timer_seq: u64,
    addrs: HashMap<u128, SocketAddr>,
    delivery_tx: Sender<Delivery>,
    active: Arc<AtomicBool>,
}

/// The UDP deployment's implementation of the protocol [`Host`] surface,
/// scoped to one event.
struct UdpHost<'a> {
    now: u64,
    io: &'a mut Io,
}

impl Host for UdpHost<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let Some(&addr) = self.io.addrs.get(&to.0) else {
            return; // no address yet; the protocol will retry
        };
        let hints = mspastry::codec::referenced_node_ids(&msg)
            .into_iter()
            .filter_map(|id| self.io.addrs.get(&id.0).map(|&a| (id, a)))
            .take(envelope::MAX_HINTS)
            .collect();
        let env = Envelope {
            sender: self.io.id,
            hints,
            msg,
        };
        let _ = self.io.socket.send_to(&env.encode(), addr);
    }

    fn set_timer(&mut self, delay_us: u64, kind: TimerKind) {
        self.io.timer_seq += 1;
        self.io
            .timers
            .push(Reverse((self.now + delay_us, self.io.timer_seq, kind)));
    }

    fn deliver(&mut self, d: mspastry::Delivery) {
        let _ = self.io.delivery_tx.send(Delivery {
            key: d.key,
            payload: d.payload,
            hops: d.hops,
        });
    }

    fn became_active(&mut self) {
        self.io.active.store(true, Ordering::Release);
    }

    fn lookup_dropped(&mut self, _id: LookupId, _reason: DropReason) {}
}

struct EventLoop {
    driver: Driver,
    clock: WallClock,
    cmd_rx: Receiver<Cmd>,
    buf: Vec<u8>,
    io: Io,
}

impl EventLoop {
    /// Feeds one event through the shared driver at the current wall time.
    fn step(&mut self, event: Event) {
        let now = self.clock.now_us();
        let mut host = UdpHost {
            now,
            io: &mut self.io,
        };
        self.driver.step(now, event, &mut host);
    }

    fn run(mut self, seed: Option<(NodeId, SocketAddr)>) {
        if let Some((seed_id, seed_addr)) = seed {
            self.io.addrs.insert(seed_id.0, seed_addr);
        }
        self.step(Event::Join {
            seed: seed.map(|(id, _)| id),
        });

        loop {
            // Local commands.
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(Cmd::Lookup(key, payload)) => {
                        self.step(Event::Lookup { key, payload });
                    }
                    Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                    Err(TryRecvError::Empty) => break,
                }
            }
            // Due timers.
            let now = self.clock.now_us();
            while let Some(Reverse((at, _, _))) = self.io.timers.peek() {
                if *at > now {
                    break;
                }
                let Reverse((_, _, kind)) = self.io.timers.pop().unwrap();
                self.step(Event::Timer(kind));
            }
            // Incoming datagrams (the socket read timeout paces the loop).
            match self.io.socket.recv_from(&mut self.buf) {
                Ok((n, from_addr)) => {
                    let bytes = self.buf[..n].to_vec();
                    if let Ok(env) = Envelope::decode(&bytes) {
                        self.io.addrs.insert(env.sender.0, from_addr);
                        for (id, addr) in &env.hints {
                            self.io.addrs.entry(id.0).or_insert(*addr);
                        }
                        self.step(Event::Receive {
                            from: env.sender,
                            msg: env.msg,
                        });
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => {}
            }
        }
    }
}

/// A configuration with timeouts scaled down for LAN/localhost deployments
/// and tests (the paper's defaults assume wide-area round trips).
pub fn lan_config() -> Config {
    Config {
        t_ls_us: 500_000,
        t_o_us: 200_000,
        self_tune_period_us: 1_000_000,
        distance_probe_spacing_us: 20_000,
        nn_probe_timeout_us: 100_000,
        rt_maintenance_period_us: 2_000_000,
        ack_rto_initial_us: 100_000,
        ack_rto_min_us: 2_000,
        join_retry_us: 1_000_000,
        ..Config::default()
    }
}
