//! The UDP wire envelope.
//!
//! The protocol addresses peers by 128-bit identifier; the transport must
//! resolve identifiers to socket addresses. Every datagram therefore carries
//! the sender's identifier plus *address hints*: `(identifier, address)`
//! pairs for nodes referenced inside the payload that the sender can
//! resolve. Receivers merge hints into their address book, so addresses
//! propagate along exactly the same gossip paths as the identifiers
//! themselves.

use mspastry::codec::{self, DecodeError};
use mspastry::{Id, Message, NodeId};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

/// Maximum hints per datagram (bounds datagram size).
pub const MAX_HINTS: usize = 48;

/// One UDP datagram: sender identity, address hints, and the protocol
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The sending node.
    pub sender: NodeId,
    /// Identifier-to-address hints for nodes referenced in `msg`.
    pub hints: Vec<(NodeId, SocketAddr)>,
    /// The protocol message.
    pub msg: Message,
}

impl Envelope {
    /// Encodes the envelope to datagram bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.sender.0.to_le_bytes());
        buf.push(self.hints.len().min(MAX_HINTS) as u8);
        for (id, addr) in self.hints.iter().take(MAX_HINTS) {
            buf.extend_from_slice(&id.0.to_le_bytes());
            encode_addr(&mut buf, *addr);
        }
        buf.extend_from_slice(&codec::encode(&self.msg));
        buf
    }

    /// Decodes an envelope from datagram bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, DecodeError> {
        if bytes.len() < 17 {
            return Err(DecodeError::Truncated);
        }
        let sender = Id(u128::from_le_bytes(bytes[..16].try_into().unwrap()));
        let n_hints = bytes[16] as usize;
        if n_hints > MAX_HINTS {
            return Err(DecodeError::ListTooLong(n_hints as u64));
        }
        let mut pos = 17;
        let mut hints = Vec::with_capacity(n_hints);
        for _ in 0..n_hints {
            if bytes.len() < pos + 16 {
                return Err(DecodeError::Truncated);
            }
            let id = Id(u128::from_le_bytes(
                bytes[pos..pos + 16].try_into().unwrap(),
            ));
            pos += 16;
            let (addr, used) = decode_addr(&bytes[pos..])?;
            pos += used;
            hints.push((id, addr));
        }
        let msg = codec::decode(&bytes[pos..])?;
        Ok(Envelope { sender, hints, msg })
    }
}

fn encode_addr(buf: &mut Vec<u8>, addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) => {
            buf.push(4);
            buf.extend_from_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            buf.push(6);
            buf.extend_from_slice(&ip.octets());
        }
    }
    buf.extend_from_slice(&addr.port().to_le_bytes());
}

fn decode_addr(bytes: &[u8]) -> Result<(SocketAddr, usize), DecodeError> {
    match bytes.first() {
        Some(4) => {
            if bytes.len() < 7 {
                return Err(DecodeError::Truncated);
            }
            let ip = Ipv4Addr::new(bytes[1], bytes[2], bytes[3], bytes[4]);
            let port = u16::from_le_bytes([bytes[5], bytes[6]]);
            Ok((SocketAddr::new(IpAddr::V4(ip), port), 7))
        }
        Some(6) => {
            if bytes.len() < 19 {
                return Err(DecodeError::Truncated);
            }
            let mut oct = [0u8; 16];
            oct.copy_from_slice(&bytes[1..17]);
            let port = u16::from_le_bytes([bytes[17], bytes[18]]);
            Ok((SocketAddr::new(IpAddr::V6(Ipv6Addr::from(oct)), port), 19))
        }
        Some(t) => Err(DecodeError::UnknownTag(*t)),
        None => Err(DecodeError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(a: u8, port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::new(127, 0, 0, a)), port)
    }

    #[test]
    fn round_trip_with_hints() {
        let env = Envelope {
            sender: Id(0xfeed),
            hints: vec![
                (Id(1), v4(1, 4000)),
                (Id(2), SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), 9)),
            ],
            msg: Message::Heartbeat {
                trt_hint: Some(1234),
            },
        };
        let bytes = env.encode();
        assert_eq!(Envelope::decode(&bytes).unwrap(), env);
    }

    #[test]
    fn round_trip_without_hints() {
        let env = Envelope {
            sender: Id(7),
            hints: vec![],
            msg: Message::NnLeafSetRequest,
        };
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn truncation_is_detected() {
        let env = Envelope {
            sender: Id(7),
            hints: vec![(Id(1), v4(1, 80))],
            msg: Message::RtProbe { nonce: 5 },
        };
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_address_tag_is_rejected() {
        let env = Envelope {
            sender: Id(7),
            hints: vec![(Id(1), v4(1, 80))],
            msg: Message::RtProbe { nonce: 5 },
        };
        let mut bytes = env.encode();
        bytes[17 + 16] = 9; // corrupt the address family tag
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(DecodeError::UnknownTag(9))
        ));
    }
}
