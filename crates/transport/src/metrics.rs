//! A serde-free Prometheus-text exporter for live UDP nodes.
//!
//! The node's event loop periodically publishes a [`Published`] pair — a
//! frozen [`Snapshot`] of its per-run registry plus a [`Health`] summary of
//! overlay state — into a shared slot; a tiny blocking TCP listener
//! ([`MetricsServer`]) renders it on demand as:
//!
//! * `GET /metrics` — Prometheus exposition format (text/plain version
//!   0.0.4): counters as `mspastry_<name>_total`, histograms as summaries
//!   with `quantile` labels, health fields as gauges;
//! * `GET /healthz` — a small JSON document (leaf-set fill, suspected
//!   peers, last-heartbeat age, uptime).
//!
//! No HTTP library, no serde: the build environment is offline, and two
//! GET routes do not justify a dependency. The server thread never touches
//! protocol state — it only clones the last published pair out of a mutex,
//! so a slow scraper cannot stall the overlay node.

use obs::{JsonWriter, Snapshot};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// End-of-loop overlay health, published next to the metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// Whether the node has completed its join.
    pub active: bool,
    /// Leaf-set entries currently held.
    pub leaf_set_members: usize,
    /// Leaf-set capacity (2 × half-size).
    pub leaf_set_capacity: usize,
    /// Whether both leaf-set halves are full.
    pub leaf_set_complete: bool,
    /// Peers currently suspected faulty (probed, reply outstanding).
    pub suspected: usize,
    /// Microseconds since the last datagram was received (`None` before the
    /// first one).
    pub last_rx_age_us: Option<u64>,
    /// Microseconds since the event loop started.
    pub uptime_us: u64,
}

/// One published observation: the registry snapshot and the health summary.
#[derive(Debug, Clone, Default)]
pub struct Published {
    /// Frozen registry metrics.
    pub snapshot: Snapshot,
    /// Overlay health at publish time.
    pub health: Health,
}

/// The slot the event loop publishes into and the server reads from.
pub type Shared = Arc<Mutex<Option<Published>>>;

/// Sanitises a registry metric name into a Prometheus metric name: `.` and
/// every other non-`[a-zA-Z0-9_:]` character becomes `_`, and the
/// `mspastry_` namespace prefix is prepended.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("mspastry_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a registry snapshot in Prometheus exposition format: counters as
/// `<name>_total` counter metrics, histograms as summaries (quantile labels
/// from the log-bucket percentile estimates, plus `_sum`/`_count`).
pub fn render_prometheus(s: &Snapshot) -> String {
    let mut out = String::with_capacity(256 + 96 * (s.counters.len() + s.histograms.len()));
    for (name, v) in &s.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
    }
    for (name, h) in &s.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            if let Some(v) = v {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// Renders the health summary as Prometheus gauges (appended to the
/// `/metrics` body after the snapshot metrics).
pub fn render_health_gauges(h: &Health) -> String {
    let mut out = String::with_capacity(512);
    let mut gauge = |name: &str, v: u64| {
        out.push_str(&format!(
            "# TYPE mspastry_{name} gauge\nmspastry_{name} {v}\n"
        ));
    };
    gauge("active", h.active as u64);
    gauge("leaf_set_members", h.leaf_set_members as u64);
    gauge("leaf_set_capacity", h.leaf_set_capacity as u64);
    gauge("leaf_set_complete", h.leaf_set_complete as u64);
    gauge("suspected_peers", h.suspected as u64);
    gauge("uptime_us", h.uptime_us);
    if let Some(age) = h.last_rx_age_us {
        gauge("last_rx_age_us", age);
    }
    out
}

/// Renders the `/healthz` JSON document.
pub fn render_healthz(h: &Health) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("active").bool(h.active);
    w.key("leaf_set")
        .begin_object()
        .field_u64("members", h.leaf_set_members as u64)
        .field_u64("capacity", h.leaf_set_capacity as u64)
        .key("complete")
        .bool(h.leaf_set_complete)
        .end_object();
    w.field_u64("suspected_peers", h.suspected as u64)
        .field_opt_u64("last_rx_age_us", h.last_rx_age_us)
        .field_u64("uptime_us", h.uptime_us);
    w.end_object();
    w.finish()
}

/// A minimal blocking HTTP/1.0 server for `/metrics` and `/healthz`.
///
/// One accept-loop thread; connections are handled inline (scrapers are
/// sequential and the bodies are small). Dropping the handle stops the
/// thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `bind` and starts serving the shared published slot.
    ///
    /// # Errors
    ///
    /// Returns any TCP bind/configuration error.
    pub fn start<A: ToSocketAddrs>(bind: A, shared: Shared) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("mspastry-metrics".to_string())
            .spawn(move || serve(listener, shared, stop2))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound listener address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve(listener: TcpListener, shared: Shared, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = handle_conn(&mut stream, &shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {}
        }
    }
}

fn handle_conn(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // One read is enough for a GET request line; we never need the headers.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .strip_prefix("GET ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or("");
    let published = shared.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let (status, content_type, body) = match (path, published) {
        ("/metrics", Some(p)) => {
            let mut body = render_prometheus(&p.snapshot);
            body.push_str(&render_health_gauges(&p.health));
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        ("/healthz", Some(p)) => ("200 OK", "application/json", render_healthz(&p.health)),
        ("/metrics" | "/healthz", None) => (
            "503 Service Unavailable",
            "text/plain",
            "telemetry not yet published\n".to_string(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Obs;

    fn sample_health() -> Health {
        Health {
            active: true,
            leaf_set_members: 3,
            leaf_set_capacity: 16,
            leaf_set_complete: false,
            suspected: 1,
            last_rx_age_us: Some(1500),
            uptime_us: 42_000_000,
        }
    }

    #[test]
    fn prom_names_are_sanitised() {
        assert_eq!(prom_name("udp.datagrams-rx"), "mspastry_udp_datagrams_rx");
        assert_eq!(prom_name("lookup.latency_us"), "mspastry_lookup_latency_us");
    }

    #[test]
    fn exposition_renders_counters_and_summaries() {
        let o = Obs::new(0.0, 1, false);
        o.add(o.counter("udp.datagrams_rx"), 7);
        let h = o.histogram("lookup.latency_us");
        for v in [100, 200, 300] {
            o.record(h, v);
        }
        let text = render_prometheus(&o.snapshot());
        assert!(text.contains("# TYPE mspastry_lookup_latency_us summary\n"));
        assert!(text.contains("# TYPE mspastry_udp_datagrams_rx_total counter\n"));
        assert!(text.contains("mspastry_udp_datagrams_rx_total 7\n"));
        assert!(text.contains("mspastry_lookup_latency_us_count 3\n"));
        assert!(text.contains("mspastry_lookup_latency_us_sum 600\n"));
        assert!(text.contains("{quantile=\"0.5\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            assert!(parts.next().is_some(), "no name in {line}");
        }
    }

    #[test]
    fn healthz_is_json() {
        let s = render_healthz(&sample_health());
        assert_eq!(
            s,
            "{\"active\":true,\
             \"leaf_set\":{\"members\":3,\"capacity\":16,\"complete\":false},\
             \"suspected_peers\":1,\"last_rx_age_us\":1500,\"uptime_us\":42000000}"
        );
    }

    #[test]
    fn server_routes_and_survives_bad_requests() {
        let shared: Shared = Arc::new(Mutex::new(None));
        let srv = MetricsServer::start("127.0.0.1:0", shared.clone()).unwrap();
        let addr = srv.local_addr();
        let get = |path: &str| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        assert!(get("/metrics").starts_with("HTTP/1.0 503"));
        *shared.lock().unwrap() = Some(Published {
            snapshot: Snapshot::default(),
            health: sample_health(),
        });
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("mspastry_active 1\n"));
        let health = get("/healthz");
        assert!(health.contains("application/json"));
        assert!(health.contains("\"suspected_peers\":1"));
        assert!(get("/nope").starts_with("HTTP/1.0 404"));
        // Garbage request: connection handled, server stays up.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(get("/healthz").starts_with("HTTP/1.0 200"));
    }
}
