//! Property-based tests for the oracle and metric aggregation.

use harness::metrics::Metrics;
use harness::Oracle;
use mspastry::{Category, Id, LookupId};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    any::<u128>().prop_map(Id)
}

proptest! {
    #[test]
    fn oracle_root_matches_brute_force(ids in prop::collection::vec(arb_id(), 1..60),
                                       keys in prop::collection::vec(arb_id(), 1..20)) {
        let mut o = Oracle::new();
        for &id in &ids {
            o.insert(id);
        }
        for &key in &keys {
            let brute = ids
                .iter()
                .copied()
                .reduce(|a, b| mspastry::id::closer_to(key, a, b))
                .unwrap();
            prop_assert_eq!(o.root_of(key), Some(brute));
        }
    }

    #[test]
    fn oracle_insert_remove_round_trips(ids in prop::collection::vec(arb_id(), 1..40), key in arb_id()) {
        let mut o = Oracle::new();
        for &id in &ids {
            o.insert(id);
        }
        let before = o.root_of(key);
        let extra = Id(key.0 ^ 1);
        o.insert(extra);
        o.remove(extra);
        prop_assert_eq!(o.root_of(key), before);
    }

    #[test]
    fn delivered_plus_lost_never_exceeds_issued(
        lookups in prop::collection::vec((any::<u64>(), 0u64..1_000_000, any::<bool>()), 0..50)
    ) {
        let mut m = Metrics::new(0, 1_000_000, 10_000_000);
        m.set_active_delta(0, 1);
        for &(seq, issued_at, delivered) in &lookups {
            let id = LookupId { src: Id(1), seq };
            m.sight_lookup(id, issued_at);
            if delivered {
                m.on_delivered(issued_at + 100, id, issued_at, true, 1, 50);
            }
        }
        let r = m.finalize(100_000_000);
        prop_assert!(r.delivered + r.lost + r.censored <= r.issued);
        prop_assert!(r.loss_rate >= 0.0 && r.loss_rate <= 1.0);
        prop_assert!(r.incorrect_rate >= 0.0 && r.incorrect_rate <= 1.0);
    }

    #[test]
    fn window_traffic_sums_to_totals(sends in prop::collection::vec((0u64..10_000_000, 0usize..6), 0..200)) {
        let cats = [
            Category::DistanceProbe,
            Category::LeafSet,
            Category::RtProbe,
            Category::AckRetransmit,
            Category::Join,
            Category::Lookup,
        ];
        let mut m = Metrics::new(0, 1_000_000, 10_000_000);
        m.set_active_delta(0, 1);
        for &(t, c) in &sends {
            m.on_send(t, cats[c], 10);
        }
        let r = m.finalize(10_000_000);
        // Per-window per-category rates times window node-seconds must sum to
        // the whole-run totals.
        for c in 0..6 {
            let from_windows: f64 = r
                .windows
                .iter()
                .map(|w| w.per_category_per_node_per_sec[c] * 1.0 /* node */ * 1.0 /* s */)
                .sum();
            let total = r.totals_per_node_per_sec[c] * r.node_seconds;
            prop_assert!((from_windows - total).abs() < 1e-6,
                "category {c}: windows {from_windows} vs total {total}");
        }
    }

    #[test]
    fn active_integration_conserves_node_seconds(deltas in prop::collection::vec((1u64..9_999_999, -2i64..3), 1..40)) {
        let mut m = Metrics::new(0, 1_000_000, 10_000_000);
        let mut events: Vec<(u64, i64)> = deltas;
        events.sort();
        let mut active = 0i64;
        let mut last = 0u64;
        let mut expected = 0.0f64;
        for &(t, d) in &events {
            expected += active.max(0) as f64 * (t - last) as f64;
            m.set_active_delta(t, d);
            active = (active + d).max(0);
            last = t;
        }
        expected += active.max(0) as f64 * (10_000_000 - last) as f64;
        let r = m.finalize(10_000_000);
        prop_assert!(
            (r.node_seconds - expected / 1e6).abs() < 1e-6,
            "node-seconds {} vs expected {}",
            r.node_seconds,
            expected / 1e6
        );
    }
}
