//! The run-artifact JSON is a public interface: downstream tooling parses
//! it, so its shape must not drift silently. A fixed synthetic `Report` is
//! serialised and compared byte-for-byte against a checked-in golden file;
//! any intentional schema change regenerates it with `MSPASTRY_BLESS=1` (and
//! should bump `harness::RUN_SCHEMA`).

use harness::metrics::{Report, WindowReport, N_CATEGORIES};
use obs::JsonWriter;
use std::path::Path;

fn fixed_report() -> Report {
    Report {
        issued: 1000,
        delivered: 990,
        incorrect: 1,
        lost: 9,
        censored: 2,
        duplicates: 3,
        drop_reports: 11,
        incorrect_rate: 1.001001001001001e-3,
        loss_rate: 9.00900900900901e-3,
        mean_rdp: 1.75,
        mean_hops: 2.5,
        control_msgs_per_node_per_sec: 0.321,
        totals_per_node_per_sec: [0.1, 0.2, 0.3, 0.04, 0.005, 0.5],
        node_seconds: 123456.75,
        bytes_per_node_per_sec: 88.125,
        slow_deliveries: 4,
        join_latencies_us: vec![1_500_000, 2_000_000, 9_999_999],
        windows: vec![
            WindowReport {
                start_us: 0,
                rdp: 1.5,
                control_per_node_per_sec: 0.3,
                per_category_per_node_per_sec: [0.01, 0.02, 0.03, 0.04, 0.05, 0.06],
                mean_active_nodes: 60.5,
            },
            WindowReport {
                start_us: 600_000_000,
                rdp: 2.0,
                control_per_node_per_sec: 0.35,
                per_category_per_node_per_sec: [0.0; N_CATEGORIES],
                mean_active_nodes: 59.0,
            },
        ],
        fine_counts: vec![("Ack", 5000), ("LsProbe", 123)],
    }
}

#[test]
fn report_json_matches_golden_file() {
    let mut w = JsonWriter::new();
    harness::report_json(&mut w, &fixed_report());
    let got = w.finish();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    if std::env::var("MSPASTRY_BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing; regenerate with MSPASTRY_BLESS=1");
    assert_eq!(
        got, want,
        "Report JSON schema changed; if intentional, regenerate the golden \
         file with MSPASTRY_BLESS=1 and bump harness::RUN_SCHEMA"
    );
}

#[test]
fn run_schema_tag_is_stable() {
    assert_eq!(harness::RUN_SCHEMA, "mspastry-run/1");
}
