//! The flight recorder's promise: for any sampled lookup, the dumped events
//! reconstruct its complete hop-by-hop history. This drives a small lossy
//! run with full sampling and checks the reconstruction invariants on the
//! actual event stream.

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig};
use obs::HopKind;
use std::collections::BTreeMap;
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

#[test]
fn sampled_lookups_reconstruct_complete_hop_paths() {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 50.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 20 * MIN,
        seed: 11,
    });
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 6 * MIN;
    cfg.metrics_window_us = 5 * MIN;
    cfg.network_loss_rate = 0.03; // force retransmissions into the trace
    cfg.seed = 11;
    cfg.trace_sample_rate = 1.0;
    cfg.trace_capacity = 1 << 20;
    let res = run(cfg);
    assert_eq!(res.trace_overwritten, 0, "ring too small for this run");
    assert!(!res.trace_events.is_empty());

    // Group events by lookup identity.
    let mut by_lookup: BTreeMap<(u128, u64), Vec<&obs::HopEvent>> = BTreeMap::new();
    for ev in &res.trace_events {
        by_lookup.entry((ev.src, ev.seq)).or_default().push(ev);
    }

    let mut delivered_paths = 0u64;
    let mut retransmits_seen = 0u64;
    for ((src, _seq), evs) in &by_lookup {
        // The recorder is drained in recording order, so each lookup's
        // events must already be time-ordered.
        assert!(
            evs.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "events of one lookup out of order"
        );
        // Every lookup traced from birth starts with Issue at its source.
        if let Some(first) = evs.iter().find(|e| e.kind == HopKind::Issue) {
            assert_eq!(first.node, *src, "Issue event not at the source node");
            assert_eq!(first.hops, 0);
        }
        retransmits_seen += evs.iter().filter(|e| e.kind == HopKind::Retransmit).count() as u64;
        if let Some(del) = evs.iter().find(|e| e.kind == HopKind::Deliver) {
            // A delivered lookup's path is complete: an Issue, `hops`
            // forwards (counting same-root retransmissions once), then the
            // delivery. Each forward's hop counter increments from 1.
            let has_issue = evs.iter().any(|e| e.kind == HopKind::Issue);
            if !has_issue {
                continue; // issued before the trace window; partial by design
            }
            // Rerouted/retransmitted copies can repeat hop numbers or push a
            // doomed copy further than the delivering one, so the invariant
            // is coverage: every hop 1..=del.hops has a Forward event.
            let fw_hops: std::collections::BTreeSet<u32> = evs
                .iter()
                .filter(|e| e.kind == HopKind::Forward)
                .map(|e| e.hops)
                .collect();
            assert!(
                (1..=del.hops).all(|h| fw_hops.contains(&h)),
                "forward hop numbers {fw_hops:?} do not cover 1..={}",
                del.hops
            );
            // Timestamps and RTO state ride along on every forward.
            assert!(
                evs.iter()
                    .filter(|e| e.kind == HopKind::Forward)
                    .all(|e| e.detail_us > 0),
                "forward event missing its armed RTO"
            );
            delivered_paths += 1;
        }
    }
    assert!(
        delivered_paths > 50,
        "too few complete paths to be meaningful: {delivered_paths}"
    );
    assert!(
        retransmits_seen > 0,
        "3% loss must surface retransmit events"
    );

    // Deterministic sampling at a fractional rate: a lookup is either traced
    // at every node it touches or not at all, so halving the rate must yield
    // a subset of the full trace's lookups.
    let (events_half, _) = {
        let trace = poisson::trace(&PoissonParams {
            mean_nodes: 50.0,
            mean_session_us: 30.0 * 60e6,
            duration_us: 20 * MIN,
            seed: 11,
        });
        let mut cfg = RunConfig::new(trace);
        cfg.topology = TopologyKind::GaTechTiny;
        cfg.warmup_us = 6 * MIN;
        cfg.metrics_window_us = 5 * MIN;
        cfg.network_loss_rate = 0.03;
        cfg.seed = 11;
        cfg.trace_sample_rate = 0.5;
        cfg.trace_capacity = 1 << 20;
        let r = run(cfg);
        (r.trace_events, r.trace_overwritten)
    };
    assert!(!events_half.is_empty());
    assert!(events_half.len() < res.trace_events.len());
    for ev in &events_half {
        assert!(
            by_lookup.contains_key(&(ev.src, ev.seq)),
            "half-rate trace contains a lookup absent from the full trace"
        );
    }
}
