//! Membership-oracle integration tests: incorrect-delivery detection
//! against hand-built churn timelines.
//!
//! The oracle is the ground truth behind the paper's §5.2 incorrect-delivery
//! metric: a delivery is correct iff the delivering node is the active node
//! closest to the key *at the instant of delivery*. These tests replay
//! explicit join/leave/delivery timelines — no simulator involved — and
//! check the classification the runner would make at each point.

use harness::Oracle;
use mspastry::{Id, NodeId};

/// One membership or delivery event on a hand-built timeline.
enum Ev {
    Join(NodeId),
    Leave(NodeId),
    /// `deliver(key, at_node, expect_correct)`
    Deliver(NodeId, NodeId, bool),
}
use Ev::{Deliver, Join, Leave};

/// Replays the timeline in order, asserting each delivery's classification.
fn replay(timeline: &[Ev]) {
    let mut oracle = Oracle::new();
    for (i, ev) in timeline.iter().enumerate() {
        match *ev {
            Join(id) => oracle.insert(id),
            Leave(id) => oracle.remove(id),
            Deliver(key, node, expect_correct) => {
                let correct = oracle.root_of(key) == Some(node);
                assert_eq!(
                    correct,
                    expect_correct,
                    "step {i}: delivery of {key} at {node} (true root {:?})",
                    oracle.root_of(key)
                );
            }
        }
    }
}

#[test]
fn churn_moves_the_root_and_flips_classification() {
    // Node 100 starts as the root of key 140. A closer node (150) joins and
    // takes over; deliveries still landing at 100 — e.g. routed through
    // stale routing state — become incorrect until 150 fails, at which
    // point 100 is the true root again.
    replay(&[
        Join(Id(100)),
        Join(Id(400)),
        Deliver(Id(140), Id(100), true),
        Join(Id(150)),                    // closer to 140 than 100 is
        Deliver(Id(140), Id(100), false), // stale delivery at the old root
        Deliver(Id(140), Id(150), true),
        Leave(Id(150)),                  // the usurper fails
        Deliver(Id(140), Id(100), true), // responsibility falls back
    ]);
}

#[test]
fn a_failed_root_cannot_deliver_correctly() {
    // After a node fails, deliveries attributed to it are always incorrect
    // even if no other node is closer: the root must be *active*.
    replay(&[
        Join(Id(1_000)),
        Join(Id(2_000)),
        Deliver(Id(1_001), Id(1_000), true),
        Leave(Id(1_000)),
        Deliver(Id(1_001), Id(1_000), false), // delivered by a dead node
        Deliver(Id(1_001), Id(2_000), true),  // the survivor is now root
    ]);
}

#[test]
fn responsibility_wraps_across_the_ring_under_churn() {
    // Keys near 0 wrap: with members at MAX-5 and 30, key 2 is 7 away from
    // MAX-5 (counter-clockwise) and 28 away from 30, so the high node owns
    // it — until it leaves.
    replay(&[
        Join(Id(u128::MAX - 5)),
        Join(Id(30)),
        Deliver(Id(2), Id(u128::MAX - 5), true),
        Deliver(Id(2), Id(30), false),
        Leave(Id(u128::MAX - 5)),
        Deliver(Id(2), Id(30), true),
    ]);
}

#[test]
fn equidistant_keys_tie_towards_the_smaller_id() {
    // Key 125 is exactly 25 from both 100 and 150; the protocol breaks the
    // tie towards the numerically smaller identifier, and the oracle must
    // agree or correct deliveries would be misclassified.
    replay(&[
        Join(Id(100)),
        Join(Id(150)),
        Deliver(Id(125), Id(100), true),
        Deliver(Id(125), Id(150), false),
        Leave(Id(100)),
        Deliver(Id(125), Id(150), true),
    ]);
}

#[test]
fn rejoining_node_resumes_responsibility() {
    // A node that leaves and later rejoins (same identifier, new session)
    // must immediately count as the root again — the oracle tracks the
    // *current* membership, not session history.
    replay(&[
        Join(Id(500)),
        Join(Id(900)),
        Deliver(Id(510), Id(500), true),
        Leave(Id(500)),
        Deliver(Id(510), Id(900), true),
        Join(Id(500)), // rejoin
        Deliver(Id(510), Id(500), true),
        Deliver(Id(510), Id(900), false),
    ]);
}

#[test]
fn random_churn_matches_brute_force_classification() {
    // Drive the oracle through 2000 random join/leave/deliver steps and
    // cross-check every delivery classification against a brute-force scan
    // of the live membership list.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(42);
    let mut oracle = Oracle::new();
    let mut live: Vec<Id> = Vec::new();
    let mut deliveries = 0;
    for step in 0..2000 {
        match rng.gen_range(0..3) {
            0 => {
                let id = Id::random(&mut rng);
                oracle.insert(id);
                live.push(id);
            }
            1 if !live.is_empty() => {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                oracle.remove(id);
            }
            _ if !live.is_empty() => {
                let key = Id::random(&mut rng);
                // The node the overlay "delivered at": usually the true
                // root, sometimes a random live node (stale routing).
                let node = live[rng.gen_range(0..live.len())];
                let brute = live
                    .iter()
                    .copied()
                    .reduce(|a, b| mspastry::id::closer_to(key, a, b));
                let correct = oracle.root_of(key) == Some(node);
                assert_eq!(
                    correct,
                    brute == Some(node),
                    "step {step}: oracle and brute force disagree on {key}"
                );
                deliveries += 1;
            }
            _ => {}
        }
        assert_eq!(oracle.len(), live.len(), "step {step}: membership drift");
    }
    assert!(deliveries > 300, "workload actually exercised deliveries");
}
