//! The simulator is a measurement instrument: every figure in the paper
//! reproduction depends on runs being exactly repeatable. This test pins the
//! property end to end — same `RunConfig`, same seed, twice, field-for-field
//! identical `Report`s — so hot-path changes (event queue, hashing, buffer
//! reuse) cannot silently perturb event order.

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig};
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

fn cfg(seed: u64) -> RunConfig {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 60.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 25 * MIN,
        seed,
    });
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 8 * MIN;
    cfg.metrics_window_us = 5 * MIN;
    cfg.network_loss_rate = 0.02; // exercise drop/retransmit paths too
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_configs_produce_identical_reports() {
    for seed in [3, 17] {
        let a = run(cfg(seed));
        let b = run(cfg(seed));
        assert!(
            a.report.issued > 100,
            "workload too small to be meaningful: issued {}",
            a.report.issued
        );
        assert_eq!(a.report, b.report, "seed {seed}: reports diverged");
        assert_eq!(
            a.deliveries.len(),
            b.deliveries.len(),
            "seed {seed}: delivery records diverged"
        );
    }
}
