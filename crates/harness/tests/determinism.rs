//! The simulator is a measurement instrument: every figure in the paper
//! reproduction depends on runs being exactly repeatable. This test pins the
//! property end to end — same `RunConfig`, same seed, twice, field-for-field
//! identical `Report`s — so hot-path changes (event queue, hashing, buffer
//! reuse) cannot silently perturb event order.

use churn::poisson::{self, PoissonParams};
use harness::{run, RunConfig};
use topology::TopologyKind;

const MIN: u64 = 60 * 1_000_000;

fn cfg(seed: u64) -> RunConfig {
    let trace = poisson::trace(&PoissonParams {
        mean_nodes: 60.0,
        mean_session_us: 30.0 * 60e6,
        duration_us: 25 * MIN,
        seed,
    });
    let mut cfg = RunConfig::new(trace);
    cfg.topology = TopologyKind::GaTechTiny;
    cfg.warmup_us = 8 * MIN;
    cfg.metrics_window_us = 5 * MIN;
    cfg.network_loss_rate = 0.02; // exercise drop/retransmit paths too
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_configs_produce_identical_reports() {
    for seed in [3, 17] {
        let a = run(cfg(seed));
        let b = run(cfg(seed));
        assert!(
            a.report.issued > 100,
            "workload too small to be meaningful: issued {}",
            a.report.issued
        );
        assert_eq!(a.report, b.report, "seed {seed}: reports diverged");
        assert_eq!(
            a.deliveries.len(),
            b.deliveries.len(),
            "seed {seed}: delivery records diverged"
        );
    }
}

/// The observability layer is part of the instrument: the diagnostic
/// registry snapshot, the full hop-trace event stream (serialised to the
/// JSONL wire format, byte for byte), and the run artifact JSON must all be
/// identical across repeated runs — tracing must not perturb the simulation,
/// and the artifacts themselves must be reproducible.
#[test]
fn trace_and_artifacts_are_bit_identical_across_runs() {
    let with_trace = |seed| {
        let mut c = cfg(seed);
        c.trace_sample_rate = 1.0;
        c
    };
    let a = run(with_trace(5));
    let b = run(with_trace(5));
    assert!(
        a.trace_events.len() > 500,
        "trace too small to be meaningful: {} events",
        a.trace_events.len()
    );
    assert_eq!(a.diag, b.diag, "registry snapshots diverged");
    assert_eq!(
        obs::trace_jsonl(&a.trace_events),
        obs::trace_jsonl(&b.trace_events),
        "hop-trace JSONL streams diverged"
    );
    assert_eq!(a.trace_overwritten, b.trace_overwritten);
    assert_eq!(
        harness::run_json(&a),
        harness::run_json(&b),
        "run artifacts diverged"
    );

    // Tracing must be an observer: the same run without tracing produces the
    // same Report.
    let untraced = run(cfg(5));
    assert_eq!(
        a.report, untraced.report,
        "tracing perturbed the simulation"
    );
}

/// Live telemetry (the interval sampler and the self-profiler) must also be
/// a pure observer: with `--timeseries` and `--profile` on, the hop trace
/// and the `mspastry-run/1` artifact — minus the telemetry-only `prof` and
/// `timeseries` members — are bit-identical to a run without them, and the
/// time series itself is deterministic across repeated runs.
#[test]
fn telemetry_is_a_pure_observer() {
    let with_telemetry = |seed| {
        let mut c = cfg(seed);
        c.trace_sample_rate = 1.0;
        c.ts_interval_us = MIN;
        c.profile = true;
        c
    };
    let plain = {
        let mut c = cfg(9);
        c.trace_sample_rate = 1.0;
        run(c)
    };
    let telem = run(with_telemetry(9));

    // Strip the telemetry-only members; everything else must match byte for
    // byte, including the hop-trace stream.
    let mut stripped = telem.clone();
    stripped.timeseries = None;
    stripped.prof = None;
    assert_eq!(
        harness::run_json(&stripped),
        harness::run_json(&plain),
        "telemetry perturbed the run artifact"
    );
    assert_eq!(
        obs::trace_jsonl(&telem.trace_events),
        obs::trace_jsonl(&plain.trace_events),
        "telemetry perturbed the hop trace"
    );
    assert_eq!(telem.diag, plain.diag, "telemetry perturbed the registry");

    // The series artifact itself is reproducible.
    let telem2 = run(with_telemetry(9));
    let ts = telem.timeseries.as_ref().expect("sampler ran");
    let ts2 = telem2.timeseries.as_ref().expect("sampler ran");
    assert!(ts.len() > 10, "series too small to be meaningful");
    assert_eq!(
        obs::ts_jsonl(ts),
        obs::ts_jsonl(ts2),
        "time-series artifacts diverged"
    );
}
