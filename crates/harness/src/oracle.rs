//! Global membership oracle for consistency checking.
//!
//! The oracle tracks the set of *active* overlay nodes (alive and past their
//! join) and answers "who is the true root of this key right now?". A lookup
//! delivery is *correct* iff the delivering node is the oracle root at the
//! instant of delivery (§5.2's incorrect-delivery metric).

use mspastry::{Id, Key, NodeId};
use std::collections::BTreeSet;

/// The set of currently active node identifiers.
#[derive(Debug, Default, Clone)]
pub struct Oracle {
    ids: BTreeSet<u128>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a node active.
    pub fn insert(&mut self, id: NodeId) {
        self.ids.insert(id.0);
    }

    /// Marks a node inactive (failed or departed).
    pub fn remove(&mut self, id: NodeId) {
        self.ids.remove(&id.0);
    }

    /// `true` if the node is currently active.
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids.contains(&id.0)
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no nodes are active.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The key's current root: the active node whose identifier is
    /// numerically closest to the key modulo 2^128 (ties towards the smaller
    /// identifier, matching the protocol's tie-break).
    pub fn root_of(&self, key: Key) -> Option<NodeId> {
        if self.ids.is_empty() {
            return None;
        }
        // Successor (clockwise) candidate: the first id >= key, wrapping.
        let succ = self
            .ids
            .range(key.0..)
            .next()
            .or_else(|| self.ids.iter().next())
            .copied()
            .unwrap();
        // Predecessor (counter-clockwise) candidate: the last id <= key,
        // wrapping.
        let pred = self
            .ids
            .range(..=key.0)
            .next_back()
            .or_else(|| self.ids.iter().next_back())
            .copied()
            .unwrap();
        Some(mspastry::id::closer_to(key, Id(pred), Id(succ)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_oracle_has_no_root() {
        assert_eq!(Oracle::new().root_of(Id(5)), None);
    }

    #[test]
    fn root_is_numerically_closest() {
        let mut o = Oracle::new();
        o.insert(Id(100));
        o.insert(Id(200));
        o.insert(Id(1000));
        assert_eq!(o.root_of(Id(140)), Some(Id(100)));
        assert_eq!(o.root_of(Id(160)), Some(Id(200)));
        assert_eq!(o.root_of(Id(601)), Some(Id(1000)));
        assert_eq!(o.root_of(Id(200)), Some(Id(200)));
    }

    #[test]
    fn root_wraps_around_the_ring() {
        let mut o = Oracle::new();
        o.insert(Id(10));
        o.insert(Id(u128::MAX - 10));
        // A key just below the wrap point is closest to MAX-10; a key at 0 is
        // closest to 10? dist(0, 10) = 10, dist(0, MAX-10) = 11 → root 10.
        assert_eq!(o.root_of(Id(0)), Some(Id(10)));
        assert_eq!(o.root_of(Id(u128::MAX)), Some(Id(u128::MAX - 10)));
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut o = Oracle::new();
        let ids: Vec<Id> = (0..200).map(|_| Id::random(&mut rng)).collect();
        for &id in &ids {
            o.insert(id);
        }
        for _ in 0..500 {
            let key = Id::random(&mut rng);
            let brute = ids
                .iter()
                .copied()
                .reduce(|a, b| mspastry::id::closer_to(key, a, b))
                .unwrap();
            assert_eq!(o.root_of(key), Some(brute));
        }
    }

    #[test]
    fn removal_changes_the_root() {
        let mut o = Oracle::new();
        o.insert(Id(100));
        o.insert(Id(105));
        assert_eq!(o.root_of(Id(104)), Some(Id(105)));
        o.remove(Id(105));
        assert_eq!(o.root_of(Id(104)), Some(Id(100)));
        assert!(!o.contains(Id(105)));
        assert_eq!(o.len(), 1);
    }
}
