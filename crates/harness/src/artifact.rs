//! Machine-readable run artifacts.
//!
//! Serialises a [`RunResult`] — the §5.2 [`Report`] with its per-window
//! series, the run's diagnostic registry snapshot, and a hop-trace summary —
//! as a single JSON document (schema tag `mspastry-run/1`), plus the sampled
//! hop trace itself as JSONL. Both writers are deterministic: the same run
//! produces byte-identical artifacts.

use crate::metrics::{Report, WindowReport, CATEGORY_NAMES};
use crate::runner::RunResult;
use obs::JsonWriter;

/// Schema identifier stamped into every run artifact; bump on any
/// backwards-incompatible change to the document shape.
pub const RUN_SCHEMA: &str = "mspastry-run/1";

/// Writes one [`WindowReport`] as a JSON object.
fn window_json(w: &mut JsonWriter, win: &WindowReport) {
    w.begin_object();
    w.field_u64("start_us", win.start_us)
        .field_f64("rdp", win.rdp)
        .field_f64("control_per_node_per_sec", win.control_per_node_per_sec)
        .field_f64("mean_active_nodes", win.mean_active_nodes);
    w.key("per_category_per_node_per_sec").begin_object();
    for (name, v) in CATEGORY_NAMES.iter().zip(win.per_category_per_node_per_sec) {
        w.key(name).f64(v);
    }
    w.end_object();
    w.end_object();
}

/// Writes a [`Report`] as a JSON object: every scalar metric, the
/// per-category traffic breakdown, the join-latency samples, the per-window
/// time series and the fine-grained message counts.
pub fn report_json(w: &mut JsonWriter, r: &Report) {
    w.begin_object();
    w.field_u64("issued", r.issued)
        .field_u64("delivered", r.delivered)
        .field_u64("incorrect", r.incorrect)
        .field_u64("lost", r.lost)
        .field_u64("censored", r.censored)
        .field_u64("duplicates", r.duplicates)
        .field_u64("drop_reports", r.drop_reports)
        .field_f64("incorrect_rate", r.incorrect_rate)
        .field_f64("loss_rate", r.loss_rate)
        .field_f64("mean_rdp", r.mean_rdp)
        .field_f64("mean_hops", r.mean_hops)
        .field_f64(
            "control_msgs_per_node_per_sec",
            r.control_msgs_per_node_per_sec,
        )
        .field_f64("node_seconds", r.node_seconds)
        .field_f64("bytes_per_node_per_sec", r.bytes_per_node_per_sec)
        .field_u64("slow_deliveries", r.slow_deliveries);
    w.key("totals_per_node_per_sec").begin_object();
    for (name, v) in CATEGORY_NAMES.iter().zip(r.totals_per_node_per_sec) {
        w.key(name).f64(v);
    }
    w.end_object();
    w.key("join_latencies_us").begin_array();
    for &l in &r.join_latencies_us {
        w.u64(l);
    }
    w.end_array();
    w.key("windows").begin_array();
    for win in &r.windows {
        window_json(w, win);
    }
    w.end_array();
    w.key("fine_counts").begin_object();
    for &(name, n) in &r.fine_counts {
        w.key(name).u64(n);
    }
    w.end_object();
    w.end_object();
}

/// Serialises a complete [`RunResult`] as one JSON document.
///
/// Top-level members: `schema` ([`RUN_SCHEMA`]), `run` (trace/topology and
/// end-of-run overlay state), `report` ([`report_json`]), `diag` (the
/// registry snapshot: counters and histograms) and `trace` (hop-trace
/// summary — the events themselves are a separate JSONL artifact, see
/// [`obs::trace_jsonl`]). When the corresponding collectors ran, two more
/// members follow: `timeseries` (sampling summary — the series itself is a
/// separate `mspastry-ts/1` JSONL artifact, see [`obs::ts_jsonl`]) and
/// `prof` (the run-loop self-profile; wall-clock based, so excluded from
/// the bit-identical artifact guarantee).
pub fn run_json(res: &RunResult) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", RUN_SCHEMA);
    w.key("run").begin_object();
    w.field_str("trace", &res.trace_name)
        .field_str("topology", res.topology_name)
        .field_u64("final_active", res.final_active as u64)
        .field_f64("mean_t_rt_us", res.mean_t_rt_us)
        .field_u64("sim_events", res.sim_events)
        .field_u64("skipped_scripted", res.skipped_scripted)
        .field_u64("ring_defects", res.ring_defects)
        .field_f64("rt_unknown_fraction", res.rt_unknown_fraction)
        .field_f64("rt_mean_distance_us", res.rt_mean_distance_us);
    w.end_object();
    w.key("report");
    report_json(&mut w, &res.report);
    w.key("diag");
    obs::snapshot_json(&mut w, &res.diag);
    w.key("trace").begin_object();
    w.field_u64("events", res.trace_events.len() as u64)
        .field_u64("overwritten", res.trace_overwritten);
    w.end_object();
    // Telemetry members are emitted only when their collector ran, so the
    // document (and the golden artifact test) is unchanged with telemetry
    // off, and stripping these members recovers the deterministic core.
    if let Some(ts) = &res.timeseries {
        w.key("timeseries").begin_object();
        w.field_str("schema", obs::TS_SCHEMA)
            .field_u64("interval_us", ts.interval_us())
            .field_u64("windows", ts.len() as u64)
            .field_u64("dropped", ts.dropped());
        w.end_object();
    }
    if let Some(p) = &res.prof {
        w.key("prof");
        obs::prof_json(&mut w, p);
    }
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> Report {
        Report {
            issued: 10,
            delivered: 9,
            incorrect: 0,
            lost: 1,
            censored: 0,
            duplicates: 0,
            drop_reports: 2,
            incorrect_rate: 0.0,
            loss_rate: 0.1,
            mean_rdp: 1.5,
            mean_hops: 2.25,
            control_msgs_per_node_per_sec: 0.5,
            totals_per_node_per_sec: [0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            node_seconds: 1000.0,
            bytes_per_node_per_sec: 42.0,
            slow_deliveries: 0,
            join_latencies_us: vec![100, 200],
            windows: vec![WindowReport {
                start_us: 0,
                rdp: 1.5,
                control_per_node_per_sec: 0.5,
                per_category_per_node_per_sec: [0.0; crate::metrics::N_CATEGORIES],
                mean_active_nodes: 30.0,
            }],
            fine_counts: vec![("Ack", 12)],
        }
    }

    #[test]
    fn report_json_has_all_members() {
        let mut w = JsonWriter::new();
        report_json(&mut w, &tiny_report());
        let s = w.finish();
        for key in [
            "issued",
            "delivered",
            "incorrect",
            "lost",
            "censored",
            "duplicates",
            "drop_reports",
            "incorrect_rate",
            "loss_rate",
            "mean_rdp",
            "mean_hops",
            "control_msgs_per_node_per_sec",
            "node_seconds",
            "bytes_per_node_per_sec",
            "slow_deliveries",
            "totals_per_node_per_sec",
            "join_latencies_us",
            "windows",
            "fine_counts",
        ] {
            assert!(s.contains(&format!("\"{key}\":")), "missing {key} in {s}");
        }
        assert!(s.contains("\"join_latencies_us\":[100,200]"));
        assert!(s.contains("\"lookups\":0.6"));
    }

    #[test]
    fn report_json_is_deterministic() {
        let r = tiny_report();
        let mut a = JsonWriter::new();
        report_json(&mut a, &r);
        let mut b = JsonWriter::new();
        report_json(&mut b, &r);
        assert_eq!(a.finish(), b.finish());
    }
}
