//! Declarative experiments: the scenario engine.
//!
//! Every result in the paper's §5 has one shape — pick a topology, a churn
//! trace, a workload and a parameter point; run; window the metrics. A
//! [`Scenario`] captures that shape declaratively: it names an experiment
//! and expands, for a given [`Scale`], into labelled [`ScenarioPoint`]s,
//! each of which builds a concrete [`RunConfig`] for any seed index. The
//! [`Registry`] maps experiment names (`fig4_traces`, `exp_ablation`, ...)
//! to scenarios so benches, the `mspastry-sim` CLI and the examples all
//! launch the *same* configurations from one code path; the companion
//! [`crate::sweep`] module executes a scenario's (point × seed) grid across
//! worker threads.
//!
//! # Seed indices
//!
//! Scenario builders take a *seed index*, not a raw RNG seed. Index 0
//! reproduces the published configuration of the corresponding bench
//! bit-for-bit (same churn-trace seeds, same run seeds); index `k` shifts
//! every churn-trace seed by `k *` [`SEED_TRACE_STRIDE`] and every run seed
//! by `k *` [`SEED_RUN_STRIDE`], giving statistically independent repeats
//! that remain fully deterministic.

use crate::runner::{RunConfig, Workload};
use churn::gnutella::GnutellaParams;
use churn::microsoft::MicrosoftParams;
use churn::overnet::OvernetParams;
use churn::poisson::PoissonParams;
use churn::Trace;
use topology::TopologyKind;

/// One minute in microseconds.
pub const MIN: u64 = 60 * 1_000_000;
/// One hour in microseconds.
pub const HOUR: u64 = 60 * MIN;

/// Offset applied to every churn-trace seed per seed index (see the module
/// docs on seed indices).
pub const SEED_TRACE_STRIDE: u64 = 1_000;
/// Offset applied to every run seed (`RunConfig::seed`) per seed index.
pub const SEED_RUN_STRIDE: u64 = 100_000;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down runs (default; minutes of wall time).
    Quick,
    /// Paper-scale runs (hours of wall time).
    Full,
}

impl Scale {
    /// Lower-case name (`quick`/`full`), used in artifact file names.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Reads the scale from `MSPASTRY_SCALE` (`quick`/`full`).
pub fn scale() -> Scale {
    match std::env::var("MSPASTRY_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// The Gnutella-like trace at the given scale and seed index.
pub fn gnutella_trace_seeded(s: Scale, seed: u64) -> Trace {
    let shift = seed * SEED_TRACE_STRIDE;
    match s {
        Scale::Full => churn::gnutella::trace(&GnutellaParams {
            seed: GnutellaParams::default().seed + shift,
            ..Default::default()
        }),
        Scale::Quick => churn::gnutella::trace(&GnutellaParams {
            population_scale: 0.1,
            duration_us: 24 * HOUR,
            seed: GnutellaParams::default().seed + shift,
        }),
    }
}

/// The Gnutella-like trace at the given scale (seed index 0).
pub fn gnutella_trace(s: Scale) -> Trace {
    gnutella_trace_seeded(s, 0)
}

/// The OverNet-like trace at the given scale and seed index.
pub fn overnet_trace_seeded(s: Scale, seed: u64) -> Trace {
    let shift = seed * SEED_TRACE_STRIDE;
    match s {
        Scale::Full => churn::overnet::trace(&OvernetParams {
            seed: OvernetParams::default().seed + shift,
            ..Default::default()
        }),
        Scale::Quick => churn::overnet::trace(&OvernetParams {
            population_scale: 0.4,
            duration_us: 24 * HOUR,
            seed: OvernetParams::default().seed + shift,
        }),
    }
}

/// The OverNet-like trace at the given scale (seed index 0).
pub fn overnet_trace(s: Scale) -> Trace {
    overnet_trace_seeded(s, 0)
}

/// The Microsoft-corporate-like trace at the given scale and seed index.
pub fn microsoft_trace_seeded(s: Scale, seed: u64) -> Trace {
    let shift = seed * SEED_TRACE_STRIDE;
    match s {
        Scale::Full => churn::microsoft::trace(&MicrosoftParams {
            seed: MicrosoftParams::default().seed + shift,
            ..Default::default()
        }),
        Scale::Quick => churn::microsoft::trace(&MicrosoftParams {
            population_scale: 0.012,
            duration_us: 48 * HOUR,
            seed: MicrosoftParams::default().seed + shift,
        }),
    }
}

/// The Microsoft-corporate-like trace at the given scale (seed index 0).
pub fn microsoft_trace(s: Scale) -> Trace {
    microsoft_trace_seeded(s, 0)
}

/// A short Gnutella-like trace for parameter sweeps (many runs). `point` is
/// the per-point seed offset the legacy benches used; `seed` is the sweep
/// seed index.
pub fn gnutella_sweep_trace_seeded(s: Scale, point: u64, seed: u64) -> Trace {
    let p = point + seed * SEED_TRACE_STRIDE;
    match s {
        Scale::Full => churn::gnutella::trace(&GnutellaParams {
            seed: 101 + p,
            ..Default::default()
        }),
        Scale::Quick => churn::gnutella::trace(&GnutellaParams {
            population_scale: 0.08,
            duration_us: 2 * HOUR,
            seed: 101 + p,
        }),
    }
}

/// A short Gnutella-like sweep trace (seed index 0).
pub fn gnutella_sweep_trace(s: Scale, point: u64) -> Trace {
    gnutella_sweep_trace_seeded(s, point, 0)
}

/// The GATech topology at the given scale.
pub fn gatech(s: Scale) -> TopologyKind {
    match s {
        Scale::Full => TopologyKind::GaTech,
        Scale::Quick => TopologyKind::GaTechSmall,
    }
}

/// The base configuration of §5.1 around a trace.
///
/// Quick mode shortens the routing-table maintenance period from the paper's
/// 20 minutes to 5: PNS converges through maintenance gossip *rounds*, and a
/// quick trace is ~25x shorter than the paper's 60-hour runs, so the round
/// count — not the wall-clock period — is what must be preserved.
pub fn base_config(s: Scale, trace: Trace) -> RunConfig {
    let mut cfg = RunConfig::new(trace);
    cfg.topology = gatech(s);
    if s == Scale::Quick {
        cfg.protocol.rt_maintenance_period_us = 5 * MIN;
    }
    cfg
}

/// Applies the standard seed-index shift to a run configuration.
fn shift_run_seed(cfg: &mut RunConfig, seed: u64) {
    cfg.seed += seed * SEED_RUN_STRIDE;
}

/// One runnable parameter point of a scenario: a label (the sweep-axis
/// value, e.g. `l=16`) plus a builder producing the point's [`RunConfig`]
/// for any seed index.
pub struct ScenarioPoint {
    /// Point label; doubles as the artifact row key.
    pub label: String,
    /// Builds the run configuration for one seed index.
    pub build: Box<dyn Fn(u64) -> RunConfig + Send + Sync>,
}

impl ScenarioPoint {
    /// Creates a point from a label and builder closure.
    pub fn new(
        label: impl Into<String>,
        build: impl Fn(u64) -> RunConfig + Send + Sync + 'static,
    ) -> Self {
        ScenarioPoint {
            label: label.into(),
            build: Box::new(build),
        }
    }
}

impl std::fmt::Debug for ScenarioPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioPoint")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// A named, declarative experiment: expands into parameter points at a
/// given scale. The `points` member is a plain function pointer so
/// registries are cheap, `'static`, and constructible from any crate
/// (higher layers register scenarios whose builders need application code —
/// e.g. the Squirrel workload).
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry name (also the artifact file stem), e.g. `fig6_loss`.
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The paper figure/section this scenario reproduces, e.g. `Fig. 6`.
    pub figure: &'static str,
    /// Expands the scenario into its parameter points at a scale.
    pub points: fn(Scale) -> Vec<ScenarioPoint>,
}

impl Scenario {
    /// The scenario's points at `scale`.
    pub fn expand(&self, scale: Scale) -> Vec<ScenarioPoint> {
        (self.points)(scale)
    }
}

/// A name → [`Scenario`] registry.
///
/// [`Registry::builtin`] holds every experiment expressible from the
/// harness layer (fig3–fig7, the §5.3 text experiments, the graceful-leave
/// extension and the CI smoke run); application-backed scenarios
/// (`fig8_squirrel`, `exp_replication`) are added by the `bench` crate via
/// [`Registry::register`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in scenarios, in paper order.
    pub fn builtin() -> Self {
        let mut r = Registry::new();
        for s in BUILTIN {
            r.register(*s);
        }
        r
    }

    /// Adds (or replaces, by name) a scenario.
    pub fn register(&mut self, s: Scenario) {
        if let Some(existing) = self.scenarios.iter_mut().find(|e| e.name == s.name) {
            *existing = s;
        } else {
            self.scenarios.push(s);
        }
    }

    /// Looks up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }
}

/// The built-in scenario table (see [`Registry::builtin`]).
static BUILTIN: &[Scenario] = &[
    Scenario {
        name: "smoke",
        title: "30-minute Gnutella smoke run (~60 nodes): CI and quick sanity checks",
        figure: "CI",
        points: smoke_points,
    },
    Scenario {
        name: "fig3_failure_rates",
        title: "the three real-world churn traces under the base configuration",
        figure: "Fig. 3",
        points: fig3_points,
    },
    Scenario {
        name: "fig4_traces",
        title: "RDP and control traffic vs normalized time for the three traces",
        figure: "Fig. 4",
        points: fig4_points,
    },
    Scenario {
        name: "fig5_sessions",
        title: "Poisson traces: mean session time sweep (5..600 minutes)",
        figure: "Fig. 5",
        points: fig5_points,
    },
    Scenario {
        name: "fig6_loss",
        title: "uniform network message loss sweep (0..5%), Gnutella trace",
        figure: "Fig. 6",
        points: fig6_points,
    },
    Scenario {
        name: "fig7_params",
        title: "leaf-set size l and digit width b sweeps, Gnutella trace",
        figure: "Fig. 7",
        points: fig7_points,
    },
    Scenario {
        name: "exp_topology",
        title: "Gnutella trace on the CorpNet, GATech and Mercator topologies",
        figure: "§5.3 table",
        points: exp_topology_points,
    },
    Scenario {
        name: "exp_ablation",
        title: "per-hop acks and active probing on/off, plus the low-traffic delay contribution",
        figure: "§5.3 text",
        points: exp_ablation_points,
    },
    Scenario {
        name: "exp_selftuning",
        title: "achieved raw loss vs self-tuning target (per-hop acks off)",
        figure: "§5.3 text",
        points: exp_selftuning_points,
    },
    Scenario {
        name: "exp_suppression",
        title: "liveness-probe suppression by application traffic",
        figure: "§5.3 text",
        points: exp_suppression_points,
    },
    Scenario {
        name: "exp_leave",
        title: "graceful-leave extension: announced departures vs silent crashes",
        figure: "extension",
        points: exp_leave_points,
    },
];

fn smoke_points(s: Scale) -> Vec<ScenarioPoint> {
    vec![ScenarioPoint::new("smoke", move |seed| {
        let trace = churn::gnutella::trace(&GnutellaParams {
            population_scale: 0.03,
            duration_us: 30 * MIN,
            seed: 101 + seed * SEED_TRACE_STRIDE,
        });
        let mut cfg = base_config(s, trace);
        cfg.topology = TopologyKind::GaTechSmall;
        shift_run_seed(&mut cfg, seed);
        cfg
    })]
}

/// The three real-world traces under the base configuration. Shared by the
/// fig3 and fig4 scenarios (fig4 additionally widens the Microsoft metrics
/// window to an hour, matching the paper's plots).
fn trace_triple_points(s: Scale, microsoft_hour_windows: bool) -> Vec<ScenarioPoint> {
    let mut pts = vec![
        ScenarioPoint::new("Gnutella", move |seed| {
            let mut cfg = base_config(s, gnutella_trace_seeded(s, seed));
            shift_run_seed(&mut cfg, seed);
            cfg
        }),
        ScenarioPoint::new("OverNet", move |seed| {
            let mut cfg = base_config(s, overnet_trace_seeded(s, seed));
            shift_run_seed(&mut cfg, seed);
            cfg
        }),
    ];
    pts.push(ScenarioPoint::new("Microsoft", move |seed| {
        let mut cfg = base_config(s, microsoft_trace_seeded(s, seed));
        if microsoft_hour_windows {
            cfg.metrics_window_us = HOUR;
        }
        shift_run_seed(&mut cfg, seed);
        cfg
    }));
    pts
}

fn fig3_points(s: Scale) -> Vec<ScenarioPoint> {
    trace_triple_points(s, false)
}

fn fig4_points(s: Scale) -> Vec<ScenarioPoint> {
    trace_triple_points(s, true)
}

/// Session-minute values swept by the fig5 scenario.
pub const FIG5_SESSION_MINUTES: [u64; 6] = PoissonParams::SESSION_MINUTES;

fn fig5_points(s: Scale) -> Vec<ScenarioPoint> {
    let (mean_nodes, duration) = match s {
        Scale::Full => (10_000.0, 4 * HOUR),
        Scale::Quick => (150.0, 75 * MIN),
    };
    FIG5_SESSION_MINUTES
        .iter()
        .map(|&minutes| {
            ScenarioPoint::new(format!("{minutes}min"), move |seed| {
                let trace = churn::poisson::trace(&PoissonParams {
                    mean_nodes,
                    mean_session_us: minutes as f64 * 60e6,
                    duration_us: duration,
                    seed: 404 + minutes + seed * SEED_TRACE_STRIDE,
                });
                let mut cfg = RunConfig::new(trace);
                cfg.topology = gatech(s);
                cfg.warmup_us = 15 * MIN;
                cfg.metrics_window_us = 5 * MIN;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

/// Loss rates swept by the fig6 scenario.
pub const FIG6_LOSS_RATES: [f64; 6] = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05];

fn fig6_points(s: Scale) -> Vec<ScenarioPoint> {
    FIG6_LOSS_RATES
        .iter()
        .enumerate()
        .map(|(i, &loss)| {
            ScenarioPoint::new(format!("loss={:.0}%", loss * 100.0), move |seed| {
                let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, i as u64, seed));
                cfg.network_loss_rate = loss;
                cfg.seed = 1000 + i as u64;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

/// Leaf-set sizes swept by the fig7 scenario.
pub const FIG7_LEAF_SET_SIZES: [usize; 5] = [8, 16, 32, 48, 64];
/// Digit widths swept by the fig7 scenario.
pub const FIG7_DIGIT_WIDTHS: [u8; 5] = [1, 2, 3, 4, 5];

fn fig7_points(s: Scale) -> Vec<ScenarioPoint> {
    let mut pts = Vec::new();
    for (i, &l) in FIG7_LEAF_SET_SIZES.iter().enumerate() {
        pts.push(ScenarioPoint::new(format!("l={l}"), move |seed| {
            let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 10 + i as u64, seed));
            cfg.protocol.leaf_set_size = l;
            cfg.seed = 2000 + i as u64;
            shift_run_seed(&mut cfg, seed);
            cfg
        }));
    }
    for (i, &b) in FIG7_DIGIT_WIDTHS.iter().enumerate() {
        pts.push(ScenarioPoint::new(format!("b={b}"), move |seed| {
            let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 20 + i as u64, seed));
            cfg.protocol.b = b;
            cfg.seed = 3000 + i as u64;
            shift_run_seed(&mut cfg, seed);
            cfg
        }));
    }
    pts
}

fn exp_topology_points(s: Scale) -> Vec<ScenarioPoint> {
    let topologies: [(&str, TopologyKind); 3] = match s {
        Scale::Full => [
            ("CorpNet", TopologyKind::CorpNet),
            ("GATech", TopologyKind::GaTech),
            ("Mercator", TopologyKind::Mercator),
        ],
        Scale::Quick => [
            ("CorpNet", TopologyKind::CorpNet),
            ("GATech", TopologyKind::GaTechSmall),
            ("Mercator", TopologyKind::Mercator),
        ],
    };
    topologies
        .into_iter()
        .enumerate()
        .map(|(i, (name, kind))| {
            ScenarioPoint::new(name, move |seed| {
                let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 30 + i as u64, seed));
                cfg.topology = kind.clone();
                cfg.seed = 4000 + i as u64;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

/// The technique on/off combinations of the ablation scenario:
/// `(label, per_hop_acks, active_rt_probing)`.
pub const ABLATION_COMBOS: [(&str, bool, bool); 4] = [
    ("neither", false, false),
    ("probing only", false, true),
    ("acks only", true, false),
    ("both (base)", true, true),
];

/// The low-application-traffic delay-contribution runs of the ablation
/// scenario: `(label, active_rt_probing, lookups_per_node_per_sec)`.
pub const ABLATION_RATES: [(&str, bool, f64); 4] = [
    ("acks only", false, 0.01),
    ("both", true, 0.01),
    ("acks only", false, 0.001),
    ("both", true, 0.001),
];

fn exp_ablation_points(s: Scale) -> Vec<ScenarioPoint> {
    let mut pts = Vec::new();
    for (i, (name, acks, probing)) in ABLATION_COMBOS.into_iter().enumerate() {
        pts.push(ScenarioPoint::new(name, move |seed| {
            let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 40 + i as u64, seed));
            cfg.protocol.per_hop_acks = acks;
            cfg.protocol.active_rt_probing = probing;
            cfg.seed = 5000 + i as u64;
            shift_run_seed(&mut cfg, seed);
            cfg
        }));
    }
    for (i, (name, probing, rate)) in ABLATION_RATES.into_iter().enumerate() {
        pts.push(ScenarioPoint::new(format!("{name}@{rate}"), move |seed| {
            let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 50 + i as u64, seed));
            cfg.protocol.active_rt_probing = probing;
            cfg.workload = Workload::Poisson {
                rate_per_node_per_sec: rate,
            };
            cfg.seed = 6000 + i as u64;
            shift_run_seed(&mut cfg, seed);
            cfg
        }));
    }
    pts
}

/// Raw-loss targets swept by the self-tuning scenario.
pub const SELFTUNING_TARGETS: [f64; 2] = [0.05, 0.01];

fn exp_selftuning_points(s: Scale) -> Vec<ScenarioPoint> {
    SELFTUNING_TARGETS
        .iter()
        .enumerate()
        .map(|(i, &target)| {
            ScenarioPoint::new(format!("Lr={target}"), move |seed| {
                let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 60 + i as u64, seed));
                cfg.protocol.per_hop_acks = false;
                cfg.protocol.target_raw_loss = target;
                cfg.seed = 7000 + i as u64;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

/// Application lookup rates swept by the suppression scenario.
pub const SUPPRESSION_RATES: [f64; 4] = [0.0, 0.01, 0.1, 1.0];

fn exp_suppression_points(s: Scale) -> Vec<ScenarioPoint> {
    SUPPRESSION_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            ScenarioPoint::new(format!("rate={rate}"), move |seed| {
                let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 70 + i as u64, seed));
                cfg.workload = if rate == 0.0 {
                    Workload::None
                } else {
                    Workload::Poisson {
                        rate_per_node_per_sec: rate,
                    }
                };
                cfg.seed = 8000 + i as u64;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

/// Graceful-departure fractions swept by the leave scenario.
pub const LEAVE_FRACTIONS: [f64; 3] = [0.0, 0.5, 1.0];

fn exp_leave_points(s: Scale) -> Vec<ScenarioPoint> {
    LEAVE_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, &frac)| {
            ScenarioPoint::new(format!("graceful={frac}"), move |seed| {
                let mut cfg = base_config(s, gnutella_sweep_trace_seeded(s, 80 + i as u64, seed));
                cfg.graceful_leave_fraction = frac;
                cfg.seed = 9000 + i as u64;
                shift_run_seed(&mut cfg, seed);
                cfg
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The env var is unset in CI.
        if std::env::var("MSPASTRY_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }

    #[test]
    fn quick_traces_are_small() {
        let t = gnutella_trace(Scale::Quick);
        assert!(t.active_at(2 * HOUR) < 400);
        assert_eq!(t.duration_us(), 24 * HOUR);
    }

    #[test]
    fn builtin_registry_has_the_paper_experiments() {
        let r = Registry::builtin();
        for name in [
            "smoke",
            "fig3_failure_rates",
            "fig4_traces",
            "fig5_sessions",
            "fig6_loss",
            "fig7_params",
            "exp_topology",
            "exp_ablation",
            "exp_selftuning",
            "exp_suppression",
            "exp_leave",
        ] {
            let s = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!s.expand(Scale::Quick).is_empty(), "{name} has no points");
        }
        assert!(r.get("no_such_scenario").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = Registry::builtin();
        let n = r.iter().count();
        r.register(Scenario {
            name: "smoke",
            title: "replaced",
            figure: "CI",
            points: smoke_points,
        });
        assert_eq!(r.iter().count(), n);
        assert_eq!(r.get("smoke").unwrap().title, "replaced");
    }

    #[test]
    fn seed_indices_shift_trace_and_run_seeds() {
        let r = Registry::builtin();
        let pts = r.get("fig6_loss").unwrap().expand(Scale::Quick);
        let a = (pts[0].build)(0);
        let b = (pts[0].build)(1);
        assert_eq!(a.seed + SEED_RUN_STRIDE, b.seed);
        assert_ne!(a.trace, b.trace, "seed index must vary the churn trace");
        // Same index twice → identical configuration.
        let a2 = (pts[0].build)(0);
        assert_eq!(a.seed, a2.seed);
        assert_eq!(a.trace, a2.trace);
    }

    #[test]
    fn fig6_point_zero_matches_the_legacy_bench_config() {
        // The published numbers in EXPERIMENTS.md were produced by the
        // pre-scenario fig6 bench; its exact configuration must fall out of
        // the registry at seed index 0.
        let r = Registry::builtin();
        let pts = r.get("fig6_loss").unwrap().expand(Scale::Quick);
        let cfg = (pts[2].build)(0);
        let legacy_trace = gnutella_sweep_trace(Scale::Quick, 2);
        assert_eq!(cfg.trace, legacy_trace);
        assert_eq!(cfg.seed, 1002);
        assert_eq!(cfg.network_loss_rate, 0.02);
    }
}
