//! Metric collection for the paper's evaluation (§5.2).
//!
//! Dependability: *incorrect delivery rate* (lookups delivered by a node that
//! is not the key's current root) and *loss rate* (lookups never delivered).
//! Performance: *relative delay penalty* (RDP — overlay delay over network
//! delay between the same nodes) and *control traffic* (messages per second
//! per node, everything except first-transmission lookups), optionally broken
//! down by message type as in Figure 4.

use crate::fxhash::FxHashMap;
use mspastry::{Category, LookupId};
use netsim::EndpointId;

/// Number of message categories tracked.
pub const N_CATEGORIES: usize = 6;

/// Stable index of a category in the per-window count arrays.
pub fn category_index(c: Category) -> usize {
    match c {
        Category::DistanceProbe => 0,
        Category::LeafSet => 1,
        Category::RtProbe => 2,
        Category::AckRetransmit => 3,
        Category::Join => 4,
        Category::Lookup => 5,
    }
}

/// Human-readable category names, indexed by [`category_index`].
pub const CATEGORY_NAMES: [&str; N_CATEGORIES] = [
    "distance-probes",
    "leafset-hb-probes",
    "rt-probes",
    "acks-retransmits",
    "join",
    "lookups",
];

#[derive(Debug, Clone, Default)]
struct Window {
    counts: [u64; N_CATEGORIES],
    rdp_sum: f64,
    rdp_count: u64,
    node_us: f64,
}

#[derive(Debug, Clone, Copy)]
struct PendingLookup {
    issued_at_us: u64,
    tracked: bool,
}

/// Collects all run metrics.
#[derive(Debug)]
pub struct Metrics {
    measure_start_us: u64,
    window_us: u64,
    lookup_timeout_us: u64,
    windows: Vec<Window>,
    active_now: usize,
    last_active_us: u64,
    pending: FxHashMap<LookupId, PendingLookup>,
    delivered_ids: FxHashMap<LookupId, ()>,
    issued: u64,
    delivered: u64,
    incorrect: u64,
    duplicates: u64,
    dropped_reports: u64,
    hops_sum: u64,
    rdp_sum: f64,
    rdp_count: u64,
    join_latencies_us: Vec<u64>,
    totals: [u64; N_CATEGORIES],
    bytes_total: u64,
    slow_deliveries: u64,
    fine: FxHashMap<&'static str, u64>,
    lost: u64,
    censored: u64,
}

impl Metrics {
    /// Creates a collector. Events before `measure_start_us` (the warmup) are
    /// ignored.
    pub fn new(measure_start_us: u64, window_us: u64, lookup_timeout_us: u64) -> Self {
        assert!(window_us > 0);
        Metrics {
            measure_start_us,
            window_us,
            lookup_timeout_us,
            windows: Vec::new(),
            active_now: 0,
            last_active_us: measure_start_us,
            pending: FxHashMap::default(),
            delivered_ids: FxHashMap::default(),
            issued: 0,
            delivered: 0,
            incorrect: 0,
            duplicates: 0,
            dropped_reports: 0,
            hops_sum: 0,
            rdp_sum: 0.0,
            rdp_count: 0,
            join_latencies_us: Vec::new(),
            totals: [0; N_CATEGORIES],
            bytes_total: 0,
            slow_deliveries: 0,
            fine: FxHashMap::default(),
            lost: 0,
            censored: 0,
        }
    }

    fn window_mut(&mut self, now_us: u64) -> Option<&mut Window> {
        if now_us < self.measure_start_us {
            return None;
        }
        let idx = ((now_us - self.measure_start_us) / self.window_us) as usize;
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, Window::default());
        }
        Some(&mut self.windows[idx])
    }

    /// Integrates the active-node count up to `now_us` and applies `delta`.
    pub fn set_active_delta(&mut self, now_us: u64, delta: i64) {
        self.integrate_active(now_us);
        self.active_now = (self.active_now as i64 + delta).max(0) as usize;
    }

    fn integrate_active(&mut self, now_us: u64) {
        let mut t = self.last_active_us.max(self.measure_start_us);
        let end = now_us.max(t);
        let active = self.active_now as f64;
        while t < end {
            let idx = ((t - self.measure_start_us) / self.window_us) as usize;
            let wend = self.measure_start_us + (idx as u64 + 1) * self.window_us;
            let seg = end.min(wend) - t;
            if self.windows.len() <= idx {
                self.windows.resize(idx + 1, Window::default());
            }
            self.windows[idx].node_us += active * seg as f64;
            t += seg;
        }
        self.last_active_us = now_us.max(self.last_active_us);
    }

    /// Records a message transmission of `wire_bytes` bytes.
    pub fn on_send(&mut self, now_us: u64, category: Category, wire_bytes: usize) {
        let idx = category_index(category);
        if let Some(w) = self.window_mut(now_us) {
            w.counts[idx] += 1;
            self.totals[idx] += 1;
            self.bytes_total += wire_bytes as u64;
        }
    }

    /// Records a fine-grained per-variant count (diagnostics).
    pub fn on_send_kind(&mut self, now_us: u64, kind: &'static str) {
        if now_us >= self.measure_start_us {
            *self.fine.entry(kind).or_insert(0) += 1;
        }
    }

    /// Records the first sighting of a lookup (issue or first transmission).
    pub fn sight_lookup(&mut self, id: LookupId, issued_at_us: u64) {
        if self.delivered_ids.contains_key(&id) || self.pending.contains_key(&id) {
            return;
        }
        let tracked = issued_at_us >= self.measure_start_us;
        if tracked {
            self.issued += 1;
        }
        self.pending.insert(
            id,
            PendingLookup {
                issued_at_us,
                tracked,
            },
        );
    }

    /// Records a delivery. `direct_delay_us == 0` (self-delivery) skips the
    /// RDP sample.
    pub fn on_delivered(
        &mut self,
        now_us: u64,
        id: LookupId,
        issued_at_us: u64,
        correct: bool,
        hops: u32,
        direct_delay_us: u64,
    ) {
        self.sight_lookup(id, issued_at_us);
        let Some(p) = self.pending.remove(&id) else {
            self.duplicates += 1;
            return;
        };
        self.delivered_ids.insert(id, ());
        if !p.tracked {
            return;
        }
        self.delivered += 1;
        self.hops_sum += hops as u64;
        if !correct {
            self.incorrect += 1;
        }
        if direct_delay_us > 0 && now_us > p.issued_at_us {
            let delay = now_us - p.issued_at_us;
            if delay > 1_000_000 {
                self.slow_deliveries += 1;
            }
            let rdp = (now_us - p.issued_at_us) as f64 / direct_delay_us as f64;
            self.rdp_sum += rdp;
            self.rdp_count += 1;
            if let Some(w) = self.window_mut(now_us) {
                w.rdp_sum += rdp;
                w.rdp_count += 1;
            }
        }
    }

    /// Records a drop report from a node (diagnostic only; loss is measured
    /// by never-delivered lookups).
    pub fn on_drop_report(&mut self) {
        self.dropped_reports += 1;
    }

    /// Records a join latency sample.
    pub fn on_join_latency(&mut self, latency_us: u64) {
        self.join_latencies_us.push(latency_us);
    }

    /// Closes the run at `end_us` and produces the report.
    pub fn finalize(mut self, end_us: u64) -> Report {
        self.integrate_active(end_us);
        for p in self.pending.values() {
            if !p.tracked {
                continue;
            }
            if p.issued_at_us + self.lookup_timeout_us <= end_us {
                self.lost += 1;
            } else {
                self.censored += 1;
            }
        }
        let node_seconds: f64 = self.windows.iter().map(|w| w.node_us).sum::<f64>() / 1e6;
        let control_total: u64 = self.totals[..5].iter().sum();
        let mut windows = Vec::with_capacity(self.windows.len());
        for (i, w) in self.windows.iter().enumerate() {
            let ns = w.node_us / 1e6;
            let per_cat = std::array::from_fn(|c| {
                if ns > 0.0 {
                    w.counts[c] as f64 / ns
                } else {
                    0.0
                }
            });
            let control: u64 = w.counts[..5].iter().sum();
            windows.push(WindowReport {
                start_us: self.measure_start_us + i as u64 * self.window_us,
                rdp: if w.rdp_count > 0 {
                    w.rdp_sum / w.rdp_count as f64
                } else {
                    0.0
                },
                control_per_node_per_sec: if ns > 0.0 { control as f64 / ns } else { 0.0 },
                per_category_per_node_per_sec: per_cat,
                mean_active_nodes: ns / (self.window_us as f64 / 1e6),
            });
        }
        let accounted = self.delivered + self.lost;
        let mut join_latencies_us = self.join_latencies_us;
        join_latencies_us.sort_unstable();
        Report {
            issued: self.issued,
            delivered: self.delivered,
            incorrect: self.incorrect,
            lost: self.lost,
            censored: self.censored,
            duplicates: self.duplicates,
            drop_reports: self.dropped_reports,
            incorrect_rate: rate(self.incorrect, accounted),
            loss_rate: rate(self.lost, accounted),
            mean_rdp: if self.rdp_count > 0 {
                self.rdp_sum / self.rdp_count as f64
            } else {
                0.0
            },
            mean_hops: if self.delivered > 0 {
                self.hops_sum as f64 / self.delivered as f64
            } else {
                0.0
            },
            control_msgs_per_node_per_sec: if node_seconds > 0.0 {
                control_total as f64 / node_seconds
            } else {
                0.0
            },
            totals_per_node_per_sec: std::array::from_fn(|c| {
                if node_seconds > 0.0 {
                    self.totals[c] as f64 / node_seconds
                } else {
                    0.0
                }
            }),
            node_seconds,
            bytes_per_node_per_sec: if node_seconds > 0.0 {
                self.bytes_total as f64 / node_seconds
            } else {
                0.0
            },
            slow_deliveries: self.slow_deliveries,
            join_latencies_us,
            windows,
            fine_counts: {
                let mut v: Vec<(&'static str, u64)> = self.fine.into_iter().collect();
                v.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
                v
            },
        }
    }
}

/// Index of the sample a fraction `frac` (0.0..1.0) of the way through a
/// series of length `n` — the window-sampling rule the figure benches share
/// (truncating, clamped to the last element; 0 for an empty series).
pub fn series_index(n: usize, frac: f64) -> usize {
    ((n as f64 * frac) as usize).min(n.saturating_sub(1))
}

/// Nearest-rank index of quantile `q` (0.0..=1.0) in a sorted sample of
/// length `n` (0 for an empty sample).
pub fn quantile_index(n: usize, q: f64) -> usize {
    ((n.saturating_sub(1)) as f64 * q).round() as usize
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-window series entry (Figure 4's time axis).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window start, microseconds.
    pub start_us: u64,
    /// Mean RDP of lookups delivered in this window.
    pub rdp: f64,
    /// Control messages per second per node.
    pub control_per_node_per_sec: f64,
    /// Per-category messages per second per node ([`CATEGORY_NAMES`] order).
    pub per_category_per_node_per_sec: [f64; N_CATEGORIES],
    /// Mean number of active nodes during the window.
    pub mean_active_nodes: f64,
}

/// Final metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Lookups issued inside the measurement interval.
    pub issued: u64,
    /// Lookups delivered (first delivery).
    pub delivered: u64,
    /// Deliveries at a node that was not the key's root.
    pub incorrect: u64,
    /// Lookups never delivered within the timeout.
    pub lost: u64,
    /// Lookups still in flight at the end (excluded from rates).
    pub censored: u64,
    /// Duplicate deliveries (rerouted copies); diagnostic.
    pub duplicates: u64,
    /// Node-reported drops; diagnostic (a dropped copy may still be delivered
    /// via another copy).
    pub drop_reports: u64,
    /// `incorrect / (delivered + lost)`.
    pub incorrect_rate: f64,
    /// `lost / (delivered + lost)`.
    pub loss_rate: f64,
    /// Mean relative delay penalty.
    pub mean_rdp: f64,
    /// Mean overlay hops per delivered lookup.
    pub mean_hops: f64,
    /// Control messages (everything except first-transmission lookups) per
    /// second per active node.
    pub control_msgs_per_node_per_sec: f64,
    /// Per-category traffic per second per node ([`CATEGORY_NAMES`] order).
    pub totals_per_node_per_sec: [f64; N_CATEGORIES],
    /// Integral of active nodes over the measurement interval, in
    /// node-seconds.
    pub node_seconds: f64,
    /// Wire bytes (per the binary codec) sent per second per node,
    /// including lookups.
    pub bytes_per_node_per_sec: f64,
    /// Deliveries that took longer than one second (diagnostics).
    pub slow_deliveries: u64,
    /// Sorted join latencies, microseconds.
    pub join_latencies_us: Vec<u64>,
    /// Time series of per-window statistics.
    pub windows: Vec<WindowReport>,
    /// Per-message-variant transmission counts, largest first (diagnostics).
    pub fine_counts: Vec<(&'static str, u64)>,
}

impl Report {
    /// The `q`-quantile (0.0..=1.0) of join latency, microseconds.
    pub fn join_latency_quantile(&self, q: f64) -> Option<u64> {
        if self.join_latencies_us.is_empty() {
            return None;
        }
        Some(self.join_latencies_us[quantile_index(self.join_latencies_us.len(), q)])
    }
}

/// Tracks which endpoint issued each lookup so RDP can use the true
/// source-destination network delay.
#[derive(Debug, Default)]
pub struct LookupSources {
    map: FxHashMap<LookupId, EndpointId>,
}

impl LookupSources {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the issuing endpoint.
    pub fn insert(&mut self, id: LookupId, src: EndpointId) {
        self.map.entry(id).or_insert(src);
    }

    /// Looks up the issuing endpoint.
    pub fn get(&self, id: LookupId) -> Option<EndpointId> {
        self.map.get(&id).copied()
    }

    /// Removes a completed lookup.
    pub fn remove(&mut self, id: LookupId) {
        self.map.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspastry::Id;

    fn lid(seq: u64) -> LookupId {
        LookupId { src: Id(1), seq }
    }

    #[test]
    fn warmup_events_are_ignored() {
        let mut m = Metrics::new(1_000_000, 1_000_000, 60_000_000);
        m.on_send(500_000, Category::LeafSet, 10);
        m.on_send(1_500_000, Category::LeafSet, 10);
        let r = m.finalize(2_000_000);
        assert_eq!(r.windows.len(), 1);
        assert_eq!(r.windows[0].per_category_per_node_per_sec[1], 0.0); // no nodes
    }

    #[test]
    fn control_traffic_normalised_by_node_seconds() {
        let mut m = Metrics::new(0, 10_000_000, 60_000_000);
        m.set_active_delta(0, 2); // 2 nodes from t=0
        for i in 0..20 {
            m.on_send(i * 500_000, Category::RtProbe, 9);
        }
        let r = m.finalize(10_000_000);
        // 20 messages over 2 nodes * 10 s = 1 msg/s/node.
        assert!((r.control_msgs_per_node_per_sec - 1.0).abs() < 1e-9);
        assert!((r.totals_per_node_per_sec[category_index(Category::RtProbe)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lookups_do_not_count_as_control() {
        let mut m = Metrics::new(0, 10_000_000, 60_000_000);
        m.set_active_delta(0, 1);
        m.on_send(1, Category::Lookup, 62);
        m.on_send(2, Category::AckRetransmit, 25);
        let r = m.finalize(10_000_000);
        assert!((r.control_msgs_per_node_per_sec - 0.1).abs() < 1e-9);
    }

    #[test]
    fn loss_and_incorrect_rates() {
        let mut m = Metrics::new(0, 1_000_000, 10_000_000);
        // Three lookups: one correct delivery, one incorrect, one lost.
        m.sight_lookup(lid(1), 100);
        m.sight_lookup(lid(2), 100);
        m.sight_lookup(lid(3), 100);
        m.on_delivered(500_000, lid(1), 100, true, 3, 1000);
        m.on_delivered(500_000, lid(2), 100, false, 3, 1000);
        let r = m.finalize(100_000_000);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.lost, 1);
        assert_eq!(r.incorrect, 1);
        assert!((r.loss_rate - 1.0 / 3.0).abs() < 1e-9);
        assert!((r.incorrect_rate - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn in_flight_lookups_are_censored_not_lost() {
        let mut m = Metrics::new(0, 1_000_000, 60_000_000);
        m.sight_lookup(lid(1), 500_000);
        let r = m.finalize(1_000_000); // well within the timeout
        assert_eq!(r.lost, 0);
        assert_eq!(r.censored, 1);
    }

    #[test]
    fn duplicate_deliveries_counted_once() {
        let mut m = Metrics::new(0, 1_000_000, 60_000_000);
        m.sight_lookup(lid(1), 0);
        m.on_delivered(100, lid(1), 0, true, 1, 50);
        m.on_delivered(200, lid(1), 0, true, 1, 50);
        let r = m.finalize(1_000_000);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicates, 1);
    }

    #[test]
    fn rdp_is_overlay_over_network_delay() {
        let mut m = Metrics::new(0, 1_000_000, 60_000_000);
        m.sight_lookup(lid(1), 0);
        // Delivered at t=2000 with direct delay 1000 → RDP 2.
        m.on_delivered(2000, lid(1), 0, true, 2, 1000);
        let r = m.finalize(1_000_000);
        assert!((r.mean_rdp - 2.0).abs() < 1e-9);
        assert!((r.mean_hops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_index_clamps_and_truncates() {
        assert_eq!(series_index(0, 0.5), 0);
        assert_eq!(series_index(10, 0.0), 0);
        assert_eq!(series_index(10, 0.45), 4);
        assert_eq!(series_index(10, 0.99), 9);
        assert_eq!(series_index(10, 1.0), 9, "frac 1.0 clamps to the end");
        // Matches the inline expression the figure benches used to copy.
        for n in [1usize, 3, 7, 10, 144] {
            for i in 0..=10 {
                let frac = i as f64 / 10.0;
                let legacy = ((n as f64 * frac) as usize).min(n.saturating_sub(1));
                assert_eq!(series_index(n, frac), legacy, "n={n} frac={frac}");
            }
        }
    }

    #[test]
    fn quantile_index_is_nearest_rank() {
        assert_eq!(quantile_index(0, 0.5), 0);
        assert_eq!(quantile_index(1, 0.99), 0);
        assert_eq!(quantile_index(5, 0.0), 0);
        assert_eq!(quantile_index(5, 0.5), 2);
        assert_eq!(quantile_index(5, 1.0), 4);
        assert_eq!(quantile_index(4, 0.5), 2, "rounds to nearest rank");
    }

    #[test]
    fn join_latency_quantiles() {
        let mut m = Metrics::new(0, 1_000_000, 60_000_000);
        for l in [5u64, 1, 3, 2, 4] {
            m.on_join_latency(l);
        }
        let r = m.finalize(1_000_000);
        assert_eq!(r.join_latency_quantile(0.0), Some(1));
        assert_eq!(r.join_latency_quantile(0.5), Some(3));
        assert_eq!(r.join_latency_quantile(1.0), Some(5));
    }

    #[test]
    fn active_node_integration_splits_windows() {
        let mut m = Metrics::new(0, 1_000_000, 60_000_000);
        m.set_active_delta(0, 1);
        m.set_active_delta(1_500_000, 1); // second node joins mid-window-2
        let r = m.finalize(2_000_000);
        assert!((r.windows[0].mean_active_nodes - 1.0).abs() < 1e-9);
        assert!((r.windows[1].mean_active_nodes - 1.5).abs() < 1e-9);
    }
}
