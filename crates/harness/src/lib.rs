#![warn(missing_docs)]
//! Experiment harness for the MSPastry reproduction.
//!
//! Binds the pure [`mspastry`] protocol state machine to the [`netsim`]
//! packet-level simulator, drives node arrivals and failures from a
//! [`churn::Trace`], applies a lookup workload, checks every delivery against
//! a global consistency [`oracle::Oracle`], and collects the paper's §5.2
//! metrics (incorrect-delivery rate, loss rate, RDP, control traffic by
//! message type, join-latency CDF).
//!
//! # Example
//!
//! ```
//! use churn::poisson::{self, PoissonParams};
//! use harness::{run, RunConfig};
//! use topology::TopologyKind;
//!
//! let trace = poisson::trace(&PoissonParams {
//!     mean_nodes: 30.0,
//!     mean_session_us: 60.0 * 60e6,
//!     duration_us: 10 * 60 * 1_000_000,
//!     seed: 1,
//! });
//! let mut cfg = RunConfig::new(trace);
//! cfg.topology = TopologyKind::GaTechTiny;
//! cfg.warmup_us = 5 * 60 * 1_000_000;
//! let result = run(cfg);
//! assert_eq!(result.report.incorrect, 0);
//! ```

pub use mspastry::fxhash;

pub mod artifact;
pub mod metrics;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use artifact::{report_json, run_json, RUN_SCHEMA};
pub use metrics::{
    category_index, quantile_index, series_index, Report, WindowReport, CATEGORY_NAMES,
    N_CATEGORIES,
};
pub use oracle::Oracle;
pub use runner::{run, DeliveryRecord, RunConfig, RunResult, ScriptedLookup, Workload};
pub use scenario::{scale, Registry, Scale, Scenario, ScenarioPoint};
pub use sweep::{run_sweep, sweep_csv, sweep_json, SweepConfig, SweepResult, SWEEP_SCHEMA};
