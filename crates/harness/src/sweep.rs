//! The sweep executor: a scenario's (point × seed) grid, run across worker
//! threads, aggregated into one artifact.
//!
//! [`run_sweep`] expands a [`Scenario`] at a [`Scale`], builds every
//! `(point, seed index)` configuration, and fans the runs across a pool of
//! workers (the shared [`pool`] utility — `jobs = 0` means one worker per
//! available core). Each run is an independent single-threaded simulation
//! with its own RNG, metrics and diagnostic registry, so parallelism cannot
//! perturb results; [`pool::map`] returns results in grid order, so the
//! aggregation — per-point mean/stddev over seeds plus a merged diagnostic
//! snapshot — and the rendered artifacts are byte-identical for any worker
//! count.

use crate::runner::{run, RunResult};
use crate::scenario::{Scale, Scenario};
use obs::{JsonWriter, Snapshot};

/// Schema identifier of the aggregated sweep artifact; `mspastry-series/1`
/// is the single-seed per-figure table the benches emit.
pub const SWEEP_SCHEMA: &str = "mspastry-series/2";

/// How to execute a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Experiment scale.
    pub scale: Scale,
    /// Seed indices to run per point (`0..seeds`); clamped to at least 1.
    pub seeds: u64,
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Report progress on stderr as runs complete (runs done, point,
    /// aggregate ev/s, ETA) — multi-hour sweeps should not be silent.
    pub progress: bool,
}

impl SweepConfig {
    /// Single-seed, auto-parallel, silent sweep at `scale`.
    pub fn new(scale: Scale) -> Self {
        SweepConfig {
            scale,
            seeds: 1,
            jobs: 0,
            progress: false,
        }
    }
}

/// Mean and spread of one scalar metric across a point's seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStat {
    /// Metric name (a [`crate::metrics::Report`] scalar or run diagnostic).
    pub name: &'static str,
    /// Per-seed values, in seed-index order.
    pub values: Vec<f64>,
    /// Mean over seeds.
    pub mean: f64,
    /// Sample standard deviation over seeds (0 with a single seed).
    pub stddev: f64,
}

/// Aggregated results of one scenario point.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// The point's label (sweep-axis value).
    pub label: String,
    /// Number of seeds aggregated.
    pub n_seeds: u64,
    /// Per-metric statistics, in [`METRIC_NAMES`] order.
    pub stats: Vec<MetricStat>,
    /// Diagnostic registry snapshots of all seeds, merged (counters summed,
    /// histograms merged).
    pub diag: Snapshot,
    /// The individual runs, in seed-index order.
    pub runs: Vec<RunResult>,
}

/// Results of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// Paper figure the scenario reproduces.
    pub figure: &'static str,
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Seeds per point.
    pub seeds: u64,
    /// One summary per scenario point, in scenario order.
    pub points: Vec<PointSummary>,
}

/// The scalar metrics aggregated across seeds, in artifact order.
pub const METRIC_NAMES: [&str; 11] = [
    "issued",
    "delivered",
    "incorrect_rate",
    "loss_rate",
    "mean_rdp",
    "mean_hops",
    "control_msgs_per_node_per_sec",
    "bytes_per_node_per_sec",
    "final_active",
    "ring_defects",
    "mean_t_rt_us",
];

/// The [`METRIC_NAMES`] values of one run, in the same order.
fn metric_values(r: &RunResult) -> [f64; METRIC_NAMES.len()] {
    let rep = &r.report;
    [
        rep.issued as f64,
        rep.delivered as f64,
        rep.incorrect_rate,
        rep.loss_rate,
        rep.mean_rdp,
        rep.mean_hops,
        rep.control_msgs_per_node_per_sec,
        rep.bytes_per_node_per_sec,
        r.final_active as f64,
        r.ring_defects as f64,
        r.mean_t_rt_us,
    ]
}

/// Runs a scenario's full (point × seed) grid and aggregates per point.
pub fn run_sweep(scenario: &Scenario, cfg: &SweepConfig) -> SweepResult {
    let points = scenario.expand(cfg.scale);
    let seeds = cfg.seeds.max(1) as usize;
    let grid = points.len() * seeds;
    // Progress state shared across workers. Only completion counters — the
    // runs themselves stay independent, so reporting cannot perturb results
    // (and the artifacts stay byte-identical with it on or off).
    let done = std::sync::atomic::AtomicU64::new(0);
    let events = std::sync::atomic::AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    // Grid index i = point * seeds + seed, so pool::map's order-preserving
    // output is already grouped by point.
    let results = pool::map(cfg.jobs, grid, |i| {
        let run_cfg = (points[i / seeds].build)((i % seeds) as u64);
        let res = run(run_cfg);
        if cfg.progress {
            use std::sync::atomic::Ordering::Relaxed;
            let d = done.fetch_add(1, Relaxed) + 1;
            let ev = events.fetch_add(res.sim_events, Relaxed) + res.sim_events;
            let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
            let eta = elapsed / d as f64 * (grid as u64 - d) as f64;
            eprintln!(
                "[sweep {}] {d}/{grid} runs done (point {}/{} \"{}\"), \
                 {:.2}M ev/s aggregate, ETA {:.0}s",
                scenario.name,
                i / seeds + 1,
                points.len(),
                points[i / seeds].label,
                ev as f64 / elapsed / 1e6,
                eta,
            );
        }
        res
    });
    let mut results = results.into_iter();
    let summaries = points
        .iter()
        .map(|p| {
            let runs: Vec<RunResult> = results.by_ref().take(seeds).collect();
            summarize(&p.label, runs)
        })
        .collect();
    SweepResult {
        scenario: scenario.name,
        figure: scenario.figure,
        scale: cfg.scale,
        seeds: seeds as u64,
        points: summaries,
    }
}

/// Aggregates one point's seed runs.
fn summarize(label: &str, runs: Vec<RunResult>) -> PointSummary {
    let n = runs.len();
    let mut diag = Snapshot::default();
    for r in &runs {
        diag.merge(&r.diag);
    }
    let stats = METRIC_NAMES
        .iter()
        .enumerate()
        .map(|(m, &name)| {
            let values: Vec<f64> = runs.iter().map(|r| metric_values(r)[m]).collect();
            let mean = values.iter().sum::<f64>() / n as f64;
            let stddev = if n > 1 {
                let var =
                    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
                var.sqrt()
            } else {
                0.0
            };
            MetricStat {
                name,
                values,
                mean,
                stddev,
            }
        })
        .collect();
    PointSummary {
        label: label.to_string(),
        n_seeds: n as u64,
        stats,
        diag,
        runs,
    }
}

/// Serialises a [`SweepResult`] as one JSON document (schema
/// [`SWEEP_SCHEMA`]): sweep identity, then per point the seed count, each
/// metric's per-seed values/mean/stddev, and the merged diagnostic snapshot.
/// Deterministic: the same runs produce byte-identical output.
pub fn sweep_json(res: &SweepResult) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SWEEP_SCHEMA)
        .field_str("scenario", res.scenario)
        .field_str("figure", res.figure)
        .field_str("scale", res.scale.name())
        .field_u64("n_seeds", res.seeds);
    w.key("points").begin_array();
    for p in &res.points {
        w.begin_object();
        w.field_str("label", &p.label)
            .field_u64("n_seeds", p.n_seeds);
        w.key("metrics").begin_object();
        for s in &p.stats {
            w.key(s.name).begin_object();
            w.field_f64("mean", s.mean).field_f64("stddev", s.stddev);
            w.key("values").begin_array();
            for &v in &s.values {
                w.f64(v);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.key("diag");
        obs::snapshot_json(&mut w, &p.diag);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders a [`SweepResult`] as CSV: one row per point, with a
/// `<metric>_mean`/`<metric>_stddev` column pair per aggregated metric.
pub fn sweep_csv(res: &SweepResult) -> String {
    let mut out = String::from("label,n_seeds");
    for name in METRIC_NAMES {
        out.push_str(&format!(",{name}_mean,{name}_stddev"));
    }
    out.push('\n');
    for p in &res.points {
        out.push_str(&format!("{},{}", p.label, p.n_seeds));
        for s in &p.stats {
            out.push_str(&format!(",{:.6},{:.6}", s.mean, s.stddev));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Registry, ScenarioPoint};
    use churn::poisson::{self, PoissonParams};
    use topology::TopologyKind;

    fn tiny_points(_s: Scale) -> Vec<ScenarioPoint> {
        [10.0f64, 20.0]
            .into_iter()
            .map(|mean_nodes| {
                ScenarioPoint::new(format!("n={mean_nodes}"), move |seed| {
                    let trace = poisson::trace(&PoissonParams {
                        mean_nodes,
                        mean_session_us: 3600e6,
                        duration_us: 5 * 60 * 1_000_000,
                        seed: 1 + seed,
                    });
                    let mut cfg = crate::RunConfig::new(trace);
                    cfg.topology = TopologyKind::GaTechTiny;
                    cfg.warmup_us = 4 * 60 * 1_000_000;
                    cfg.metrics_window_us = 60 * 1_000_000;
                    cfg.seed = 7 + seed;
                    cfg
                })
            })
            .collect()
    }

    const TINY: Scenario = Scenario {
        name: "tiny",
        title: "test scenario",
        figure: "test",
        points: tiny_points,
    };

    #[test]
    fn sweep_aggregates_per_point() {
        let cfg = SweepConfig {
            seeds: 2,
            jobs: 1,
            ..SweepConfig::new(Scale::Quick)
        };
        let res = run_sweep(&TINY, &cfg);
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            assert_eq!(p.n_seeds, 2);
            assert_eq!(p.runs.len(), 2);
            assert_eq!(p.stats.len(), METRIC_NAMES.len());
            let issued = &p.stats[0];
            assert_eq!(issued.name, "issued");
            assert_eq!(issued.values.len(), 2);
            let mean = (issued.values[0] + issued.values[1]) / 2.0;
            assert!((issued.mean - mean).abs() < 1e-12);
            // Merged diag covers both runs.
            assert!(p.diag.counter("net.delivered") >= p.runs[0].diag.counter("net.delivered"));
        }
    }

    #[test]
    fn artifacts_are_independent_of_worker_count() {
        let seq = SweepConfig {
            seeds: 2,
            jobs: 1,
            ..SweepConfig::new(Scale::Quick)
        };
        let par = SweepConfig { jobs: 4, ..seq };
        let a = run_sweep(&TINY, &seq);
        let b = run_sweep(&TINY, &par);
        assert_eq!(sweep_json(&a), sweep_json(&b));
        assert_eq!(sweep_csv(&a), sweep_csv(&b));
    }

    #[test]
    fn single_seed_has_zero_stddev() {
        let res = run_sweep(&TINY, &SweepConfig::new(Scale::Quick));
        for p in &res.points {
            assert_eq!(p.n_seeds, 1);
            assert!(p.stats.iter().all(|s| s.stddev == 0.0));
        }
    }

    #[test]
    fn sweep_json_shape() {
        let res = run_sweep(&TINY, &SweepConfig::new(Scale::Quick));
        let s = sweep_json(&res);
        assert!(s.starts_with(&format!("{{\"schema\":\"{SWEEP_SCHEMA}\"")));
        for key in [
            "scenario", "figure", "scale", "n_seeds", "points", "metrics", "diag",
        ] {
            assert!(s.contains(&format!("\"{key}\":")), "missing {key}");
        }
        for name in METRIC_NAMES {
            assert!(
                s.contains(&format!("\"{name}\":{{\"mean\":")),
                "missing {name}"
            );
        }
        let csv = sweep_csv(&res);
        assert!(csv.starts_with("label,n_seeds,issued_mean,issued_stddev"));
        assert_eq!(csv.lines().count(), 1 + res.points.len());
    }

    #[test]
    fn builtin_smoke_scenario_sweeps() {
        let reg = Registry::builtin();
        let smoke = reg.get("smoke").unwrap();
        // Keep the test fast: one seed, and smoke is a single small point.
        let res = run_sweep(smoke, &SweepConfig::new(Scale::Quick));
        assert_eq!(res.points.len(), 1);
        assert_eq!(res.points[0].runs.len(), 1);
        assert!(res.points[0].runs[0].report.issued > 0);
    }
}
