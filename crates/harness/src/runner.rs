//! The experiment runner: drives MSPastry nodes through the packet-level
//! simulator with trace-based fault injection, a lookup workload, oracle
//! consistency checking, and metric collection — the platform described in
//! §5.1 of the paper.
//!
//! Protocol actions are not interpreted here: each node is wrapped in the
//! shared [`mspastry::Driver`], and the private `SimHost` maps its
//! [`mspastry::Host`] calls onto the simulator (network, event queue,
//! metrics, oracle). The UDP transport implements the same trait, so both
//! deployments run the identical core.

use crate::fxhash::FxHashMap;
use crate::metrics::{Metrics, Report};
use crate::oracle::Oracle;
use churn::{Trace, TraceEvent};
use mspastry::{
    Config, Delivery, Driver, DropReason, Event, Host, Id, Key, LookupId, Message, Node, NodeId,
    Payload, TimerKind,
};
use netsim::{EndpointId, EventQueue, Network};
use obs::{HistId, HopEvent, Obs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use topology::{Topology, TopologyKind};

/// Whether to echo every dropped lookup to stderr (`MSPASTRY_DEBUG_DROPS`);
/// the environment is consulted once per process, not once per drop. The
/// echo itself happens inside [`obs::Obs::drop_event`], with the full drop
/// context (reason, lookup id, dropping node).
fn debug_drops() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("MSPASTRY_DEBUG_DROPS").is_ok())
}

/// Sentinel for "not joining" in the endpoint-indexed join-start table.
const NO_JOIN: u64 = u64::MAX;
/// Sentinel for "not active" in the endpoint-indexed active-position table.
const NOT_ACTIVE: u32 = u32::MAX;

/// The lookup workload applied to the overlay.
#[derive(Debug, Clone)]
pub enum Workload {
    /// No application traffic.
    None,
    /// Every active node issues lookups as a Poisson process with uniformly
    /// random destination keys (the paper's base workload uses 0.01
    /// lookups/s/node).
    Poisson {
        /// Lookup rate per node, per second.
        rate_per_node_per_sec: f64,
    },
    /// An explicit request script (used by the Squirrel validation
    /// experiment). Times are trace-relative; requests from sessions that are
    /// not active at fire time are skipped.
    Scripted(Vec<ScriptedLookup>),
}

/// One scripted application request.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedLookup {
    /// Trace-relative issue time, microseconds.
    pub at_us: u64,
    /// Issuing session index (into the trace's session list).
    pub session: usize,
    /// Destination key.
    pub key: Key,
    /// Opaque payload (correlates deliveries for the application).
    pub payload: Payload,
}

/// A recorded application-level delivery (optional, for application
/// post-processing such as Squirrel's cache statistics).
#[derive(Debug, Clone)]
pub struct DeliveryRecord {
    /// Simulation time of delivery (warmup included), microseconds.
    pub at_us: u64,
    /// The delivering session.
    pub session: usize,
    /// The destination key.
    pub key: Key,
    /// The lookup payload.
    pub payload: Payload,
    /// Whether the deliverer was the key's true root.
    pub correct: bool,
    /// When the lookup was issued, microseconds.
    pub issued_at_us: u64,
    /// Overlay hops the lookup took.
    pub hops: u32,
    /// Sessions of the deliverer's closest leaf-set members (ring-distance
    /// order): the candidate replica holders for storage applications.
    pub replica_sessions: Vec<usize>,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Protocol parameters.
    pub protocol: Config,
    /// Network topology.
    pub topology: TopologyKind,
    /// Churn trace (fault injection schedule).
    pub trace: Trace,
    /// Application workload.
    pub workload: Workload,
    /// Uniform network message loss probability.
    pub network_loss_rate: f64,
    /// Overlay build-up period before measurements start; initial sessions
    /// join staggered across it.
    pub warmup_us: u64,
    /// Metrics window (the paper uses 10 min for Gnutella/OverNet, 1 h for
    /// Microsoft).
    pub metrics_window_us: u64,
    /// A lookup not delivered within this time counts as lost.
    pub lookup_timeout_us: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Record every application delivery in the result.
    pub record_deliveries: bool,
    /// Fraction of departures that announce themselves (`Event::Leave`)
    /// before dying, instead of crashing silently. 0.0 reproduces the paper
    /// (all departures look like failures); higher values exercise the
    /// graceful-leave extension.
    pub graceful_leave_fraction: f64,
    /// Total network outages, as trace-relative `(start_us, end_us)` windows
    /// during which every message is lost.
    pub outages: Vec<(u64, u64)>,
    /// Fraction of lookups whose hop-by-hop history is recorded in the
    /// flight recorder (0.0 disables tracing entirely; 1.0 traces every
    /// lookup). Sampling is a deterministic hash of the lookup identity, so
    /// every node on the path agrees on the decision and repeated runs
    /// produce identical traces.
    pub trace_sample_rate: f64,
    /// Flight-recorder capacity in events; once full, the oldest events are
    /// overwritten (the count of casualties is reported).
    pub trace_capacity: usize,
    /// Time-series sampling cadence in virtual microseconds (0 disables the
    /// sampler). Sampling is a pure observer — it reads registry snapshots
    /// between events and never perturbs the simulation.
    pub ts_interval_us: u64,
    /// Maximum time-series windows kept in memory; past it the oldest are
    /// dropped (and counted), mirroring the flight recorder.
    pub ts_max_windows: usize,
    /// Self-profile the run loop: per-event-kind dispatch counts and wall
    /// time, plus event-queue depth gauges, reported under
    /// [`RunResult::prof`]. Wall-clock readings are nondeterministic, so the
    /// profile lives outside the bit-identical artifact guarantee.
    pub profile: bool,
}

impl RunConfig {
    /// Sensible defaults around a trace: base protocol configuration, small
    /// GATech topology, 0.01 lookups/s/node, no loss, 15 min warmup.
    pub fn new(trace: Trace) -> Self {
        RunConfig {
            protocol: Config::default(),
            topology: TopologyKind::GaTechSmall,
            trace,
            workload: Workload::Poisson {
                rate_per_node_per_sec: 0.01,
            },
            network_loss_rate: 0.0,
            warmup_us: 15 * 60 * 1_000_000,
            metrics_window_us: 10 * 60 * 1_000_000,
            lookup_timeout_us: 60 * 1_000_000,
            seed: 1,
            record_deliveries: false,
            graceful_leave_fraction: 0.0,
            outages: Vec::new(),
            trace_sample_rate: 0.0,
            trace_capacity: 65_536,
            ts_interval_us: 0,
            ts_max_windows: 8_192,
            profile: false,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// All §5.2 metrics.
    pub report: Report,
    /// Trace name.
    pub trace_name: String,
    /// Topology name.
    pub topology_name: &'static str,
    /// Active overlay nodes when the run ended.
    pub final_active: usize,
    /// Mean self-tuned routing-table probing period across nodes at the end,
    /// microseconds.
    pub mean_t_rt_us: f64,
    /// Total simulator events processed.
    pub sim_events: u64,
    /// Scripted lookups skipped because their session was not active.
    pub skipped_scripted: u64,
    /// Active nodes whose immediate leaf-set neighbours disagree with the
    /// true ring at the end of the run (0 = perfectly converged ring).
    pub ring_defects: u64,
    /// Application deliveries (only if `record_deliveries`).
    pub deliveries: Vec<DeliveryRecord>,
    /// `(session, activation time)` pairs, in activation order.
    pub activations: Vec<(usize, u64)>,
    /// Fraction of routing-table entries with no measured distance at the
    /// end of the run (PNS health diagnostic).
    pub rt_unknown_fraction: f64,
    /// Mean measured routing-table entry distance at the end, microseconds.
    pub rt_mean_distance_us: f64,
    /// End-of-run snapshot of the per-run diagnostic registry (probe causes,
    /// network loss counters, RTO/latency histograms, ...).
    pub diag: obs::Snapshot,
    /// Sampled hop-trace events, in recording order (empty unless
    /// `trace_sample_rate > 0`).
    pub trace_events: Vec<HopEvent>,
    /// Trace events lost to ring-buffer overwrite.
    pub trace_overwritten: u64,
    /// Per-interval metric deltas (only if `ts_interval_us > 0`); serialise
    /// with [`obs::ts_jsonl`].
    pub timeseries: Option<obs::TimeSeries>,
    /// Run-loop self-profile (only if `profile`).
    pub prof: Option<obs::ProfReport>,
}

#[derive(Debug)]
enum Ev {
    Msg {
        from: NodeId,
        to: EndpointId,
        msg: Message,
    },
    Timer {
        node: EndpointId,
        kind: TimerKind,
    },
    Join(usize),
    Fail(usize),
    NextLookup {
        node: EndpointId,
    },
    Scripted(usize),
    Outage(bool),
    /// Close the current time-series window. A pure observer: excluded from
    /// `sim_events`, and the extra queue entries only consume sequence
    /// numbers, which preserves the relative order of all other events — the
    /// simulation (and its artifacts) stay bit-identical with sampling on.
    TsSample,
    End,
}

#[derive(Clone, Copy, PartialEq)]
enum SessionState {
    Pending,
    Alive,
    Dead,
}

/// Runs one experiment to completion.
pub fn run(cfg: RunConfig) -> RunResult {
    Runner::new(cfg).run()
}

/// Everything the simulator host touches while executing one node's actions.
///
/// Split from [`Runner`] so a node's [`Driver`] (borrowed mutably during a
/// step) and the rest of the simulation state (borrowed mutably by
/// [`SimHost`]) are disjoint.
struct World {
    cfg: RunConfig,
    net: Network,
    queue: EventQueue<Ev>,
    metrics: Metrics,
    obs: Obs,
    h_latency: HistId,
    h_hops: HistId,
    oracle: Oracle,
    rng: SmallRng,
    node_ids: Vec<NodeId>,
    ep_of_id: FxHashMap<u128, EndpointId>,
    ep_of_session: Vec<Option<EndpointId>>,
    session_of_ep: Vec<usize>,
    session_state: Vec<SessionState>,
    active_list: Vec<EndpointId>,
    /// Position of each endpoint in `active_list` (`NOT_ACTIVE` if absent),
    /// indexed by endpoint id.
    active_pos: Vec<u32>,
    /// Join start time per endpoint (`NO_JOIN` once activated), indexed by
    /// endpoint id.
    join_started: Vec<u64>,
    src_ep: FxHashMap<LookupId, EndpointId>,
    scripted: Vec<ScriptedLookup>,
    skipped_scripted: u64,
    deliveries: Vec<DeliveryRecord>,
    activations: Vec<(usize, u64)>,
    end_us: u64,
    sim_events: u64,
    timeseries: Option<obs::TimeSeries>,
}

/// Self-profiling state: the accumulator plus pre-registered kind slots, so
/// the run loop only indexes on the hot path.
struct Prof {
    profiler: obs::Profiler,
    start: std::time::Instant,
    msg: obs::prof::KindId,
    timer: obs::prof::KindId,
    join: obs::prof::KindId,
    fail: obs::prof::KindId,
    next_lookup: obs::prof::KindId,
    scripted: obs::prof::KindId,
    outage: obs::prof::KindId,
}

impl Prof {
    fn new() -> Self {
        let mut profiler = obs::Profiler::new();
        Prof {
            msg: profiler.kind("msg"),
            timer: profiler.kind("timer"),
            join: profiler.kind("join"),
            fail: profiler.kind("fail"),
            next_lookup: profiler.kind("next-lookup"),
            scripted: profiler.kind("scripted"),
            outage: profiler.kind("outage"),
            start: std::time::Instant::now(),
            profiler,
        }
    }

    fn kind_of(&self, ev: &Ev) -> Option<obs::prof::KindId> {
        match ev {
            Ev::Msg { .. } => Some(self.msg),
            Ev::Timer { .. } => Some(self.timer),
            Ev::Join(_) => Some(self.join),
            Ev::Fail(_) => Some(self.fail),
            Ev::NextLookup { .. } => Some(self.next_lookup),
            Ev::Scripted(_) => Some(self.scripted),
            Ev::Outage(_) => Some(self.outage),
            Ev::TsSample | Ev::End => None,
        }
    }
}

struct Runner {
    /// One driver per endpoint (`None` once the session failed); indexed by
    /// endpoint id, parallel to the `World`'s per-endpoint tables.
    drivers: Vec<Option<Driver>>,
    world: World,
    /// Run-loop self-profiling (only if `RunConfig::profile`).
    prof: Option<Prof>,
}

/// The simulator's implementation of the protocol [`Host`] surface, scoped
/// to one event at one endpoint.
struct SimHost<'a> {
    ep: EndpointId,
    now: u64,
    world: &'a mut World,
}

impl Host for SimHost<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.world.apply_send(self.now, self.ep, to, msg);
    }

    fn set_timer(&mut self, delay_us: u64, kind: TimerKind) {
        self.world.queue.schedule_in(
            delay_us,
            Ev::Timer {
                node: self.ep,
                kind,
            },
        );
    }

    fn deliver(&mut self, delivery: Delivery) {
        self.world.apply_deliver(self.now, self.ep, delivery);
    }

    fn became_active(&mut self) {
        self.world.apply_became_active(self.now, self.ep);
    }

    // The node already counted the drop (and echoed it to stderr under
    // MSPASTRY_DEBUG_DROPS) through the shared obs handle.
    fn lookup_dropped(&mut self, _id: LookupId, _reason: DropReason) {
        self.world.metrics.on_drop_report();
    }
}

impl Runner {
    fn new(cfg: RunConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let mut net = Network::new(topo, cfg.seed ^ 0x6e65_7477);
        net.set_loss_rate(cfg.network_loss_rate);
        let obs = Obs::new(cfg.trace_sample_rate, cfg.trace_capacity, debug_drops());
        net.set_obs(obs.clone());
        let h_latency = obs.histogram("lookup.latency_us");
        let h_hops = obs.histogram("lookup.hops");
        let metrics = Metrics::new(cfg.warmup_us, cfg.metrics_window_us, cfg.lookup_timeout_us);
        let end_us = cfg.warmup_us + cfg.trace.duration_us();
        let n_sessions = cfg.trace.sessions().len();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let scripted = match &cfg.workload {
            Workload::Scripted(s) => {
                let mut s = s.clone();
                s.sort_by_key(|e| e.at_us);
                s
            }
            _ => Vec::new(),
        };
        let timeseries = (cfg.ts_interval_us > 0)
            .then(|| obs::TimeSeries::new(cfg.ts_interval_us, cfg.ts_max_windows));
        Runner {
            drivers: Vec::new(),
            prof: cfg.profile.then(Prof::new),
            world: World {
                net,
                queue: EventQueue::new(),
                metrics,
                obs,
                h_latency,
                h_hops,
                oracle: Oracle::new(),
                rng,
                node_ids: Vec::new(),
                ep_of_id: FxHashMap::default(),
                ep_of_session: vec![None; n_sessions],
                session_of_ep: Vec::new(),
                session_state: vec![SessionState::Pending; n_sessions],
                active_list: Vec::new(),
                active_pos: Vec::new(),
                join_started: Vec::new(),
                src_ep: FxHashMap::default(),
                scripted,
                skipped_scripted: 0,
                deliveries: Vec::new(),
                activations: Vec::new(),
                end_us,
                sim_events: 0,
                timeseries,
                cfg,
            },
        }
    }

    fn schedule_trace(&mut self) {
        let w = &mut self.world;
        // Initial sessions (arrival 0) join staggered across the first 80 %
        // of the warmup so the overlay forms incrementally.
        let initial: Vec<usize> = w
            .cfg
            .trace
            .sessions()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.arrive_us == 0)
            .map(|(i, _)| i)
            .collect();
        let spread = w.cfg.warmup_us * 4 / 5;
        let k = initial.len().max(1) as u64;
        for (n, &i) in initial.iter().enumerate() {
            w.queue.schedule_at(n as u64 * spread / k, Ev::Join(i));
        }
        for (t, ev) in w.cfg.trace.events() {
            match ev {
                TraceEvent::Join(i) => {
                    if w.cfg.trace.sessions()[i].arrive_us > 0 {
                        w.queue.schedule_at(t + w.cfg.warmup_us, Ev::Join(i));
                    }
                }
                TraceEvent::Fail(i) => {
                    w.queue.schedule_at(t + w.cfg.warmup_us, Ev::Fail(i));
                }
            }
        }
        for (i, s) in w.scripted.iter().enumerate() {
            w.queue
                .schedule_at(s.at_us + w.cfg.warmup_us, Ev::Scripted(i));
        }
        for &(start, end) in &w.cfg.outages {
            assert!(start < end, "outage must start before it ends");
            w.queue
                .schedule_at(start + w.cfg.warmup_us, Ev::Outage(true));
            w.queue
                .schedule_at(end + w.cfg.warmup_us, Ev::Outage(false));
        }
        w.queue.schedule_at(w.end_us, Ev::End);
        // Scheduled after `End`, so at a shared instant the run ends first
        // and the tail is covered by the final partial-window sample.
        if let Some(ts) = &w.timeseries {
            w.queue.schedule_at(ts.interval_us(), Ev::TsSample);
        }
    }

    fn run(mut self) -> RunResult {
        self.schedule_trace();
        loop {
            let t_pop = self.prof.as_ref().map(|_| std::time::Instant::now());
            let Some(ev) = self.world.queue.pop() else {
                break;
            };
            if let (Some(p), Some(t0)) = (self.prof.as_mut(), t_pop) {
                p.profiler.record_pop(t0.elapsed().as_nanos() as u64);
            }
            let now = ev.at_us;
            if matches!(ev.payload, Ev::TsSample) {
                // Pure observer: not a simulation event (excluded from
                // `sim_events` so artifacts stay bit-identical), and the
                // registry snapshot mutates nothing.
                let w = &mut self.world;
                let snap = w.obs.snapshot();
                if let Some(ts) = w.timeseries.as_mut() {
                    ts.sample(now, &snap);
                    if now < w.end_us {
                        w.queue.schedule_in(ts.interval_us(), Ev::TsSample);
                    }
                }
                continue;
            }
            self.world.sim_events += 1;
            let kind = self.prof.as_ref().and_then(|p| p.kind_of(&ev.payload));
            let t0 = kind.map(|_| std::time::Instant::now());
            match ev.payload {
                Ev::End => break,
                Ev::Join(i) => self.on_trace_join(now, i),
                Ev::Fail(i) => self.on_trace_fail(now, i),
                Ev::Msg { from, to, msg } => {
                    self.dispatch(now, to, Event::Receive { from, msg });
                }
                Ev::Timer { node, kind } => {
                    self.dispatch(now, node, Event::Timer(kind));
                }
                Ev::NextLookup { node } => self.on_next_lookup(now, node),
                Ev::Scripted(i) => self.on_scripted(now, i),
                Ev::Outage(on) => self.world.net.set_blackout(on),
                Ev::TsSample => unreachable!("handled above"),
            }
            if let (Some(p), Some(kind), Some(t0)) = (self.prof.as_mut(), kind, t0) {
                p.profiler.record(kind, t0.elapsed().as_nanos() as u64);
                p.profiler.gauge_depth(self.world.queue.len());
            }
        }
        let mut w = self.world;
        // Close the tail window: deltas since the last on-cadence sample.
        if let Some(ts) = w.timeseries.as_mut() {
            ts.sample(w.queue.now_us(), &w.obs.snapshot());
        }
        let prof = self.prof.as_ref().map(|p| {
            p.profiler.report(
                p.start.elapsed().as_micros() as u64,
                w.queue.high_water_mark() as u64,
            )
        });
        let final_active = w.active_list.len();
        let mut trt_sum = 0.0;
        let mut trt_n = 0u64;
        for d in self.drivers.iter().flatten() {
            let n = d.node();
            if n.is_active() {
                trt_sum += n.t_rt_us() as f64;
                trt_n += 1;
            }
        }
        let ring_defects = count_ring_defects(&self.drivers, &w);
        let mut rt_total = 0u64;
        let mut rt_unknown = 0u64;
        let mut rt_dist_sum = 0.0f64;
        for d in self.drivers.iter().flatten() {
            for e in d.node().routing_table().entries() {
                rt_total += 1;
                if e.distance_us == mspastry::routing_table::DIST_UNKNOWN {
                    rt_unknown += 1;
                } else {
                    rt_dist_sum += e.distance_us as f64;
                }
            }
        }
        let report = w.metrics.finalize(w.end_us);
        let diag = w.obs.snapshot();
        let (trace_events, trace_overwritten) = w.obs.take_trace();
        RunResult {
            report,
            diag,
            trace_events,
            trace_overwritten,
            timeseries: w.timeseries.take(),
            prof,
            trace_name: w.cfg.trace.name().to_string(),
            topology_name: w.net.topology().name(),
            final_active,
            mean_t_rt_us: if trt_n > 0 {
                trt_sum / trt_n as f64
            } else {
                0.0
            },
            sim_events: w.sim_events,
            skipped_scripted: w.skipped_scripted,
            ring_defects,
            deliveries: std::mem::take(&mut w.deliveries),
            activations: std::mem::take(&mut w.activations),
            rt_unknown_fraction: if rt_total > 0 {
                rt_unknown as f64 / rt_total as f64
            } else {
                0.0
            },
            rt_mean_distance_us: if rt_total > rt_unknown {
                rt_dist_sum / (rt_total - rt_unknown) as f64
            } else {
                0.0
            },
        }
    }

    fn on_trace_join(&mut self, now: u64, session: usize) {
        let w = &mut self.world;
        if w.session_state[session] != SessionState::Pending {
            return; // failed before it could join
        }
        w.session_state[session] = SessionState::Alive;
        let ep = w.net.add_endpoint();
        let id = Id::random(&mut w.rng);
        debug_assert_eq!(ep, self.drivers.len());
        self.drivers.push(Some(Driver::new(Node::with_obs(
            id,
            w.cfg.protocol.clone(),
            w.obs.clone(),
        ))));
        w.node_ids.push(id);
        w.session_of_ep.push(session);
        w.active_pos.push(NOT_ACTIVE);
        w.join_started.push(now);
        w.ep_of_id.insert(id.0, ep);
        w.ep_of_session[session] = Some(ep);
        let seed = self.pick_seed(ep);
        self.dispatch(now, ep, Event::Join { seed });
    }

    /// A random active node, or any alive node if none is active yet, or
    /// `None` for the very first node.
    fn pick_seed(&mut self, joiner: EndpointId) -> Option<NodeId> {
        let w = &mut self.world;
        if !w.active_list.is_empty() {
            let ep = w.active_list[w.rng.gen_range(0..w.active_list.len())];
            return Some(w.node_ids[ep]);
        }
        // Rare fallback (no active node yet): draw the k-th alive node by a
        // counting pass instead of materialising the alive set.
        let alive = |e: &usize| *e != joiner && self.drivers[*e].is_some();
        let n_alive = (0..self.drivers.len()).filter(alive).count();
        if n_alive == 0 {
            None
        } else {
            let k = w.rng.gen_range(0..n_alive);
            let ep = (0..self.drivers.len())
                .filter(alive)
                .nth(k)
                .expect("k < n_alive");
            Some(w.node_ids[ep])
        }
    }

    fn on_trace_fail(&mut self, now: u64, session: usize) {
        match self.world.session_state[session] {
            SessionState::Pending => {
                self.world.session_state[session] = SessionState::Dead;
            }
            SessionState::Dead => {}
            SessionState::Alive => {
                self.world.session_state[session] = SessionState::Dead;
                let ep = self.world.ep_of_session[session].expect("alive session has endpoint");
                let was_active = self.drivers[ep]
                    .as_ref()
                    .is_some_and(|d| d.node().is_active());
                if was_active
                    && self.world.cfg.graceful_leave_fraction > 0.0
                    && self
                        .world
                        .rng
                        .gen_bool(self.world.cfg.graceful_leave_fraction)
                {
                    // The node says goodbye before the plug is pulled.
                    self.dispatch(now, ep, Event::Leave);
                }
                self.drivers[ep] = None;
                if was_active {
                    self.world.oracle.remove(self.world.node_ids[ep]);
                    self.world.metrics.set_active_delta(now, -1);
                    self.world.remove_active(ep);
                }
            }
        }
    }

    fn on_next_lookup(&mut self, now: u64, ep: EndpointId) {
        let Workload::Poisson {
            rate_per_node_per_sec,
        } = self.world.cfg.workload
        else {
            return;
        };
        let usable = self.drivers[ep]
            .as_ref()
            .is_some_and(|d| d.node().is_active());
        if !usable {
            return;
        }
        let key = Id::random(&mut self.world.rng);
        self.dispatch(now, ep, Event::Lookup { key, payload: 0 });
        let delay = exp_interval_us(&mut self.world.rng, rate_per_node_per_sec);
        self.world
            .queue
            .schedule_in(delay, Ev::NextLookup { node: ep });
    }

    fn on_scripted(&mut self, now: u64, idx: usize) {
        let s = self.world.scripted[idx];
        let Some(ep) = self.world.ep_of_session[s.session] else {
            self.world.skipped_scripted += 1;
            return;
        };
        let usable = self.drivers[ep]
            .as_ref()
            .is_some_and(|d| d.node().is_active());
        if !usable {
            self.world.skipped_scripted += 1;
            return;
        }
        self.dispatch(
            now,
            ep,
            Event::Lookup {
                key: s.key,
                payload: s.payload,
            },
        );
    }

    /// Feeds one event to the endpoint's driver; the driver's [`Host`] calls
    /// land on [`SimHost`], which mutates the `World` (never the drivers, so
    /// the split borrow is safe and the step cannot re-enter itself).
    fn dispatch(&mut self, now: u64, ep: EndpointId, event: Event) {
        let Some(driver) = self.drivers[ep].as_mut() else {
            return;
        };
        let mut host = SimHost {
            ep,
            now,
            world: &mut self.world,
        };
        driver.step(now, event, &mut host);
    }
}

/// Compares every active node's immediate leaf-set neighbours with the
/// true ring (sorted active identifiers).
fn count_ring_defects(drivers: &[Option<Driver>], w: &World) -> u64 {
    let mut ids: Vec<NodeId> = w.active_list.iter().map(|&e| w.node_ids[e]).collect();
    if ids.len() < 2 {
        return 0;
    }
    ids.sort();
    let pos = |id: NodeId| ids.binary_search(&id).expect("active id in ring");
    let mut defects = 0u64;
    for &e in &w.active_list {
        let Some(node) = drivers[e].as_ref().map(|d| d.node()) else {
            continue;
        };
        let id = w.node_ids[e];
        let p = pos(id);
        let true_right = ids[(p + 1) % ids.len()];
        let true_left = ids[(p + ids.len() - 1) % ids.len()];
        let ls = node.leaf_set();
        if ls.right_neighbor() != Some(true_right) || ls.left_neighbor() != Some(true_left) {
            defects += 1;
        }
    }
    defects
}

impl World {
    fn remove_active(&mut self, ep: EndpointId) {
        let pos = std::mem::replace(&mut self.active_pos[ep], NOT_ACTIVE);
        if pos != NOT_ACTIVE {
            let last = self.active_list.pop().unwrap();
            if last != ep {
                self.active_list[pos as usize] = last;
                self.active_pos[last] = pos;
            }
        }
    }

    fn apply_deliver(&mut self, now: u64, ep: EndpointId, d: Delivery) {
        let deliverer = self.node_ids[ep];
        let correct = self.oracle.root_of(d.key) == Some(deliverer);
        let direct = match self.src_ep.get(&d.id) {
            Some(&src) if src != ep => self.net.base_delay_us(src, ep),
            _ => 0,
        };
        self.metrics.sight_lookup(d.id, d.issued_at_us);
        self.metrics
            .on_delivered(now, d.id, d.issued_at_us, correct, d.hops, direct);
        if d.issued_at_us >= self.cfg.warmup_us {
            self.obs
                .record(self.h_latency, now.saturating_sub(d.issued_at_us));
            self.obs.record(self.h_hops, d.hops as u64);
        }
        if self.cfg.record_deliveries {
            let replica_sessions = d
                .replica_set
                .iter()
                .filter_map(|id| self.ep_of_id.get(&id.0))
                .map(|&e| self.session_of_ep[e])
                .collect();
            self.deliveries.push(DeliveryRecord {
                at_us: now,
                session: self.session_of_ep[ep],
                key: d.key,
                payload: d.payload,
                correct,
                issued_at_us: d.issued_at_us,
                hops: d.hops,
                replica_sessions,
            });
        }
    }

    fn apply_became_active(&mut self, now: u64, ep: EndpointId) {
        let id = self.node_ids[ep];
        if !self.oracle.contains(id) {
            self.oracle.insert(id);
            self.metrics.set_active_delta(now, 1);
            self.active_pos[ep] = self.active_list.len() as u32;
            self.active_list.push(ep);
            self.activations.push((self.session_of_ep[ep], now));
            let start = std::mem::replace(&mut self.join_started[ep], NO_JOIN);
            if start != NO_JOIN && now >= self.cfg.warmup_us {
                self.metrics.on_join_latency(now - start);
            }
            if let Workload::Poisson {
                rate_per_node_per_sec,
            } = self.cfg.workload
            {
                let first = now
                    .max(self.cfg.warmup_us)
                    .saturating_add(exp_interval_us(&mut self.rng, rate_per_node_per_sec));
                self.queue.schedule_at(first, Ev::NextLookup { node: ep });
            }
        }
    }

    fn apply_send(&mut self, now: u64, ep: EndpointId, to: NodeId, msg: Message) {
        self.metrics
            .on_send(now, msg.category(), mspastry::codec::encoded_len(&msg));
        self.metrics.on_send_kind(now, msg.kind_name());
        if let Message::Lookup {
            id, issued_at_us, ..
        } = &msg
        {
            self.metrics.sight_lookup(*id, *issued_at_us);
            if let Some(&src) = self.ep_of_id.get(&id.src.0) {
                self.src_ep.entry(*id).or_insert(src);
            }
        }
        let Some(&dst) = self.ep_of_id.get(&to.0) else {
            return; // message to a node that never existed (cannot happen)
        };
        // Messages to dead endpoints are transmitted and silently vanish
        // (crash-failure model).
        if let Some(delay) = self.net.sample_delivery(ep, dst) {
            let from = self.node_ids[ep];
            self.queue
                .schedule_in(delay, Ev::Msg { from, to: dst, msg });
        }
    }
}

/// Exponential inter-arrival sample for a Poisson process, microseconds.
fn exp_interval_us<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> u64 {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    ((-u.ln() / rate_per_sec) * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn::Session;

    fn static_trace(n: usize, duration_us: u64) -> Trace {
        let sessions = (0..n)
            .map(|_| Session {
                arrive_us: 0,
                depart_us: duration_us * 10,
            })
            .collect();
        Trace::new("static", duration_us, sessions)
    }

    fn quick_config(trace: Trace) -> RunConfig {
        RunConfig {
            topology: TopologyKind::GaTechTiny,
            warmup_us: 5 * 60 * 1_000_000,
            metrics_window_us: 60 * 1_000_000,
            ..RunConfig::new(trace)
        }
    }

    #[test]
    fn static_overlay_delivers_everything_correctly() {
        let cfg = quick_config(static_trace(30, 20 * 60 * 1_000_000));
        let res = run(cfg);
        assert_eq!(res.final_active, 30, "all nodes active");
        let r = &res.report;
        assert!(r.issued > 100, "issued {}", r.issued);
        assert_eq!(r.incorrect, 0, "no incorrect deliveries without churn");
        assert_eq!(r.lost, 0, "no losses without churn or network loss");
        // Routes are single-hop here, so RDP ≈ 1; delivery jitter (±5 %) can
        // push the mean marginally below 1.
        assert!(r.mean_rdp > 0.9, "rdp {}", r.mean_rdp);
        // 30 nodes fit inside one leaf set: single-hop routes, and ~1/30 of
        // the lookups root at the issuer itself (0 hops).
        assert!(r.mean_hops > 0.8, "hops {}", r.mean_hops);
    }

    #[test]
    fn exp_interval_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mean_us: f64 = (0..n)
            .map(|_| exp_interval_us(&mut rng, 0.5) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean_us / 2e6 - 1.0).abs() < 0.05, "mean {mean_us}");
    }

    #[test]
    fn churny_overlay_stays_consistent_without_loss() {
        // 60 nodes with 10-minute exponential sessions: brutal churn, no
        // network loss. The paper's headline claim: zero incorrect
        // deliveries.
        let trace = churn::poisson::trace(&churn::poisson::PoissonParams {
            mean_nodes: 60.0,
            mean_session_us: 10.0 * 60e6,
            duration_us: 30 * 60 * 1_000_000,
            seed: 7,
        });
        let cfg = quick_config(trace);
        let res = run(cfg);
        let r = &res.report;
        assert!(r.issued > 50, "issued {}", r.issued);
        assert_eq!(r.incorrect, 0, "incorrect deliveries under pure churn");
        assert!(
            r.loss_rate < 0.02,
            "per-hop acks keep losses tiny, got {}",
            r.loss_rate
        );
        assert!(res.final_active > 20);
    }

    #[test]
    fn timeseries_and_profile_collect_when_enabled() {
        let mut cfg = quick_config(static_trace(15, 10 * 60 * 1_000_000));
        cfg.ts_interval_us = 60 * 1_000_000;
        cfg.profile = true;
        let res = run(cfg);
        let ts = res.timeseries.as_ref().expect("sampler ran");
        // 15 min total run (warmup + trace) at 1-minute cadence, plus the
        // final partial window.
        assert!(ts.len() >= 14, "windows {}", ts.len());
        assert_eq!(ts.dropped(), 0);
        // Per-window deltas must sum back to the end-of-run totals.
        for name in ["net.delivered", "net.sent"] {
            let total: u64 = ts
                .windows()
                .flat_map(|w| w.counters.iter())
                .filter(|(n, _)| n == name)
                .map(|(_, d)| d)
                .sum();
            assert_eq!(total, res.diag.counter(name), "counter {name}");
        }
        let prof = res.prof.as_ref().expect("profiler ran");
        // Every simulation event except the final `End` (which breaks out of
        // the loop before recording) is profiled; TsSample events are not
        // simulation events at all.
        assert_eq!(prof.events, res.sim_events - 1);
        assert!(prof.kinds.iter().any(|k| k.name == "msg"));
        assert!(prof.depth_max > 0 && prof.depth_samples > 0);
    }

    #[test]
    fn telemetry_is_off_by_default() {
        let res = run(quick_config(static_trace(5, 5 * 60 * 1_000_000)));
        assert!(res.timeseries.is_none());
        assert!(res.prof.is_none());
    }

    #[test]
    fn deliveries_are_recorded_when_requested() {
        let mut cfg = quick_config(static_trace(10, 10 * 60 * 1_000_000));
        cfg.record_deliveries = true;
        let res = run(cfg);
        assert_eq!(res.deliveries.len() as u64, res.report.delivered);
        assert!(res.deliveries.iter().all(|d| d.correct));
    }

    #[test]
    fn scripted_workload_fires_on_sessions() {
        let trace = static_trace(10, 10 * 60 * 1_000_000);
        let script: Vec<ScriptedLookup> = (0..20)
            .map(|i| ScriptedLookup {
                at_us: 60_000_000 + i * 1_000_000,
                session: (i % 10) as usize,
                key: Id(i as u128 * 1234567),
                payload: i,
            })
            .collect();
        let mut cfg = quick_config(trace);
        cfg.workload = Workload::Scripted(script);
        cfg.record_deliveries = true;
        let res = run(cfg);
        assert_eq!(res.skipped_scripted, 0);
        assert_eq!(res.report.delivered, 20);
        assert_eq!(res.deliveries.len(), 20);
    }
}
