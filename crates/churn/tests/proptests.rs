//! Property-based tests for trace invariants and the CSV codec.

use churn::{Session, Trace, TraceEvent};
use proptest::prelude::*;

fn arb_session() -> impl Strategy<Value = Session> {
    (0u64..1_000_000, 0u64..2_000_000).prop_map(|(a, len)| Session {
        arrive_us: a,
        depart_us: a + len,
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec(arb_session(), 0..60), 1u64..2_000_000)
        .prop_map(|(sessions, dur)| Trace::new("prop", dur, sessions))
}

proptest! {
    #[test]
    fn csv_round_trips(trace in arb_trace()) {
        let parsed = Trace::from_csv(&trace.to_csv()).unwrap();
        prop_assert_eq!(trace, parsed);
    }

    #[test]
    fn events_are_sorted_and_within_horizon(trace in arb_trace()) {
        let events = trace.events();
        for w in events.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        for (t, _) in &events {
            prop_assert!(*t < trace.duration_us());
        }
    }

    #[test]
    fn every_fail_event_has_a_preceding_join(trace in arb_trace()) {
        let events = trace.events();
        for (t, ev) in &events {
            if let TraceEvent::Fail(i) = ev {
                let join = events
                    .iter()
                    .find(|(tj, e)| matches!(e, TraceEvent::Join(j) if j == i) && tj <= t);
                prop_assert!(join.is_some(), "fail of session {i} without join");
            }
        }
    }

    #[test]
    fn active_count_matches_event_replay(trace in arb_trace(), at in 0u64..2_000_000) {
        // Replaying joins/fails up to `at` must agree with active_at
        // (modulo sessions departing beyond the horizon, which active_at
        // counts but the event list clamps — replay them from sessions).
        let naive = trace
            .sessions()
            .iter()
            .filter(|s| s.arrive_us <= at && s.depart_us > at)
            .count();
        prop_assert_eq!(trace.active_at(at), naive);
    }

    #[test]
    fn failure_rate_series_is_finite_and_nonnegative(trace in arb_trace(), window in 1_000u64..500_000) {
        for (_, rate) in trace.failure_rate_series(window) {
            prop_assert!(rate.is_finite());
            prop_assert!(rate >= 0.0);
        }
    }

    #[test]
    fn session_stats_are_consistent(trace in arb_trace()) {
        if !trace.sessions().is_empty() {
            let mean = trace.mean_session_us();
            let median = trace.median_session_us();
            let max = trace.sessions().iter().map(Session::length_us).max().unwrap();
            let min = trace.sessions().iter().map(Session::length_us).min().unwrap();
            prop_assert!(mean >= min as f64 && mean <= max as f64);
            prop_assert!(median >= min && median <= max);
        }
    }
}
