//! Gnutella-like churn trace.
//!
//! Modelled on the Saroiu et al. measurement study used by the paper: 17,000
//! unique nodes monitored for 60 hours, average session time 2.3 h, median
//! 1 h, between 1300 and 2700 concurrently active nodes, and a pronounced
//! daily failure-rate wave between roughly 1×10⁻⁴ and 3.5×10⁻⁴ failures per
//! node per second.

use crate::dist::SessionDist;
use crate::synth::{self, PopulationProfile, SynthParams};
use crate::trace::Trace;

/// Parameters of the Gnutella-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnutellaParams {
    /// Multiplier on the population (1.0 = the paper's 1300-2700 active
    /// nodes). Use < 1 for quick runs.
    pub population_scale: f64,
    /// Trace horizon, microseconds (paper: 60 hours).
    pub duration_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GnutellaParams {
    fn default() -> Self {
        GnutellaParams {
            population_scale: 1.0,
            duration_us: 60 * 3600 * 1_000_000,
            seed: 101,
        }
    }
}

impl GnutellaParams {
    /// Quick preset: ~200 active nodes for 2 simulated hours.
    pub fn quick() -> Self {
        GnutellaParams {
            population_scale: 0.1,
            duration_us: 2 * 3600 * 1_000_000,
            ..Self::default()
        }
    }
}

/// Generates a Gnutella-like trace.
pub fn trace(p: &GnutellaParams) -> Trace {
    let params = SynthParams {
        duration_us: p.duration_us,
        population: PopulationProfile {
            base: 2000.0 * p.population_scale,
            daily_amplitude: 0.30,
            weekly_amplitude: 0.05,
            phase: 0.25,
        },
        // Mean 2.3 h, median 1 h.
        sessions: SessionDist::log_normal_from_mean_median(2.3 * 3600e6, 3600e6),
        churn_daily_amplitude: 0.45,
        seed: p.seed,
    };
    synth::generate("gnutella", &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_statistics_match_study() {
        let t = trace(&GnutellaParams {
            population_scale: 0.25,
            ..Default::default()
        });
        let mean_h = t.mean_session_us() / 3600e6;
        let median_h = t.median_session_us() as f64 / 3600e6;
        assert!((mean_h - 2.3).abs() < 0.4, "mean session {mean_h} h");
        assert!((median_h - 1.0).abs() < 0.25, "median session {median_h} h");
    }

    #[test]
    fn population_within_study_range() {
        let t = trace(&GnutellaParams::default());
        for hour in [10u64, 25, 40, 55] {
            let active = t.active_at(hour * 3600 * 1_000_000);
            assert!(
                (1100..=3100).contains(&active),
                "active {active} at hour {hour}"
            );
        }
    }

    #[test]
    fn failure_rate_is_in_the_e_minus_4_band() {
        let t = trace(&GnutellaParams::default());
        let series = t.failure_rate_series(10 * 60 * 1_000_000);
        // Skip the warmup hours influenced by the residual initial sessions.
        let rates: Vec<f64> = series.iter().skip(36).map(|(_, r)| *r).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (5e-5..4e-4).contains(&mean),
            "mean failure rate {mean} per node per second"
        );
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min.max(1e-9) > 1.5, "expected a visible daily wave");
    }
}
