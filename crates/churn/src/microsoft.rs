//! Microsoft-corporate-network-like churn trace.
//!
//! Modelled on the Bolosky et al. availability study used by the paper:
//! 20,000 machines (sampled from 65,000) monitored for 37 days, average
//! session time 37.7 hours, between 14,700 and 15,600 concurrently active
//! nodes, with failure rates an order of magnitude lower than the open
//! Internet traces and clear daily plus weekly patterns.

use crate::dist::SessionDist;
use crate::synth::{self, PopulationProfile, SynthParams};
use crate::trace::Trace;

/// Parameters of the Microsoft-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrosoftParams {
    /// Multiplier on the population (1.0 = the paper's ≈15,000 active nodes).
    pub population_scale: f64,
    /// Trace horizon, microseconds (paper: 37 days).
    pub duration_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicrosoftParams {
    fn default() -> Self {
        MicrosoftParams {
            population_scale: 1.0,
            duration_us: 37 * 24 * 3600 * 1_000_000,
            seed: 303,
        }
    }
}

impl MicrosoftParams {
    /// Quick preset: ~300 active nodes for 4 simulated hours.
    pub fn quick() -> Self {
        MicrosoftParams {
            population_scale: 0.02,
            duration_us: 4 * 3600 * 1_000_000,
            ..Self::default()
        }
    }
}

/// Generates a Microsoft-corporate-like trace.
pub fn trace(p: &MicrosoftParams) -> Trace {
    let params = SynthParams {
        duration_us: p.duration_us,
        population: PopulationProfile {
            base: 15_150.0 * p.population_scale,
            daily_amplitude: 0.02,
            weekly_amplitude: 0.01,
            phase: 0.25,
        },
        // Mean 37.7 h; the study does not report a median, we assume a
        // moderately skewed log-normal with median 24 h.
        sessions: SessionDist::log_normal_from_mean_median(37.7 * 3600e6, 24.0 * 3600e6),
        churn_daily_amplitude: 0.35,
        seed: p.seed,
    };
    synth::generate("microsoft", &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaled() -> Trace {
        // 1/10 population over 10 days keeps the test fast.
        trace(&MicrosoftParams {
            population_scale: 0.1,
            duration_us: 10 * 24 * 3600 * 1_000_000,
            ..Default::default()
        })
    }

    #[test]
    fn session_statistics_match_study() {
        let t = scaled();
        let mean_h = t.mean_session_us() / 3600e6;
        assert!((mean_h - 37.7).abs() < 8.0, "mean session {mean_h} h");
    }

    #[test]
    fn population_is_steady() {
        let t = scaled();
        for day in 2..9u64 {
            let active = t.active_at(day * 24 * 3600 * 1_000_000) as f64;
            assert!(
                (active / 1515.0 - 1.0).abs() < 0.15,
                "active {active} at day {day}"
            );
        }
    }

    #[test]
    fn failure_rate_is_an_order_of_magnitude_below_gnutella() {
        let t = scaled();
        let series = t.failure_rate_series(3600 * 1_000_000);
        let rates: Vec<f64> = series.iter().skip(48).map(|(_, r)| *r).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (2e-6..3e-5).contains(&mean),
            "mean failure rate {mean} per node per second"
        );
    }
}
