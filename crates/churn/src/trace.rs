//! Churn traces: node arrival and failure times.
//!
//! A trace is a set of *sessions*; each session is one overlay node instance
//! that joins at `arrive_us` and fails (or voluntarily departs — the overlay
//! cannot tell the difference and the paper treats both as failures) at
//! `depart_us`. Sessions whose departure lies beyond the trace horizon never
//! fail during the experiment.

use std::fmt;

/// One node session: the node arrives, stays for a while, then departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Session {
    /// Arrival time, microseconds since trace start.
    pub arrive_us: u64,
    /// Departure (failure) time, microseconds since trace start. May exceed
    /// the trace duration, in which case the node survives the experiment.
    pub depart_us: u64,
}

impl Session {
    /// Session length in microseconds.
    pub fn length_us(&self) -> u64 {
        self.depart_us.saturating_sub(self.arrive_us)
    }
}

/// A single arrival or failure event of a session in a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// The session with this index (into [`Trace::sessions`]) arrives.
    Join(usize),
    /// The session with this index fails.
    Fail(usize),
}

/// A complete churn trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    duration_us: u64,
    sessions: Vec<Session>,
}

/// Error parsing a trace from its CSV representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Creates a trace from raw sessions.
    ///
    /// # Panics
    ///
    /// Panics if any session departs before it arrives.
    pub fn new(name: impl Into<String>, duration_us: u64, mut sessions: Vec<Session>) -> Self {
        for s in &sessions {
            assert!(
                s.depart_us >= s.arrive_us,
                "session departs before it arrives: {s:?}"
            );
        }
        sessions.sort();
        Trace {
            name: name.into(),
            duration_us,
            sessions,
        }
    }

    /// Trace name (e.g. `"gnutella"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Experiment horizon, microseconds.
    pub fn duration_us(&self) -> u64 {
        self.duration_us
    }

    /// All sessions, sorted by arrival time.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// All join/fail events within the horizon, sorted by time. Failures at
    /// or beyond the horizon are omitted.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        let mut ev = Vec::with_capacity(self.sessions.len() * 2);
        for (i, s) in self.sessions.iter().enumerate() {
            if s.arrive_us < self.duration_us {
                ev.push((s.arrive_us, TraceEvent::Join(i)));
                if s.depart_us < self.duration_us {
                    ev.push((s.depart_us, TraceEvent::Fail(i)));
                }
            }
        }
        ev.sort_by_key(|(t, e)| (*t, matches!(e, TraceEvent::Fail(_))));
        ev
    }

    /// Number of sessions alive at time `t`.
    pub fn active_at(&self, t_us: u64) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.arrive_us <= t_us && s.depart_us > t_us)
            .count()
    }

    /// Mean session length in microseconds (sessions truncated by the horizon
    /// still count with their full nominal length, matching how the published
    /// traces report session statistics).
    pub fn mean_session_us(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.sessions.iter().map(|s| s.length_us() as u128).sum();
        sum as f64 / self.sessions.len() as f64
    }

    /// Median session length in microseconds.
    pub fn median_session_us(&self) -> u64 {
        if self.sessions.is_empty() {
            return 0;
        }
        let mut lens: Vec<u64> = self.sessions.iter().map(Session::length_us).collect();
        lens.sort_unstable();
        lens[lens.len() / 2]
    }

    /// Node failure rate per node per second, averaged over consecutive
    /// windows of `window_us`, as plotted in the paper's Figure 3.
    ///
    /// Each element is `(window_start_us, failures / (active_nodes * window_seconds))`.
    pub fn failure_rate_series(&self, window_us: u64) -> Vec<(u64, f64)> {
        assert!(window_us > 0, "window must be positive");
        let n_windows = (self.duration_us / window_us) as usize;
        let mut fails = vec![0u64; n_windows + 1];
        for s in &self.sessions {
            if s.depart_us < self.duration_us {
                let w = (s.depart_us / window_us) as usize;
                fails[w] += 1;
            }
        }
        let mut out = Vec::with_capacity(n_windows);
        for (w, &n_fails) in fails.iter().enumerate().take(n_windows) {
            let t0 = w as u64 * window_us;
            let mid = t0 + window_us / 2;
            let active = self.active_at(mid).max(1);
            let rate = n_fails as f64 / (active as f64 * (window_us as f64 / 1e6));
            out.push((t0, rate));
        }
        out
    }

    /// Serialises the trace to a small CSV format:
    /// `name,duration_us` header line followed by `arrive_us,depart_us` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{},{}\n", self.name, self.duration_us));
        for s in &self.sessions {
            out.push_str(&format!("{},{}\n", s.arrive_us, s.depart_us));
        }
        out
    }

    /// Parses a trace from the CSV format produced by [`Trace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed headers, fields, or sessions
    /// that depart before they arrive.
    pub fn from_csv(text: &str) -> Result<Self, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ParseTraceError {
            line: 0,
            reason: "empty input".into(),
        })?;
        let (name, dur) = header.split_once(',').ok_or(ParseTraceError {
            line: 1,
            reason: "header must be `name,duration_us`".into(),
        })?;
        let duration_us: u64 = dur.trim().parse().map_err(|e| ParseTraceError {
            line: 1,
            reason: format!("bad duration: {e}"),
        })?;
        let mut sessions = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (a, d) = line.split_once(',').ok_or(ParseTraceError {
                line: i + 1,
                reason: "expected `arrive_us,depart_us`".into(),
            })?;
            let arrive_us: u64 = a.trim().parse().map_err(|e| ParseTraceError {
                line: i + 1,
                reason: format!("bad arrival: {e}"),
            })?;
            let depart_us: u64 = d.trim().parse().map_err(|e| ParseTraceError {
                line: i + 1,
                reason: format!("bad departure: {e}"),
            })?;
            if depart_us < arrive_us {
                return Err(ParseTraceError {
                    line: i + 1,
                    reason: "session departs before it arrives".into(),
                });
            }
            sessions.push(Session {
                arrive_us,
                depart_us,
            });
        }
        Ok(Trace::new(name.trim().to_string(), duration_us, sessions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "t",
            100,
            vec![
                Session {
                    arrive_us: 0,
                    depart_us: 50,
                },
                Session {
                    arrive_us: 10,
                    depart_us: 200,
                },
                Session {
                    arrive_us: 60,
                    depart_us: 90,
                },
            ],
        )
    }

    #[test]
    fn events_are_sorted_and_clamped() {
        let ev = sample().events();
        assert_eq!(ev.len(), 5, "fail at 200 is beyond the horizon");
        let times: Vec<u64> = ev.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn active_counts() {
        let t = sample();
        assert_eq!(t.active_at(5), 1);
        assert_eq!(t.active_at(20), 2);
        assert_eq!(t.active_at(70), 2);
        assert_eq!(t.active_at(95), 1);
    }

    #[test]
    fn mean_and_median() {
        let t = sample();
        assert_eq!(t.median_session_us(), 50);
        let mean = (50.0 + 190.0 + 30.0) / 3.0;
        assert!((t.mean_session_us() - mean).abs() < 1e-9);
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let parsed = Trace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(Trace::from_csv("nonsense").is_err());
        assert!(Trace::from_csv("").is_err());
    }

    #[test]
    fn parse_rejects_inverted_session() {
        let err = Trace::from_csv("t,100\n50,10\n").unwrap_err();
        assert!(err.to_string().contains("departs before"));
    }

    #[test]
    fn failure_rate_series_counts_failures() {
        let t = sample();
        let series = t.failure_rate_series(50);
        assert_eq!(series.len(), 2);
        // Window 1 (50..100) has the failures at 50 and 90 with 2 active at
        // t=75.
        let (_, rate) = series[1];
        assert!((rate - 2.0 / (2.0 * 50e-6)).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn new_rejects_inverted_session() {
        Trace::new(
            "bad",
            10,
            vec![Session {
                arrive_us: 5,
                depart_us: 1,
            }],
        );
    }
}
