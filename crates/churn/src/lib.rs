#![warn(missing_docs)]
//! Churn traces for the MSPastry evaluation.
//!
//! The paper drives its fault injection with real traces of node arrivals and
//! departures from three measurement studies (Gnutella, OverNet, and the
//! Microsoft corporate network) plus artificial Poisson traces. The real
//! trace files are not public, so this crate generates synthetic traces that
//! match the published summary statistics and diurnal/weekly shape (see
//! DESIGN.md, substitution #1). Traces are deterministic for a given seed and
//! round-trip through a small CSV format.
//!
//! # Example
//!
//! ```
//! use churn::gnutella::{self, GnutellaParams};
//!
//! let trace = gnutella::trace(&GnutellaParams::quick());
//! assert!(trace.active_at(trace.duration_us() / 2) > 50);
//! let events = trace.events(); // (time, Join/Fail) pairs for the simulator
//! assert!(!events.is_empty());
//! ```

pub mod dist;
pub mod gnutella;
pub mod microsoft;
pub mod overnet;
pub mod poisson;
pub mod synth;
pub mod trace;

pub use dist::SessionDist;
pub use synth::{PopulationProfile, SynthParams};
pub use trace::{ParseTraceError, Session, Trace, TraceEvent};
