//! OverNet-like churn trace.
//!
//! Modelled on the Bhagwan et al. availability study used by the paper: 1,468
//! unique OverNet nodes monitored for 7 days, average session time 134
//! minutes, median 79 minutes, between 260 and 650 concurrently active nodes,
//! with daily and weekly failure-rate patterns similar to Gnutella.

use crate::dist::SessionDist;
use crate::synth::{self, PopulationProfile, SynthParams};
use crate::trace::Trace;

/// Parameters of the OverNet-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvernetParams {
    /// Multiplier on the population (1.0 = the paper's 260-650 active nodes).
    pub population_scale: f64,
    /// Trace horizon, microseconds (paper: 7 days).
    pub duration_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OvernetParams {
    fn default() -> Self {
        OvernetParams {
            population_scale: 1.0,
            duration_us: 7 * 24 * 3600 * 1_000_000,
            seed: 202,
        }
    }
}

impl OvernetParams {
    /// Quick preset: full population for 2 simulated hours.
    pub fn quick() -> Self {
        OvernetParams {
            duration_us: 2 * 3600 * 1_000_000,
            ..Self::default()
        }
    }
}

/// Generates an OverNet-like trace.
pub fn trace(p: &OvernetParams) -> Trace {
    let params = SynthParams {
        duration_us: p.duration_us,
        population: PopulationProfile {
            base: 450.0 * p.population_scale,
            daily_amplitude: 0.35,
            weekly_amplitude: 0.08,
            phase: 0.25,
        },
        // Mean 134 min, median 79 min.
        sessions: SessionDist::log_normal_from_mean_median(134.0 * 60e6, 79.0 * 60e6),
        churn_daily_amplitude: 0.40,
        seed: p.seed,
    };
    synth::generate("overnet", &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_statistics_match_study() {
        let t = trace(&OvernetParams::default());
        let mean_min = t.mean_session_us() / 60e6;
        let median_min = t.median_session_us() as f64 / 60e6;
        assert!(
            (mean_min - 134.0).abs() < 25.0,
            "mean session {mean_min} min"
        );
        assert!(
            (median_min - 79.0).abs() < 20.0,
            "median session {median_min} min"
        );
    }

    #[test]
    fn population_within_study_range() {
        let t = trace(&OvernetParams::default());
        for day in 1..7u64 {
            let active = t.active_at(day * 24 * 3600 * 1_000_000);
            assert!(
                (200..=800).contains(&active),
                "active {active} at day {day}"
            );
        }
    }

    #[test]
    fn failure_rate_level_matches_gnutella_band() {
        // The paper notes OverNet and Gnutella have similar failure rates.
        let t = trace(&OvernetParams::default());
        let series = t.failure_rate_series(10 * 60 * 1_000_000);
        let rates: Vec<f64> = series.iter().skip(24).map(|(_, r)| *r).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (5e-5..4e-4).contains(&mean),
            "mean failure rate {mean} per node per second"
        );
    }
}
