//! Population-driven synthetic trace generator.
//!
//! The generator maintains a target active-population profile (base level
//! modulated by daily and weekly waves, as visible in the paper's Figure 3)
//! and issues Poisson arrivals whose rate is the steady-state replacement
//! rate `target(t)/mean_session` plus a gentle feedback term that pulls the
//! actual population back towards the target. Session lengths come from a
//! [`SessionDist`]. All randomness is seeded, so traces are reproducible.

use crate::dist::SessionDist;
use crate::trace::{Session, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seconds per day / week, in microseconds.
pub const DAY_US: u64 = 24 * 3600 * 1_000_000;
/// One week, in microseconds.
pub const WEEK_US: u64 = 7 * DAY_US;

/// A smoothly varying target population profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationProfile {
    /// Mean active population.
    pub base: f64,
    /// Relative amplitude of the daily wave (0 = none, 0.3 = ±30 %).
    pub daily_amplitude: f64,
    /// Relative amplitude of the weekly wave.
    pub weekly_amplitude: f64,
    /// Phase offset of the daily wave, fraction of a day in `[0, 1)`.
    pub phase: f64,
}

impl PopulationProfile {
    /// Constant population of `base` nodes.
    pub fn flat(base: f64) -> Self {
        PopulationProfile {
            base,
            daily_amplitude: 0.0,
            weekly_amplitude: 0.0,
            phase: 0.0,
        }
    }

    /// Target population at time `t_us`.
    pub fn target_at(&self, t_us: u64) -> f64 {
        use std::f64::consts::TAU;
        let day = t_us as f64 / DAY_US as f64;
        let week = t_us as f64 / WEEK_US as f64;
        let daily = 1.0 + self.daily_amplitude * (TAU * (day + self.phase)).sin();
        let weekly = 1.0 + self.weekly_amplitude * (TAU * week).sin();
        (self.base * daily * weekly).max(0.0)
    }
}

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Trace horizon, microseconds.
    pub duration_us: u64,
    /// Target active population over time.
    pub population: PopulationProfile,
    /// Session-length distribution.
    pub sessions: SessionDist,
    /// Relative amplitude of the *churn-intensity* daily wave. Churn in open
    /// systems peaks even when the population is steady; this modulates the
    /// replacement rate without changing the population level.
    pub churn_daily_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a churn trace matching the requested population and session
/// statistics.
///
/// The returned trace includes the initial population (sessions with
/// `arrive_us == 0`) so an experiment can bootstrap the overlay before churn
/// starts.
pub fn generate(name: &str, p: &SynthParams) -> Trace {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut sessions: Vec<Session> = Vec::new();
    // Departure times of currently alive sessions, as a simple counter per
    // step: we only need the active count, so keep a min-heap of departures.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut departures: BinaryHeap<Reverse<u64>> = BinaryHeap::new();

    // Initial population with equilibrium residual lifetimes: sample a
    // length-biased session and keep a uniform residual. Length-biasing is
    // approximated by sampling two sessions and keeping the longer, which is
    // close enough for a warm start (the overlay warms up anyway).
    let initial = p.population.target_at(0).round() as usize;
    for _ in 0..initial {
        let l = p.sessions.sample(&mut rng).max(p.sessions.sample(&mut rng));
        let residual = rng.gen_range(1..=l.max(1));
        let depart = residual;
        sessions.push(Session {
            arrive_us: 0,
            depart_us: depart,
        });
        departures.push(Reverse(depart));
    }

    // Walk time in steps, issuing Poisson arrivals.
    let step_us: u64 = 30_000_000; // 30 s
    let mean_session = p.sessions.mean_us();
    let mut t = 0u64;
    let mut alive = initial as f64;
    while t < p.duration_us {
        // Active count at t.
        while let Some(Reverse(d)) = departures.peek() {
            if *d <= t {
                departures.pop();
                alive -= 1.0;
            } else {
                break;
            }
        }
        let target = p.population.target_at(t);
        use std::f64::consts::TAU;
        let day = t as f64 / DAY_US as f64;
        let churn_mod = 1.0 + p.churn_daily_amplitude * (TAU * day).sin();
        // Steady-state replacement plus feedback with a 10 minute horizon.
        let replacement = target * churn_mod.max(0.05) / mean_session;
        let feedback = ((target - alive) / 600e6).max(0.0);
        let rate_per_us = replacement + feedback;
        let expected = rate_per_us * step_us as f64;
        let arrivals = poisson(&mut rng, expected);
        for _ in 0..arrivals {
            let at = t + rng.gen_range(0..step_us);
            let len = p.sessions.sample(&mut rng);
            let depart = at.saturating_add(len);
            sessions.push(Session {
                arrive_us: at,
                depart_us: depart,
            });
            departures.push(Reverse(depart));
            alive += 1.0;
        }
        t += step_us;
    }

    Trace::new(name, p.duration_us, sessions)
}

/// Draws a Poisson variate with the given mean (Knuth for small means, normal
/// approximation for large ones).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let z = crate::dist::standard_normal(rng);
        return (mean + mean.sqrt() * z).round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut prod = 1.0;
    loop {
        prod *= rng.gen_range(0.0..1.0f64);
        if prod <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn flat_profile_is_constant() {
        let p = PopulationProfile::flat(100.0);
        assert_eq!(p.target_at(0), 100.0);
        assert_eq!(p.target_at(DAY_US / 3), 100.0);
    }

    #[test]
    fn daily_wave_oscillates() {
        let p = PopulationProfile {
            base: 100.0,
            daily_amplitude: 0.3,
            weekly_amplitude: 0.0,
            phase: 0.0,
        };
        let quarter = p.target_at(DAY_US / 4);
        let three_quarter = p.target_at(3 * DAY_US / 4);
        assert!((quarter - 130.0).abs() < 1.0);
        assert!((three_quarter - 70.0).abs() < 1.0);
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        for mean in [0.5, 3.0, 80.0] {
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!((got / mean - 1.0).abs() < 0.1, "mean {mean} got {got}");
        }
    }

    #[test]
    fn generated_population_tracks_target() {
        let params = SynthParams {
            duration_us: 4 * 3600 * 1_000_000,
            population: PopulationProfile::flat(200.0),
            sessions: SessionDist::exponential(1800e6),
            churn_daily_amplitude: 0.0,
            seed: 9,
        };
        let t = generate("flat", &params);
        for hour in 1..4u64 {
            let active = t.active_at(hour * 3600 * 1_000_000) as f64;
            assert!(
                (active / 200.0 - 1.0).abs() < 0.25,
                "active {active} at hour {hour}"
            );
        }
    }

    #[test]
    fn generated_session_mean_matches_distribution() {
        let params = SynthParams {
            duration_us: 8 * 3600 * 1_000_000,
            population: PopulationProfile::flat(500.0),
            sessions: SessionDist::exponential(1800e6),
            churn_daily_amplitude: 0.0,
            seed: 10,
        };
        let t = generate("flat", &params);
        // Skip the length-biased initial sessions.
        let later: Vec<f64> = t
            .sessions()
            .iter()
            .filter(|s| s.arrive_us > 0)
            .map(|s| s.length_us() as f64)
            .collect();
        assert!(later.len() > 1000);
        let mean = later.iter().sum::<f64>() / later.len() as f64;
        assert!((mean / 1800e6 - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let params = SynthParams {
            duration_us: 3600 * 1_000_000,
            population: PopulationProfile::flat(50.0),
            sessions: SessionDist::exponential(600e6),
            churn_daily_amplitude: 0.2,
            seed: 11,
        };
        assert_eq!(
            generate("a", &params).sessions(),
            generate("a", &params).sessions()
        );
    }
}
