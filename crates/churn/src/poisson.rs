//! Artificial Poisson churn traces.
//!
//! The paper complements the real traces with artificial ones: Poisson node
//! arrivals and exponentially distributed session times, an average of 10,000
//! active nodes, and session times of 5, 15, 30, 60, 120 and 600 minutes
//! (most far harsher than anything observed in deployed systems).

use crate::dist::SessionDist;
use crate::synth::{self, PopulationProfile, SynthParams};
use crate::trace::Trace;

/// Parameters of the Poisson trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonParams {
    /// Average number of active nodes (paper: 10,000).
    pub mean_nodes: f64,
    /// Mean session time, microseconds.
    pub mean_session_us: f64,
    /// Trace horizon, microseconds.
    pub duration_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoissonParams {
    fn default() -> Self {
        PoissonParams {
            mean_nodes: 10_000.0,
            mean_session_us: 60.0 * 60e6,
            duration_us: 4 * 3600 * 1_000_000,
            seed: 404,
        }
    }
}

impl PoissonParams {
    /// The paper's sweep of mean session times, in minutes.
    pub const SESSION_MINUTES: [u64; 6] = [5, 15, 30, 60, 120, 600];

    /// Preset with the given mean session time in minutes.
    pub fn with_session_minutes(minutes: u64) -> Self {
        PoissonParams {
            mean_session_us: minutes as f64 * 60e6,
            ..Self::default()
        }
    }

    /// Quick preset: 300 nodes, 1 simulated hour.
    pub fn quick(minutes: u64) -> Self {
        PoissonParams {
            mean_nodes: 300.0,
            mean_session_us: minutes as f64 * 60e6,
            duration_us: 3600 * 1_000_000,
            seed: 404,
        }
    }
}

/// Generates a Poisson-churn trace.
pub fn trace(p: &PoissonParams) -> Trace {
    let params = SynthParams {
        duration_us: p.duration_us,
        population: PopulationProfile::flat(p.mean_nodes),
        sessions: SessionDist::exponential(p.mean_session_us),
        churn_daily_amplitude: 0.0,
        seed: p.seed,
    };
    synth::generate("poisson", &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_flat_at_mean() {
        let t = trace(&PoissonParams {
            mean_nodes: 500.0,
            mean_session_us: 30.0 * 60e6,
            duration_us: 2 * 3600 * 1_000_000,
            seed: 1,
        });
        for minute in [30u64, 60, 90] {
            let active = t.active_at(minute * 60 * 1_000_000) as f64;
            assert!(
                (active / 500.0 - 1.0).abs() < 0.2,
                "active {active} at minute {minute}"
            );
        }
    }

    #[test]
    fn session_mean_matches() {
        let t = trace(&PoissonParams {
            mean_nodes: 1000.0,
            mean_session_us: 15.0 * 60e6,
            duration_us: 3 * 3600 * 1_000_000,
            seed: 2,
        });
        let later: Vec<f64> = t
            .sessions()
            .iter()
            .filter(|s| s.arrive_us > 0)
            .map(|s| s.length_us() as f64)
            .collect();
        let mean = later.iter().sum::<f64>() / later.len() as f64;
        assert!((mean / (15.0 * 60e6) - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shorter_sessions_mean_more_failures() {
        let short = trace(&PoissonParams::quick(5));
        let long = trace(&PoissonParams::quick(120));
        let fails = |t: &Trace| {
            t.sessions()
                .iter()
                .filter(|s| s.depart_us < t.duration_us())
                .count()
        };
        assert!(fails(&short) > 4 * fails(&long));
    }
}
