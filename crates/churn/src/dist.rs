//! Session-length distributions.
//!
//! The published traces report mean and median session times; a log-normal
//! matches the heavy-tailed session behaviour observed in peer-to-peer
//! measurement studies and can be fitted exactly to a (mean, median) pair:
//! `median = exp(mu)` and `mean = exp(mu + sigma^2/2)`.

use rand::Rng;

/// Distribution of node session lengths (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionDist {
    /// Log-normal with location `mu` and scale `sigma` of the underlying
    /// normal (in ln-microseconds).
    LogNormal {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given mean (microseconds).
    Exponential {
        /// Mean session length, microseconds.
        mean_us: f64,
    },
}

impl SessionDist {
    /// Fits a log-normal to a target mean and median session length.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_us > median_us > 0` (a log-normal always has
    /// mean > median).
    pub fn log_normal_from_mean_median(mean_us: f64, median_us: f64) -> Self {
        assert!(
            mean_us > median_us && median_us > 0.0,
            "log-normal requires mean > median > 0 (got mean {mean_us}, median {median_us})"
        );
        let mu = median_us.ln();
        let sigma = (2.0 * (mean_us / median_us).ln()).sqrt();
        SessionDist::LogNormal { mu, sigma }
    }

    /// Exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean_us` is not positive.
    pub fn exponential(mean_us: f64) -> Self {
        assert!(mean_us > 0.0, "mean must be positive");
        SessionDist::Exponential { mean_us }
    }

    /// The distribution's mean session length, microseconds.
    pub fn mean_us(&self) -> f64 {
        match *self {
            SessionDist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            SessionDist::Exponential { mean_us } => mean_us,
        }
    }

    /// The distribution's median session length, microseconds.
    pub fn median_us(&self) -> f64 {
        match *self {
            SessionDist::LogNormal { mu, .. } => mu.exp(),
            SessionDist::Exponential { mean_us } => mean_us * std::f64::consts::LN_2,
        }
    }

    /// Draws one session length, microseconds (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let v = match *self {
            SessionDist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            SessionDist::Exponential { mean_us } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean_us * u.ln()
            }
        };
        v.max(1.0).min(u64::MAX as f64) as u64
    }
}

/// Standard normal variate via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_fit_recovers_mean_and_median() {
        let d = SessionDist::log_normal_from_mean_median(8_280e6, 3_600e6);
        assert!((d.mean_us() - 8_280e6).abs() / 8_280e6 < 1e-12);
        assert!((d.median_us() - 3_600e6).abs() / 3_600e6 < 1e-12);
    }

    #[test]
    fn lognormal_sample_statistics_match() {
        let d = SessionDist::log_normal_from_mean_median(8_280e6, 3_600e6);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[n / 2] as f64;
        assert!((mean / 8_280e6 - 1.0).abs() < 0.05, "sample mean {mean}");
        assert!(
            (median / 3_600e6 - 1.0).abs() < 0.05,
            "sample median {median}"
        );
    }

    #[test]
    fn exponential_sample_mean_matches() {
        let d = SessionDist::exponential(1_000_000.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (mean / 1_000_000.0 - 1.0).abs() < 0.05,
            "sample mean {mean}"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_mean_below_median() {
        SessionDist::log_normal_from_mean_median(1.0, 2.0);
    }

    #[test]
    fn samples_are_positive() {
        let d = SessionDist::exponential(10.0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1);
        }
    }
}
