#![warn(missing_docs)]
//! The workspace's one parallelism utility: an order-preserving parallel
//! `map` over an index range on scoped threads.
//!
//! Both the topology delay-matrix builder and the experiment sweep executor
//! fan independent, unevenly-sized tasks across cores. The shape they share:
//! `n` tasks identified by index, a pure-per-index function, results needed
//! in index order regardless of completion order. Workers claim indices from
//! an atomic cursor (dynamic load balancing — one slow Dijkstra source or
//! one long simulation run does not idle the other workers), and each result
//! lands in the slot fixed by its input index, so the output is bit-for-bit
//! independent of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers `jobs = 0` resolves to: the host's available
/// parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n` on up to `jobs` worker threads
/// (`jobs = 0` means [`available_jobs`]) and returns the results in index
/// order.
///
/// The output is identical for every `jobs` value: scheduling only decides
/// *which worker* computes an index, never *what* the index computes. With
/// one effective worker (or `n <= 1`) everything runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn map<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = if jobs == 0 { available_jobs() } else { jobs };
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in &mut per_worker {
        for (i, r) in chunk.drain(..) {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = map(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(map(0, 5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(map(8, 0, |_| 0u32), Vec::<u32>::new());
        assert_eq!(map(8, 1, |i| i), vec![0]);
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        let expensive = |i: usize| {
            // Uneven task costs exercise the dynamic cursor.
            let mut x = i as u64;
            for _ in 0..(i % 7) * 1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        };
        let seq = map(1, 50, expensive);
        for jobs in [2, 3, 8] {
            assert_eq!(map(jobs, 50, expensive), seq, "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        map(2, 10, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
